//! Out-of-core table aggregation: external-merge counting with spill
//! files.
//!
//! The Table-2 and §4.2.3 aggregations ([`crate::domains`],
//! [`crate::content::language_table`]) hold a `HashMap` over every
//! distinct key. At paper scale (588k URLs) that is still cheap, but at
//! 10× and beyond the per-domain median table's per-URL value lists grow
//! with the corpus. This module provides the same tables with **bounded
//! resident memory**: keys stream into a small in-memory buffer that
//! spills sorted runs to temp files when full, and a canonical
//! ascending-key merge recombines the runs into exact totals.
//!
//! Byte-identity contract: integer counting is exact, runs merge by key
//! with counts summed (`u64` addition is associative), and the final
//! row ordering and percentage arithmetic reuse the exact expressions
//! of the in-memory implementations — so the spilled tables are
//! byte-for-byte identical to [`crate::domains::share_table`] /
//! [`crate::domains::domain_comment_medians`] /
//! [`crate::content::language_table`] output at any spill budget,
//! which the `scale.merge` simcheck oracle enforces.
//!
//! Spill-file format: one `"{key}\t{count}\n"` line per distinct key,
//! keys in ascending byte order (keys must not contain `\t` or `\n`;
//! the aggregators' keys are scheme/host-derived strings and language
//! codes, which cannot). Composite keys order by `(key, value)` via a
//! fixed-width zero-padded decimal value suffix.

use crate::domains::ShareRow;
use crate::url::ParsedUrl;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of distinct resident keys before a run is spilled.
pub const DEFAULT_SPILL_BUDGET: usize = 64 * 1024;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn run_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dissenter-spill-{}-{}-{}.run",
        std::process::id(),
        tag,
        SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Streaming key counter with external-merge spill runs.
///
/// Keys accumulate in an ordered resident map; when the map holds
/// `budget` distinct keys it is written out as a sorted run and
/// cleared. [`ExternalCounter::finish`] merges every run (plus the
/// resident remainder) in ascending key order, summing counts for equal
/// keys, and hands each exact `(key, total)` to the visitor.
pub struct ExternalCounter {
    resident: BTreeMap<String, u64>,
    budget: usize,
    runs: Vec<PathBuf>,
    total: u64,
}

impl ExternalCounter {
    /// Counter spilling after `budget` distinct resident keys.
    pub fn new(budget: usize) -> Self {
        Self { resident: BTreeMap::new(), budget: budget.max(1), runs: Vec::new(), total: 0 }
    }

    /// Count one key occurrence (`weight` occurrences, for callers that
    /// pre-aggregate).
    pub fn add_weighted(&mut self, key: &str, weight: u64) -> io::Result<()> {
        debug_assert!(
            !key.contains('\t') && !key.contains('\n'),
            "spill keys must not contain separators"
        );
        *self.resident.entry(key.to_owned()).or_insert(0) += weight;
        self.total += weight;
        if self.resident.len() >= self.budget {
            self.spill_run()?;
        }
        Ok(())
    }

    /// Count one key occurrence.
    pub fn add(&mut self, key: &str) -> io::Result<()> {
        self.add_weighted(key, 1)
    }

    /// Total occurrences counted so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of spill runs written so far (for tests and bench stats).
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    fn spill_run(&mut self) -> io::Result<()> {
        let path = run_path("counter");
        let mut w = BufWriter::new(File::create(&path)?);
        for (key, count) in std::mem::take(&mut self.resident) {
            writeln!(w, "{key}\t{count}")?;
        }
        w.flush()?;
        self.runs.push(path);
        Ok(())
    }

    /// Merge all runs and the resident remainder in ascending key order,
    /// invoking `visit(key, total)` once per distinct key. Consumes the
    /// counter and removes its spill files.
    pub fn finish(mut self, mut visit: impl FnMut(&str, u64)) -> io::Result<()> {
        let runs = std::mem::take(&mut self.runs);
        let resident = std::mem::take(&mut self.resident);
        let result = merge_runs(&runs, resident, &mut visit);
        for path in &runs {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

impl Drop for ExternalCounter {
    fn drop(&mut self) {
        for path in &self.runs {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One sorted run being merged: the next unconsumed `(key, count)`.
struct RunHead {
    key: String,
    count: u64,
    reader: Option<BufReader<File>>,
    resident: std::collections::btree_map::IntoIter<String, u64>,
}

impl RunHead {
    fn advance(&mut self) -> io::Result<bool> {
        if let Some(reader) = &mut self.reader {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Ok(false);
            }
            let line = line.trim_end_matches('\n');
            let (key, count) = line
                .rsplit_once('\t')
                .ok_or_else(|| io::Error::other(format!("malformed spill line {line:?}")))?;
            self.key = key.to_owned();
            self.count = count
                .parse()
                .map_err(|e| io::Error::other(format!("bad spill count {count:?}: {e}")))?;
            Ok(true)
        } else if let Some((key, count)) = self.resident.next() {
            self.key = key;
            self.count = count;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

fn merge_runs(
    runs: &[PathBuf],
    resident: BTreeMap<String, u64>,
    visit: &mut impl FnMut(&str, u64),
) -> io::Result<()> {
    let mut heads: Vec<RunHead> = Vec::with_capacity(runs.len() + 1);
    for path in runs {
        heads.push(RunHead {
            key: String::new(),
            count: 0,
            reader: Some(BufReader::new(File::open(path)?)),
            resident: BTreeMap::new().into_iter(),
        });
    }
    heads.push(RunHead {
        key: String::new(),
        count: 0,
        reader: None,
        resident: resident.into_iter(),
    });
    let mut live: Vec<RunHead> = Vec::with_capacity(heads.len());
    for mut h in heads {
        if h.advance()? {
            live.push(h);
        }
    }
    // K is the number of runs (small); a linear scan per step keeps the
    // merge simple and the output identical to any merge strategy —
    // counts for equal keys sum associatively.
    let mut current_key: Option<String> = None;
    let mut current_total = 0u64;
    while !live.is_empty() {
        let min_idx = live
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.key.cmp(&b.key))
            .map(|(i, _)| i)
            .expect("non-empty");
        let (key_matches, count) = {
            let h = &live[min_idx];
            (current_key.as_deref() == Some(h.key.as_str()), h.count)
        };
        if key_matches {
            current_total += count;
        } else {
            if let Some(k) = current_key.take() {
                visit(&k, current_total);
            }
            current_key = Some(live[min_idx].key.clone());
            current_total = count;
        }
        if !live[min_idx].advance()? {
            live.swap_remove(min_idx);
        }
    }
    if let Some(k) = current_key {
        visit(&k, current_total);
    }
    Ok(())
}

/// Top-`k` selection under [`crate::domains::share_table`]'s ordering
/// (count descending, then key ascending) with O(k) resident rows.
struct TopK {
    k: usize,
    rows: Vec<(String, u64)>,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self { k, rows: Vec::with_capacity(k + 1) }
    }

    /// `true` if `a` outranks `b` in the table ordering.
    fn better(a: &(String, u64), b: &(String, u64)) -> bool {
        a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)) == std::cmp::Ordering::Greater
    }

    fn push(&mut self, key: &str, count: u64) {
        if self.k == 0 {
            return;
        }
        let row = (key.to_owned(), count);
        let pos = self.rows.partition_point(|r| Self::better(r, &row));
        if pos < self.k {
            self.rows.insert(pos, row);
            self.rows.truncate(self.k);
        }
    }

    fn into_rows(self, total: u64) -> Vec<ShareRow> {
        self.rows
            .into_iter()
            .map(|(key, count)| ShareRow {
                key,
                count: count as usize,
                percent: 100.0 * count as f64 / (total as usize).max(1) as f64,
            })
            .collect()
    }
}

/// [`crate::domains::share_table`] with spill runs: identical rows for
/// any `budget`.
pub fn share_table_spilled(
    keys: impl Iterator<Item = String>,
    top: usize,
    budget: usize,
) -> io::Result<Vec<ShareRow>> {
    let mut counter = ExternalCounter::new(budget);
    for k in keys {
        counter.add(&k)?;
    }
    let total = counter.total();
    let mut topk = TopK::new(top);
    counter.finish(|key, count| topk.push(key, count))?;
    Ok(topk.into_rows(total))
}

/// [`crate::domains::tld_table`] with spill runs.
pub fn tld_table_spilled<'a>(
    urls: impl Iterator<Item = &'a str>,
    top: usize,
    budget: usize,
) -> io::Result<Vec<ShareRow>> {
    share_table_spilled(
        urls.filter_map(|u| {
            let p = ParsedUrl::parse(u)?;
            Some(if p.host.is_empty() || !matches!(p.scheme.as_str(), "http" | "https") {
                format!("{}:", p.scheme)
            } else {
                format!(".{}", p.tld())
            })
        }),
        top,
        budget,
    )
}

/// [`crate::domains::domain_table`] with spill runs.
pub fn domain_table_spilled<'a>(
    urls: impl Iterator<Item = &'a str>,
    top: usize,
    budget: usize,
) -> io::Result<Vec<ShareRow>> {
    share_table_spilled(
        urls.filter_map(|u| {
            let p = ParsedUrl::parse(u)?;
            (!p.host.is_empty()).then(|| p.domain())
        }),
        top,
        budget,
    )
}

/// Composite `(domain, value)` key ordering lexicographically as
/// `(domain asc, value asc)`: fixed-width zero-padded decimal suffix.
fn pair_key(domain: &str, value: usize) -> String {
    format!("{domain}\u{1}{value:020}")
}

fn split_pair_key(key: &str) -> (&str, usize) {
    let (domain, value) = key.rsplit_once('\u{1}').expect("composite spill key");
    (domain, value.parse().expect("zero-padded value"))
}

/// [`crate::domains::domain_comment_medians`] with spill runs: per-URL
/// comment counts stream out as `(domain, count)` pairs; the merged
/// ascending-`(domain, value)` sequence yields each domain's order
/// statistics without ever materializing its value vector. Rows are
/// identical to the in-memory implementation (same median arithmetic on
/// the same order statistics, same `median desc, domain asc` ordering).
pub fn domain_comment_medians_spilled<'a>(
    url_comments: impl Iterator<Item = (&'a str, usize)>,
    min_urls: usize,
    budget: usize,
) -> io::Result<Vec<(String, usize, f64)>> {
    let mut counter = ExternalCounter::new(budget);
    for (url, n) in url_comments {
        if let Some(p) = ParsedUrl::parse(url) {
            if !p.host.is_empty() {
                counter.add(&pair_key(&p.domain(), n))?;
            }
        }
    }

    // Per-domain accumulation over the ascending (domain, value) stream:
    // value multiplicities arrive in ascending value order, so the
    // median's order statistics read straight off the running group.
    let mut rows: Vec<(String, usize, f64)> = Vec::new();
    let mut group: Vec<(usize, u64)> = Vec::new(); // (value, multiplicity), ascending
    let mut group_domain = String::new();
    let flush = |domain: &str, group: &mut Vec<(usize, u64)>, rows: &mut Vec<_>| {
        let n: u64 = group.iter().map(|&(_, m)| m).sum();
        let n = n as usize;
        if n >= min_urls && n > 0 {
            let order_stat = |i: usize| {
                let mut cum = 0usize;
                for &(v, m) in group.iter() {
                    cum += m as usize;
                    if cum > i {
                        return v;
                    }
                }
                unreachable!("multiplicities sum to n")
            };
            let median = if n % 2 == 1 {
                order_stat(n / 2) as f64
            } else {
                (order_stat(n / 2 - 1) + order_stat(n / 2)) as f64 / 2.0
            };
            rows.push((domain.to_owned(), n, median));
        }
        group.clear();
    };
    counter.finish(|key, mult| {
        let (domain, value) = split_pair_key(key);
        if domain != group_domain {
            if !group_domain.is_empty() || !group.is_empty() {
                flush(&group_domain, &mut group, &mut rows);
            }
            group_domain = domain.to_owned();
        }
        group.push((value, mult));
    })?;
    if !group.is_empty() {
        flush(&group_domain, &mut group, &mut rows);
    }

    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite medians").then(a.0.cmp(&b.0)));
    Ok(rows)
}

/// [`crate::content::language_table`] with spill runs: comment texts
/// stream through language detection into the external counter keyed by
/// ISO code, and rows come back in the same `count desc, code asc`
/// order. Arrival order does not matter: resident maps are ordered, so
/// every spill run is sorted, and totals merge associatively.
pub fn language_table_spilled(
    store: &crawler::store::CrawlStore,
    budget: usize,
) -> io::Result<Vec<(textkit::langid::Lang, usize, f64)>> {
    use textkit::langid::Lang;
    let mut counter = ExternalCounter::new(budget);
    for c in store.comments.values() {
        counter.add(textkit::detect(&c.text).code())?;
    }
    let total = counter.total() as usize;
    let mut rows: Vec<(Lang, usize, f64)> = Vec::new();
    counter.finish(|code, count| {
        let lang = Lang::ALL
            .into_iter()
            .find(|l| l.code() == code)
            .unwrap_or(Lang::Unknown);
        rows.push((lang, count as usize, 100.0 * count as f64 / total.max(1) as f64));
    })?;
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.code().cmp(b.0.code())));
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{domain_comment_medians, domain_table, share_table, tld_table};

    fn urls() -> Vec<String> {
        let mut v = Vec::new();
        for i in 0..200 {
            v.push(format!("https://site{}.com/page/{i}", i % 17));
            v.push(format!("https://news{}.co.uk/{i}", i % 5));
        }
        v.push("file:///C:/x".to_owned());
        v.push("chrome://settings".to_owned());
        v
    }

    #[test]
    fn share_table_identical_at_any_budget() {
        let keys: Vec<String> = urls();
        let want = share_table(keys.iter().cloned(), 12);
        for budget in [1, 2, 7, 64, 100_000] {
            let have = share_table_spilled(keys.iter().cloned(), 12, budget).unwrap();
            assert_eq!(have, want, "budget {budget}");
        }
    }

    #[test]
    fn tld_and_domain_tables_match_in_memory() {
        let u = urls();
        let want_tld = tld_table(u.iter().map(String::as_str), 12);
        let want_dom = domain_table(u.iter().map(String::as_str), 12);
        for budget in [3, 1000] {
            assert_eq!(
                tld_table_spilled(u.iter().map(String::as_str), 12, budget).unwrap(),
                want_tld
            );
            assert_eq!(
                domain_table_spilled(u.iter().map(String::as_str), 12, budget).unwrap(),
                want_dom
            );
        }
    }

    #[test]
    fn medians_match_in_memory_bitwise() {
        let data: Vec<(String, usize)> = (0..150)
            .map(|i| (format!("https://dom{}.com/{i}", i % 9), (i * 7) % 23))
            .collect();
        let want =
            domain_comment_medians(data.iter().map(|(u, n)| (u.as_str(), *n)), 2);
        for budget in [1, 5, 500] {
            let have = domain_comment_medians_spilled(
                data.iter().map(|(u, n)| (u.as_str(), *n)),
                2,
                budget,
            )
            .unwrap();
            assert_eq!(have.len(), want.len(), "budget {budget}");
            for (a, b) in have.iter().zip(&want) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1, b.1);
                assert_eq!(a.2.to_bits(), b.2.to_bits(), "median bits for {}", a.0);
            }
        }
    }

    #[test]
    fn counter_spills_and_totals() {
        let mut c = ExternalCounter::new(4);
        for i in 0..100 {
            c.add(&format!("k{}", i % 10)).unwrap();
        }
        assert!(c.runs() > 0, "budget 4 with 10 keys must spill");
        assert_eq!(c.total(), 100);
        let mut seen = Vec::new();
        c.finish(|k, n| seen.push((k.to_owned(), n))).unwrap();
        assert_eq!(seen.len(), 10);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "ascending keys");
        assert!(seen.iter().all(|(_, n)| *n == 10));
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(share_table_spilled(std::iter::empty(), 12, 8).unwrap().is_empty());
        assert!(domain_comment_medians_spilled(std::iter::empty(), 1, 8)
            .unwrap()
            .is_empty());
    }
}
