//! The §3.5.1 dictionary scorer.
//!
//! "We tokenize each Dissenter comment and reply, perform stemming, and
//! then count the number of tokens that match a term in the dictionary.
//! Our per-comment hate dictionary score is then the ratio of hate words
//! over the number of tokens in the comment."

use crate::lexicon::Lexicon;
use textkit::tokenize_stemmed;

/// Dictionary-based hate scorer.
///
/// ```
/// let dict = classify::HateDictionary::standard();
/// assert_eq!(dict.score("a perfectly pleasant remark"), 0.0);
/// let term = dict.lexicon().term(0).to_owned();
/// let score = dict.score(&format!("one {term} two three"));
/// assert!((score - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct HateDictionary {
    lexicon: Lexicon,
}

impl HateDictionary {
    /// Scorer over the standard 1,027-term lexicon.
    pub fn standard() -> Self {
        Self { lexicon: Lexicon::standard() }
    }

    /// Scorer over a custom lexicon.
    pub fn new(lexicon: Lexicon) -> Self {
        Self { lexicon }
    }

    /// The underlying lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Hate-token ratio in `[0, 1]`; `0` for token-less comments.
    pub fn score(&self, text: &str) -> f64 {
        let tokens = tokenize_stemmed(text);
        if tokens.is_empty() {
            return 0.0;
        }
        let hits = tokens.iter().filter(|t| self.lexicon.contains_stemmed(t)).count();
        hits as f64 / tokens.len() as f64
    }

    /// Number of hate tokens and total tokens — the raw pair behind the
    /// ratio, useful for corpus-level aggregation.
    pub fn counts(&self, text: &str) -> (usize, usize) {
        let tokens = tokenize_stemmed(text);
        let hits = tokens.iter().filter(|t| self.lexicon.contains_stemmed(t)).count();
        (hits, tokens.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::AMBIGUOUS_TERMS;

    #[test]
    fn clean_text_scores_zero() {
        let d = HateDictionary::standard();
        assert_eq!(d.score("what a lovely day for a walk"), 0.0);
    }

    #[test]
    fn lexicon_term_raises_score() {
        let d = HateDictionary::standard();
        let term = d.lexicon().term(10).to_owned();
        let text = format!("you are such a {term} honestly");
        let s = d.score(&text);
        assert!((s - 1.0 / 6.0).abs() < 1e-12, "score {s}");
    }

    #[test]
    fn ratio_scales_with_density() {
        let d = HateDictionary::standard();
        let term = d.lexicon().term(42).to_owned();
        let sparse = format!("{term} one two three four five six seven");
        let dense = format!("{term} {term} {term} one");
        assert!(d.score(&dense) > d.score(&sparse));
    }

    #[test]
    fn ambiguous_words_false_positive() {
        // The paper's "queen"/"pig" problem: benign uses still score.
        let d = HateDictionary::standard();
        let s = d.score(&format!("the {} of england owns a {}", AMBIGUOUS_TERMS[0], AMBIGUOUS_TERMS[1]));
        assert!(s > 0.0);
    }

    #[test]
    fn empty_input() {
        let d = HateDictionary::standard();
        assert_eq!(d.score(""), 0.0);
        assert_eq!(d.counts(""), (0, 0));
    }

    #[test]
    fn counts_match_score() {
        let d = HateDictionary::standard();
        let term = d.lexicon().term(5).to_owned();
        let text = format!("a b {term}");
        let (h, n) = d.counts(&text);
        assert_eq!((h, n), (1, 3));
        assert!((d.score(&text) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stemming_connects_inflections() {
        let d = HateDictionary::standard();
        let term = d.lexicon().term(7).to_owned();
        let plural = format!("{term}s");
        let text = format!("those {plural} again");
        assert!(d.score(&text) > 0.0, "plural form should match via stemming");
    }
}
