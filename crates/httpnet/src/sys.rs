//! Minimal raw Linux syscall wrappers for the event-driven transport.
//!
//! The dependency policy forbids `libc`, so the handful of syscalls the
//! reactor needs — `epoll_create1`, `epoll_ctl`, `epoll_pwait`, and
//! `eventfd2` for cross-thread wakeups — are issued directly via inline
//! assembly. Everything else (socket IO, accept, nonblocking mode) goes
//! through `std::net`, which already exposes the required knobs.
//!
//! Only the two architectures this project is built on are wired up;
//! adding another is a table of syscall numbers away.

#![allow(clippy::missing_safety_doc)]

use std::io;
use std::os::fd::RawFd;

// -------------------------------------------------------------------------
// Syscall numbers and the raw syscall instruction, per architecture.

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
    pub const EVENTFD2: usize = 290;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CREATE1: usize = 20;
    pub const EVENTFD2: usize = 19;
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
compile_error!(
    "httpnet's reactor issues raw Linux syscalls and supports x86_64/aarch64 only; \
     add this target's syscall numbers to httpnet::sys"
);

/// Issue a raw 6-argument syscall, returning the kernel's raw result
/// (negative values encode `-errno`).
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a as isize => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        options(nostack)
    );
    ret
}

/// Convert a raw syscall return into `io::Result`.
fn cvt(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// -------------------------------------------------------------------------
// epoll

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to subscribe).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported; no need to subscribe).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

/// `struct epoll_event`. Packed on x86_64 (the kernel ABI packs it there
/// so 32-/64-bit layouts agree); naturally aligned elsewhere.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen token (we store the connection slot index).
    pub data: u64,
}

/// `struct epoll_event` (naturally aligned layout).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen token (we store the connection slot index).
    pub data: u64,
}

impl EpollEvent {
    /// The token this event was registered with.
    pub fn token(&self) -> u64 {
        // Field access copies the value out; no reference into the
        // (possibly packed) struct is taken.
        self.data
    }

    /// The readiness bitmask.
    pub fn mask(&self) -> u32 {
        self.events
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll { fd: fd as RawFd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent { events, data: token };
        cvt(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd as usize,
                op as usize,
                fd as usize,
                &ev as *const EpollEvent as usize,
                0,
                0,
            )
        })?;
        Ok(())
    }

    /// Register `fd` with an interest mask and token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Re-arm `fd` with a new interest mask.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for events, blocking up to `timeout_ms` (`-1` blocks
    /// indefinitely). Returns the number of events filled into `events`.
    /// `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0, // sigmask: NULL
                    8, // sigsetsize (ignored for NULL mask, but be exact)
                )
            };
            match cvt(ret) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = unsafe { syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
    }
}

// -------------------------------------------------------------------------
// eventfd — the reactor wakeup primitive.

/// A nonblocking eventfd used to wake a reactor from another thread.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<EventFd> {
        let fd =
            cvt(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        Ok(EventFd { fd: fd as RawFd })
    }

    /// The raw descriptor (for epoll registration).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Signal the eventfd (adds 1 to its counter). Never blocks: the
    /// counter saturating is fine — one pending wake is enough.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe {
            syscall6(nr::WRITE, self.fd as usize, &one as *const u64 as usize, 8, 0, 0, 0)
        };
    }

    /// Drain pending wakeups so the next `wake` edge is observable.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        let _ = unsafe {
            syscall6(nr::READ, self.fd as usize, &mut buf as *mut u64 as usize, 8, 0, 0, 0)
        };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        let _ = unsafe { syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_pipe_end() {
        // A loopback TCP pair is the closest std-only analogue to a pipe.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = std::net::TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 8];
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        tx.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].mask() & EPOLLIN, 0);

        let mut buf = [0u8; 4];
        let mut rx2 = &rx;
        rx2.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn epoll_modify_and_delete() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _tx = std::net::TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), EPOLLIN, 1).unwrap();
        // A connected socket with an empty send queue is writable.
        ep.modify(rx.as_raw_fd(), EPOLLOUT, 2).unwrap();
        let mut events = [EpollEvent::default(); 8];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 2);
        assert_ne!(events[0].mask() & EPOLLOUT, 0);
        ep.delete(rx.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn eventfd_wakes_epoll() {
        let ef = EventFd::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(ef.fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no wake pending");

        ef.wake();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);

        ef.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drained");
    }

    #[test]
    fn eventfd_wake_from_another_thread() {
        let ef = std::sync::Arc::new(EventFd::new().unwrap());
        let ep = Epoll::new().unwrap();
        ep.add(ef.fd(), EPOLLIN, 9).unwrap();
        let ef2 = ef.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            ef2.wake();
        });
        let mut events = [EpollEvent::default(); 4];
        let n = ep.wait(&mut events, 5000).unwrap();
        assert_eq!(n, 1);
        t.join().unwrap();
    }
}
