#!/usr/bin/env bash
# Chaos suite: run the full §3 crawl through every injected fault class
# (alone and combined) and check the recovered mirror is byte-identical
# to a fault-free crawl, then exercise the degraded-coverage paths
# (tiny retry budget, open circuit breakers, replay determinism).
#
# Usage: scripts/chaos.sh [extra cargo-test args]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== resilience unit tests (fault injector, retry policy, breaker) =="
cargo test --release -p httpnet fault:: retry:: "$@"
cargo test --release -p crawler --lib resilience:: "$@"

echo "== cross-crate chaos suite (full crawl x fault matrix) =="
cargo test --release -p crawler --test chaos "$@"
