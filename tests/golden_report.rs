//! Golden-file regression test: the deterministic render of a fixed-seed
//! small study is pinned byte-for-byte under `tests/golden/`. Any change
//! to world synthesis, crawling, scoring, or rendering that shifts a
//! single byte fails here first — with an explicit regeneration path
//! instead of a silent drift.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_report
//! ```
//!
//! then review the diff of `tests/golden/report_small.txt` like any other
//! code change.

use dissenter_repro::dissenter_core::{render, run_study, Study as DissenterStudy};
use dissenter_repro::synth::config::Scale;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");

fn check_golden(name: &str, rendered: &str) {
    let path = format!("{GOLDEN_DIR}/{name}");
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, rendered).expect("write golden file");
        println!("regenerated {path} ({} bytes)", rendered.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path}: {e}\n\
             regenerate with: UPDATE_GOLDEN=1 cargo test --test golden_report"
        )
    });
    if golden != *rendered {
        let first_diff = golden
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: golden {a:?} vs rendered {b:?}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: {} vs {}",
                    golden.lines().count(),
                    rendered.lines().count()
                )
            });
        panic!(
            "deterministic render drifted from {name}\n  first divergence: {first_diff}\n\
             if intentional, regenerate with: UPDATE_GOLDEN=1 cargo test --test golden_report\n\
             and review the diff under tests/golden/"
        );
    }
}

#[test]
fn deterministic_render_matches_golden_file() {
    let mut builder = DissenterStudy::builder().scale(Scale::Custom(0.002)).svm_corpus(400);
    // One committed artifact, any worker count: CI runs this test with
    // GOLDEN_WORKERS=1 and =8, so both must render the very same bytes.
    if let Ok(w) = std::env::var("GOLDEN_WORKERS") {
        builder = builder.workers(w.parse().expect("GOLDEN_WORKERS is a worker count"));
    }
    let cfg = builder.build().expect("golden config is valid");
    let study = run_study(&cfg);
    let report = render::deterministic(&study);
    assert!(report.contains("== Overview"), "render sanity");
    check_golden("report_small.txt", &report);
    check_golden("runstats_small.txt", &render::runstats_deterministic(&study));
}
