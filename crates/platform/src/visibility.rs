//! Comment visibility rules — the shadow-overlay mechanics of §2.2.
//!
//! NSFW posts are invisible to unauthenticated *and* authenticated users
//! unless the viewer explicitly opted in; "offensive"-labeled posts behave
//! the same with a separate opt-in. A user cannot even see their own NSFW
//! comment without the setting (the paper hypothesizes this caused
//! duplicate posts, §4.3.1).

use crate::model::{Comment, ViewFilters};

/// The viewing context of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Viewer {
    /// No session cookie — what Dissenter shows the open web.
    #[default]
    Anonymous,
    /// Authenticated with the given view filters.
    Authenticated(ViewFilters),
}

impl Viewer {
    /// An authenticated viewer with default filters (shadow content off).
    pub fn logged_in_default() -> Viewer {
        Viewer::Authenticated(ViewFilters::default())
    }

    /// An authenticated viewer with NSFW viewing enabled.
    pub fn with_nsfw() -> Viewer {
        Viewer::Authenticated(ViewFilters { nsfw: true, ..Default::default() })
    }

    /// An authenticated viewer with "offensive" viewing enabled.
    pub fn with_offensive() -> Viewer {
        Viewer::Authenticated(ViewFilters { offensive: true, ..Default::default() })
    }

    /// Can this viewer see `comment`?
    pub fn can_see(&self, comment: &Comment) -> bool {
        let filters = match self {
            Viewer::Anonymous => {
                return !comment.nsfw && !comment.offensive;
            }
            Viewer::Authenticated(f) => f,
        };
        if comment.nsfw && !filters.nsfw {
            return false;
        }
        if comment.offensive && !filters.offensive {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::{EntityKind, ObjectIdGen};

    fn comment(nsfw: bool, offensive: bool) -> Comment {
        let mut g = ObjectIdGen::new(EntityKind::Comment, 1);
        Comment {
            id: g.next(10),
            url_id: g.next(1),
            author_id: g.next(1),
            parent: None,
            text: "x".into(),
            created_at: 10,
            nsfw,
            offensive,
        }
    }

    #[test]
    fn anonymous_sees_only_standard() {
        let v = Viewer::Anonymous;
        assert!(v.can_see(&comment(false, false)));
        assert!(!v.can_see(&comment(true, false)));
        assert!(!v.can_see(&comment(false, true)));
        assert!(!v.can_see(&comment(true, true)));
    }

    #[test]
    fn default_authenticated_equals_anonymous() {
        let v = Viewer::logged_in_default();
        assert!(v.can_see(&comment(false, false)));
        assert!(!v.can_see(&comment(true, false)));
        assert!(!v.can_see(&comment(false, true)));
    }

    #[test]
    fn nsfw_opt_in_reveals_only_nsfw() {
        let v = Viewer::with_nsfw();
        assert!(v.can_see(&comment(true, false)));
        assert!(!v.can_see(&comment(false, true)), "offensive stays hidden");
        assert!(!v.can_see(&comment(true, true)), "dual-labeled needs both opt-ins");
    }

    #[test]
    fn offensive_opt_in_reveals_only_offensive() {
        let v = Viewer::with_offensive();
        assert!(v.can_see(&comment(false, true)));
        assert!(!v.can_see(&comment(true, false)));
    }

    #[test]
    fn both_filters_reveal_everything() {
        let v = Viewer::Authenticated(ViewFilters { nsfw: true, offensive: true, ..Default::default() });
        assert!(v.can_see(&comment(true, true)));
    }
}
