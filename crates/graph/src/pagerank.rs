//! PageRank over the follower graph.
//!
//! §4.1.1 compares prolific commenters against "the top twenty Gab users by
//! number of followers, score, or PageRank as determined by prior work".
//! We implement the standard power-iteration PageRank so the same ranking
//! comparison can be made on the synthetic network.

use crate::digraph::DiGraph;

/// Compute PageRank scores. `damping` is the usual 0.85; iteration stops
/// when the L1 change drops below `tol` or after `max_iter` rounds.
///
/// Dangling nodes (no outgoing edges) redistribute their mass uniformly,
/// the standard correction. Scores sum to 1 (within `tol`).
pub fn pagerank(g: &DiGraph, damping: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    assert!((0.0..1.0).contains(&damping), "damping must be in [0,1)");
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];
    for _ in 0..max_iter {
        let mut dangling = 0.0;
        for (v, r) in rank.iter().enumerate() {
            if g.out_degree(v as u32) == 0 {
                dangling += r;
            }
        }
        let base = (1.0 - damping) * uniform + damping * dangling * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for (v, r) in rank.iter().enumerate() {
            let deg = g.out_degree(v as u32);
            if deg > 0 {
                let share = damping * r / deg as f64;
                for &w in g.following(v as u32) {
                    next[w as usize] += share;
                }
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < tol {
            break;
        }
    }
    rank
}

/// Indices of the top-`k` nodes by score, descending (ties by index).
pub fn top_k(scores: &[f64], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("finite scores")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_one() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 0);
        let r = pagerank(&g, 0.85, 1e-10, 200);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn hub_outranks_leaves() {
        // Star: everyone follows node 0.
        let mut g = DiGraph::with_nodes(5);
        for v in 1..5 {
            g.add_edge(v, 0);
        }
        let r = pagerank(&g, 0.85, 1e-10, 200);
        for v in 1..5 {
            assert!(r[0] > r[v], "hub must outrank leaf {v}");
        }
        assert_eq!(top_k(&r, 1), vec![0]);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let r = pagerank(&g, 0.85, 1e-12, 500);
        for x in r.iter().take(3) {
            assert!((x - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::with_nodes(0);
        assert!(pagerank(&g, 0.85, 1e-8, 10).is_empty());
    }

    #[test]
    fn dangling_nodes_handled() {
        // 0 → 1, 1 dangles. Mass must not leak: sum stays 1.
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, 1);
        let r = pagerank(&g, 0.85, 1e-12, 500);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(r[1] > r[0]);
    }

    #[test]
    fn top_k_orders_descending() {
        let scores = [0.1, 0.5, 0.3];
        assert_eq!(top_k(&scores, 2), vec![1, 2]);
        assert_eq!(top_k(&scores, 10), vec![1, 2, 0]);
    }
}
