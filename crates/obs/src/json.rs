//! Minimal JSON string helpers (the crate is std-only by design; the
//! full `jsonlite` parser lives higher in the stack and must not be a
//! dependency of the layers below it).

/// Escape `s` into a JSON string literal (with quotes).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number (`null` for non-finite values).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{}` prints the shortest round-trippable form.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_is_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
