#![warn(missing_docs)]
//! Deterministic synthetic-world generation calibrated to the paper.
//!
//! The real corpus (14 months of Dissenter, the Gab user base and follower
//! graph, matched Reddit histories, and the NY Times / Daily Mail baseline
//! crawls) is closed. This crate generates a stand-in world whose *every
//! published statistic* is reproduced by construction or calibration:
//! user growth (77% joining by March 2019), the comment power law (90% of
//! comments from ~14% of active users), Table 2's TLD/domain shares, the
//! 94%-English language mix, NSFW/offensive shadow rates, the Figure-7
//! per-community Perspective score distributions, Figure 8's
//! bias-conditional toxicity, the follower power law, and the planted
//! 42-user hateful core.
//!
//! Honesty property: the generator never writes labels the classifiers
//! read. It samples *latent* score targets per comment, inverts the
//! documented Perspective model weights into marker densities, and emits
//! plain text. Classifiers then re-derive scores from that text; all
//! downstream analyses consume classifier output, not latents.

//! The crate's surface is **streaming-first**: [`WorldSource`] yields
//! seed-deterministic [`WorldBatch`]es (users, URLs, comments with texts
//! synthesized per batch, votes, the Reddit mirror, baselines) without
//! ever materializing the full world; [`generate`] and
//! [`generate_sharded`] are documented convenience wrappers that drain a
//! source into one [`platform::World`].
//!
//! ```no_run
//! use synth::{WorldBatch, WorldConfig, WorldSource};
//!
//! let mut source = WorldSource::new(&WorldConfig::small(), 2);
//! let truth = source.truth().clone();
//! let mut world = platform::World::new();
//! while let Some(batch) = source.next() {
//!     if let WorldBatch::Comments(cs) = &batch {
//!         // inspect / spill / score the batch before (or instead of)
//!         // applying it
//!         assert!(!cs.is_empty());
//!     }
//!     batch.apply(&mut world);
//! }
//! assert!(!truth.active_indices.is_empty());
//! ```

pub mod baselines;
pub mod config;
pub mod dist;
pub mod labeled;
pub mod longitudinal;
pub mod names;
pub mod social;
pub mod source;
pub mod textgen;
pub mod world;

pub use config::{Scale, WorldConfig};
pub use labeled::{labeled_corpus, labeled_corpus_sharded, LabeledSample};
pub use source::{WorldBatch, WorldSource, DEFAULT_BATCH_SIZE};
pub use textgen::{CommentSpec, TextGen};
pub use longitudinal::{apply_epoch, world_at_epoch};
pub use world::{generate, generate_sharded, GroundTruth};
