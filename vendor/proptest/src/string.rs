//! Regex-subset string strategies: a `&'static str` pattern is itself a
//! `Strategy<Value = String>`, as in the real crate.
//!
//! Supported grammar (covers every pattern in this workspace):
//!   atom     := `\PC` | `[` class `]` | escaped-char | literal-char
//!   class    := (escaped-char | range | literal-char)*
//!   range    := char `-` char
//!   each atom may be followed by `{m,n}` or `{n}` (default: exactly one)
//!
//! `\PC` draws any printable (non-control, non-format) character, biased
//! toward ASCII with a tail of Latin-1 and multibyte code points so that
//! UTF-8 boundary handling gets exercised.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// `\PC`: any printable char.
    Printable,
    /// A set of concrete candidate chars (char class or single literal).
    OneOf(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Atom::Printable
                } else {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pat:?}"));
                    i += 2;
                    Atom::OneOf(vec![c])
                }
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        *chars
                            .get(i)
                            .unwrap_or_else(|| panic!("dangling escape in class {pat:?}"))
                    } else {
                        chars[i]
                    };
                    // `a-z` range (the `-` must not be last-in-class).
                    if chars.get(i + 1) == Some(&'-')
                        && chars.get(i + 2).is_some_and(|&c2| c2 != ']')
                    {
                        let hi = chars[i + 2];
                        assert!(c <= hi, "inverted class range in {pat:?}");
                        set.extend(c..=hi);
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pat:?}");
                i += 1; // closing `]`
                assert!(!set.is_empty(), "empty char class in {pat:?}");
                Atom::OneOf(set)
            }
            c => {
                i += 1;
                Atom::OneOf(vec![c])
            }
        };
        // Optional `{m,n}` / `{n}` quantifier.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in {pat:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Multibyte, non-control code points mixed into `\PC` draws.
const WIDE_CHARS: &[char] = &[
    'é', 'ü', 'ß', 'ñ', 'Ω', 'λ', 'ж', 'م', '中', '日', '☃', '€', '😀',
];

fn printable_char(rng: &mut TestRng) -> char {
    match rng.below(20) {
        // 75%: printable ASCII.
        0..=14 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
        // 15%: Latin-1 supplement, skipping U+00AD (soft hyphen, category Cf).
        15..=17 => loop {
            let c = char::from_u32(0xa1 + rng.below(0x5f) as u32).unwrap();
            if c != '\u{ad}' {
                break c;
            }
        },
        // 10%: a wider multibyte tail.
        _ => WIDE_CHARS[rng.below(WIDE_CHARS.len() as u64) as usize],
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Patterns are static and few; parsing per draw keeps the type
        // stateless and is cheap next to the property bodies.
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = rng.len_in(piece.min, piece.max);
            for _ in 0..n {
                let c = match &piece.atom {
                    Atom::Printable => printable_char(rng),
                    Atom::OneOf(set) => set[rng.below(set.len() as u64) as usize],
                };
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_escapes_and_unicode() {
        let mut rng = TestRng::from_seed(11);
        let pat = "[a-zA-Z0-9 _\\-\\.éü]{0,24}";
        for _ in 0..500 {
            let s = pat.generate(&mut rng);
            assert!(s.chars().count() <= 24);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || " _-.éü".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn printable_pattern_has_no_control_chars() {
        let mut rng = TestRng::from_seed(12);
        let mut saw_non_ascii = false;
        for _ in 0..500 {
            let s = "\\PC{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
            for c in s.chars() {
                assert!(!c.is_control(), "control char {c:?}");
            }
            saw_non_ascii |= !s.is_ascii();
        }
        assert!(saw_non_ascii, "\\PC should exercise multibyte UTF-8");
    }

    #[test]
    fn bounded_lengths_are_respected() {
        let mut rng = TestRng::from_seed(13);
        for _ in 0..500 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn exact_count_quantifier() {
        let mut rng = TestRng::from_seed(14);
        let s = "[01]{16}".generate(&mut rng);
        assert_eq!(s.len(), 16);
        assert!(s.bytes().all(|b| b == b'0' || b == b'1'));
    }

    #[test]
    fn literal_atoms_pass_through() {
        let mut rng = TestRng::from_seed(15);
        assert_eq!("abc".generate(&mut rng), "abc");
    }
}
