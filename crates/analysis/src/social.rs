//! §4.5 — the Dissenter social network.
//!
//! Builds the directed follow graph over commenting users from the crawled
//! Gab-proxy edges, then computes Figure 9 (degree scatter, toxicity vs
//! degree), power-law fits, PageRank, the prolific-vs-popular disjointness
//! observation, and the hateful core.

use crate::toxicity::CommentScores;
use crawler::store::CrawlStore;
use graph::{extract_hateful_core, pagerank, CoreCriteria, DiGraph, HatefulCore};
use ids::ObjectId;
use stats::{fit_power_law, log_bins, PowerLawFit};
use std::collections::HashMap;

/// The assembled social-network analysis.
#[derive(Debug)]
pub struct SocialAnalysis {
    /// The graph over commenting users.
    pub graph: DiGraph,
    /// Node → author-id mapping.
    pub authors: Vec<ObjectId>,
    /// Users in the network (paper: 45,524).
    pub users: usize,
    /// Users with no edges at all (paper: 15,702).
    pub isolated: usize,
    /// In-degree power-law fit.
    pub in_fit: Option<PowerLawFit>,
    /// Out-degree power-law fit.
    pub out_fit: Option<PowerLawFit>,
    /// Top-3 follower counts (paper: 10,705 / 9,588 / 8,183 at full scale).
    pub top_in_degrees: Vec<usize>,
    /// Top-3 following counts.
    pub top_out_degrees: Vec<usize>,
    /// Figure 9a scatter: `(in_degree, out_degree)` per node.
    pub degree_scatter: Vec<(u64, u64)>,
    /// Spearman ρ between in- and out-degree over connected nodes — the
    /// paper's "the number of Dissenters each user follows is proportional
    /// to the number of followers".
    pub degree_spearman: Option<f64>,
    /// Figure 9b: toxicity (mean, median) per follower-count decade.
    pub toxicity_by_followers: Vec<(Option<u32>, f64, f64)>,
    /// Figure 9c: toxicity (mean, median) per following-count decade.
    pub toxicity_by_following: Vec<(Option<u32>, f64, f64)>,
    /// Overlap between top-10 in-degree users and top-10 commenters
    /// (paper: none).
    pub popular_prolific_overlap: usize,
    /// The extracted hateful core.
    pub core: HatefulCore,
    /// PageRank of every node.
    pub pagerank: Vec<f64>,
}

/// Build the full §4.5 analysis.
pub fn analyze_social(
    store: &CrawlStore,
    scores: &HashMap<ObjectId, CommentScores>,
    criteria: CoreCriteria,
) -> SocialAnalysis {
    // Nodes: authors with ≥1 comment or reply.
    let by_author = store.comments_by_author();
    let mut authors: Vec<ObjectId> = by_author.keys().copied().collect();
    authors.sort();
    let index: HashMap<ObjectId, u32> =
        authors.iter().enumerate().map(|(i, &a)| (a, i as u32)).collect();

    let mut g = DiGraph::with_nodes(authors.len());
    for &(from, to) in &store.follow_edges {
        if let (Some(&f), Some(&t)) = (index.get(&from), index.get(&to)) {
            g.add_edge(f, t);
        }
    }

    // Per-node comment counts and median toxicity.
    let mut counts = vec![0u64; authors.len()];
    let mut med_tox = vec![f64::NAN; authors.len()];
    let mut mean_tox = vec![f64::NAN; authors.len()];
    for (i, a) in authors.iter().enumerate() {
        let comments = &by_author[a];
        counts[i] = comments.len() as u64;
        let sev: Vec<f64> = comments
            .iter()
            .filter_map(|c| scores.get(&c.id).map(|s| s.perspective.severe_toxicity))
            .collect();
        if !sev.is_empty() {
            med_tox[i] = stats::median(&sev).expect("non-empty");
            mean_tox[i] = stats::mean(&sev).expect("non-empty");
        }
    }

    let in_degrees = g.in_degrees();
    let out_degrees = g.out_degrees();
    let isolated = g.isolated_nodes().len();
    let degree_scatter: Vec<(u64, u64)> =
        in_degrees.iter().zip(&out_degrees).map(|(&i, &o)| (i, o)).collect();

    let connected: Vec<(f64, f64)> = degree_scatter
        .iter()
        .filter(|&&(i, o)| i > 0 || o > 0)
        .map(|&(i, o)| (i as f64, o as f64))
        .collect();
    let degree_spearman = stats::spearman(
        &connected.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
        &connected.iter().map(|&(_, o)| o).collect::<Vec<_>>(),
    );

    let positive = |xs: &[u64]| xs.iter().filter(|&&d| d > 0).map(|&d| d as f64).collect::<Vec<_>>();
    let in_fit = fit_power_law(&positive(&in_degrees), 1.0);
    let out_fit = fit_power_law(&positive(&out_degrees), 1.0);

    let top = |xs: &[u64]| {
        let mut v: Vec<usize> = xs.iter().map(|&d| d as usize).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v.truncate(3);
        v
    };

    // Fig 9b/9c: toxicity by degree decade (log10 bins; degree 0 = None).
    let tox_by = |degrees: &[u64]| {
        let pairs: Vec<(u64, f64)> = degrees
            .iter()
            .zip(&med_tox)
            .filter(|(_, &t)| !t.is_nan())
            .map(|(&d, &t)| (d, t))
            .collect();
        log_bins(&pairs, 10.0)
            .into_iter()
            .map(|(bin, vals)| {
                let mean = stats::mean(&vals).unwrap_or(0.0);
                let median = stats::median(&vals).unwrap_or(0.0);
                (bin, mean, median)
            })
            .collect::<Vec<_>>()
    };

    // Popular vs prolific overlap.
    let mut by_in: Vec<u32> = (0..authors.len() as u32).collect();
    by_in.sort_by_key(|&v| std::cmp::Reverse(in_degrees[v as usize]));
    let mut by_count: Vec<u32> = (0..authors.len() as u32).collect();
    by_count.sort_by_key(|&v| std::cmp::Reverse(counts[v as usize]));
    let top_in: std::collections::HashSet<u32> = by_in.iter().take(10).copied().collect();
    let popular_prolific_overlap =
        by_count.iter().take(10).filter(|v| top_in.contains(v)).count();

    let core = extract_hateful_core(&g, &counts, &med_tox, criteria);
    let pr = pagerank(&g, 0.85, 1e-9, 100);

    SocialAnalysis {
        users: authors.len(),
        isolated,
        in_fit,
        out_fit,
        top_in_degrees: top(&in_degrees),
        top_out_degrees: top(&out_degrees),
        degree_scatter,
        degree_spearman,
        toxicity_by_followers: tox_by(&in_degrees),
        toxicity_by_following: tox_by(&out_degrees),
        popular_prolific_overlap,
        core,
        pagerank: pr,
        graph: g,
        authors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classify::PerspectiveScores;
    use crawler::store::{CrawledComment, ShadowLabel};
    use ids::{EntityKind, ObjectIdGen};

    /// Tiny store: 4 authors; a & b are a toxic mutual pair with ≥ 3
    /// comments each; c follows a one-way; d is isolated.
    fn store_and_scores() -> (CrawlStore, HashMap<ObjectId, CommentScores>) {
        let mut store = CrawlStore::default();
        let mut scores = HashMap::new();
        let mut ag = ObjectIdGen::new(EntityKind::Author, 0);
        let mut cg = ObjectIdGen::new(EntityKind::Comment, 1);
        let authors: Vec<ObjectId> = (0..4).map(|_| ag.next(5)).collect();
        let toxicity = [0.8, 0.7, 0.1, 0.05];
        for (a, &tox) in authors.iter().zip(&toxicity) {
            for _ in 0..3 {
                let id = cg.next(6);
                store.comments.insert(
                    id,
                    CrawledComment {
                        id,
                        url_id: cg.next(7),
                        author_id: *a,
                        parent: None,
                        text: String::new(),
                        created_at: 6,
                        label: ShadowLabel::Standard,
                    },
                );
                scores.insert(
                    id,
                    CommentScores {
                        perspective: PerspectiveScores { severe_toxicity: tox, ..Default::default() },
                        dictionary: 0.0,
                    },
                );
            }
        }
        store.follow_edges = vec![
            (authors[0], authors[1]),
            (authors[1], authors[0]),
            (authors[2], authors[0]),
        ];
        (store, scores)
    }

    #[test]
    fn core_is_the_toxic_mutual_pair() {
        let (store, scores) = store_and_scores();
        let crit = CoreCriteria { min_comments: 3, min_median_toxicity: 0.3 };
        let a = analyze_social(&store, &scores, crit);
        assert_eq!(a.users, 4);
        assert_eq!(a.isolated, 1);
        assert_eq!(a.core.size(), 2);
        assert_eq!(a.core.components.count(), 1);
    }

    #[test]
    fn degree_scatter_covers_all_nodes() {
        let (store, scores) = store_and_scores();
        let a = analyze_social(&store, &scores, CoreCriteria::default());
        assert_eq!(a.degree_scatter.len(), 4);
        let max_in = a.degree_scatter.iter().map(|&(i, _)| i).max().unwrap();
        assert_eq!(max_in, 2, "author 0 has two followers");
        assert_eq!(a.top_in_degrees[0], 2);
    }

    #[test]
    fn toxicity_bins_have_zero_degree_bucket() {
        let (store, scores) = store_and_scores();
        let a = analyze_social(&store, &scores, CoreCriteria::default());
        assert!(a.toxicity_by_followers.iter().any(|(b, _, _)| b.is_none()));
    }

    #[test]
    fn pagerank_covers_graph() {
        let (store, scores) = store_and_scores();
        let a = analyze_social(&store, &scores, CoreCriteria::default());
        assert_eq!(a.pagerank.len(), 4);
        assert!((a.pagerank.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }
}
