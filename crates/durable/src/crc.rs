//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), slice-by-8. Every
//! WAL record and snapshot section carries one so a flipped bit anywhere
//! in a payload is detected on replay. Payloads run to megabytes per
//! snapshot section, so the checksum is on the append/snapshot hot path
//! and uses eight lookup tables to process 8 bytes per step instead of
//! one.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = CRC of byte b followed by k zero bytes, so eight
    // table hits cover one 64-bit chunk.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

fn update(mut crc: u32, mut bytes: &[u8]) -> u32 {
    while let Some((chunk, rest)) = bytes.split_first_chunk::<8>() {
        let low = u32::from_le_bytes(chunk[..4].try_into().unwrap()) ^ crc;
        crc = TABLES[7][(low & 0xFF) as usize]
            ^ TABLES[6][((low >> 8) & 0xFF) as usize]
            ^ TABLES[5][((low >> 16) & 0xFF) as usize]
            ^ TABLES[4][(low >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
        bytes = rest;
    }
    for &b in bytes {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 over a sequence of byte slices (concatenation semantics).
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        crc = update(crc, part);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
    }

    #[test]
    fn concatenation_semantics() {
        assert_eq!(crc32(&[b"hello ", b"world"]), crc32(&[b"hello world"]));
        assert_ne!(crc32(&[b"hello"]), crc32(&[b"hellp"]));
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn slice_by_8_matches_bytewise_at_every_alignment() {
        let bytewise = |bytes: &[u8]| {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        };
        let data: Vec<u8> = (0u32..1024).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
        for len in (0..64).chain([255, 256, 257, 1023, 1024]) {
            assert_eq!(crc32(&[&data[..len]]), bytewise(&data[..len]), "len {len}");
        }
    }
}
