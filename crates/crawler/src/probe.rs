//! Phase 2 — Dissenter account probing by response size (§3.1).
//!
//! "Based on the HTTP response sizes, we are able to identify Dissenter
//! accounts, which are at least 10 kB; responses for non-existent users
//! are ∼150 bytes."

use crate::resilience::{Phase, PhaseRun};
use crate::store::CrawlStore;
use crate::Crawler;

/// The size threshold separating real home pages from misses.
pub const SIZE_THRESHOLD: usize = 10 * 1024;

/// Probe every enumerated Gab username for a Dissenter home page.
///
/// With a [`SweepHint`](crate::SweepHint) attached, only accounts
/// created since the previous sweep plus the known positives are
/// probed: a 404-sized miss carries no validator so re-probing it is
/// never `304`-cheap, and the epoch contract guarantees an existing
/// account cannot gain a Dissenter page mid-study (known positives
/// *are* re-probed — bans change their pages).
pub fn probe_dissenter_accounts(crawler: &Crawler, store: &mut CrawlStore) {
    let run = PhaseRun::new(crawler, Phase::Probe);
    let usernames: Vec<String> = match crawler.sweep_hint() {
        Some(hint) => store
            .gab_accounts
            .iter()
            .filter(|a| {
                a.gab_id > hint.max_gab_id || hint.dissenter_usernames.contains(&a.username)
            })
            .map(|a| a.username.clone())
            .collect(),
        None => store.gab_accounts.iter().map(|a| a.username.clone()).collect(),
    };
    let mut hits = crate::parallel::parallel_fetch(
        crawler.endpoints.dissenter,
        &usernames,
        crawler.config.workers,
        &store.stats,
        |c| run.setup_client(c),
        |client, name| {
            let resp = run.fetch(client, store, &format!("/user/{name}"))?;
            // Classification is purely by body size — deliberately NOT by
            // status code, mirroring the paper's inference.
            (resp.body.len() >= SIZE_THRESHOLD).then(|| name.clone())
        },
    );
    hits.sort();
    store.dissenter_usernames = hits;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_matches_paper() {
        assert_eq!(SIZE_THRESHOLD, 10_240);
    }
}
