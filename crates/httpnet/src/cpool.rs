//! Client-side keep-alive connection pool.
//!
//! A [`ConnPool`] keeps idle TCP connections per host so repeated
//! requests to the same server skip the connect handshake. It is cheap
//! to clone (shared handle) so one pool can back many [`crate::Client`]s
//! — the crawler's sweeps and the load generator both reuse connections
//! instead of paying per-request connect cost.
//!
//! Invariants:
//!
//! * **Bounded per host** — at most [`PoolConfig::max_idle_per_host`]
//!   idle connections are retained per address; surplus check-ins are
//!   dropped (counted as evictions).
//! * **Idle timeout** — a connection idle longer than
//!   [`PoolConfig::idle_timeout`] is never handed out; it is closed and
//!   counted under `pool.evicted` at the next checkout (plus whenever
//!   [`ConnPool::evict_idle`] runs).
//! * **LIFO reuse** — the most recently returned connection is handed
//!   out first, so the warmest socket is reused and stale ones age out
//!   at the bottom of the stack.
//! * A checked-out connection is owned by the caller; only a successful
//!   response should check it back in (a failed exchange leaves the
//!   socket in an unknown wire state, so the caller must drop it).
//!
//! Counters `pool.{reuse,open,evicted}` are always tracked internally
//! (see [`ConnPool::stats`]) and mirrored into an [`obs::Registry`] when
//! constructed via [`ConnPool::with_metrics`].

use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum idle connections retained per host.
    pub max_idle_per_host: usize,
    /// Idle connections older than this are evicted instead of reused.
    pub idle_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { max_idle_per_host: 8, idle_timeout: Duration::from_secs(30) }
    }
}

/// A point-in-time view of pool activity (see [`ConnPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh connections opened (`pool.open`).
    pub open: u64,
    /// Checkouts satisfied by an idle connection (`pool.reuse`).
    pub reuse: u64,
    /// Idle connections closed by timeout or per-host bound
    /// (`pool.evicted`).
    pub evicted: u64,
    /// Idle connections currently parked.
    pub idle: usize,
}

struct IdleConn {
    conn: BufReader<TcpStream>,
    since: Instant,
}

struct Inner {
    config: PoolConfig,
    hosts: Mutex<HashMap<SocketAddr, Vec<IdleConn>>>,
    open: AtomicU64,
    reuse: AtomicU64,
    evicted: AtomicU64,
    metrics: Option<PoolCounters>,
}

struct PoolCounters {
    open: obs::Counter,
    reuse: obs::Counter,
    evicted: obs::Counter,
}

/// A cloneable, thread-safe keep-alive connection pool.
#[derive(Clone)]
pub struct ConnPool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ConnPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(f, "ConnPool(open={}, reuse={}, evicted={}, idle={})", s.open, s.reuse, s.evicted, s.idle)
    }
}

impl Default for ConnPool {
    fn default() -> Self {
        ConnPool::new(PoolConfig::default())
    }
}

impl ConnPool {
    /// A pool with the given knobs and no registry-backed metrics.
    pub fn new(config: PoolConfig) -> ConnPool {
        ConnPool {
            inner: Arc::new(Inner {
                config,
                hosts: Mutex::new(HashMap::new()),
                open: AtomicU64::new(0),
                reuse: AtomicU64::new(0),
                evicted: AtomicU64::new(0),
                metrics: None,
            }),
        }
    }

    /// A pool that mirrors its counters into `registry` under
    /// `pool.{open,reuse,evicted}`.
    pub fn with_metrics(config: PoolConfig, registry: &obs::Registry) -> ConnPool {
        let mut pool = ConnPool::new(config);
        Arc::get_mut(&mut pool.inner).expect("freshly built, no clones yet").metrics =
            Some(PoolCounters {
                open: registry.counter("pool.open"),
                reuse: registry.counter("pool.reuse"),
                evicted: registry.counter("pool.evicted"),
            });
        pool
    }

    /// Check out a connection to `addr`: the warmest non-expired idle one
    /// when available (reuse), otherwise a fresh connect bounded by
    /// `connect_timeout`. Returns the connection and whether it was
    /// reused.
    pub fn acquire(
        &self,
        addr: SocketAddr,
        connect_timeout: Duration,
    ) -> std::io::Result<(BufReader<TcpStream>, bool)> {
        if let Some(conn) = self.checkout_idle(addr) {
            return Ok((conn, true));
        }
        Ok((self.connect_fresh(addr, connect_timeout)?, false))
    }

    /// Open a fresh connection to `addr`, bypassing idle reuse (used for
    /// the transparent retry after a stale pooled connection failed).
    /// Counted under `pool.open`.
    pub fn connect_fresh(
        &self,
        addr: SocketAddr,
        connect_timeout: Duration,
    ) -> std::io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        let _ = stream.set_nodelay(true);
        self.inner.open.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.inner.metrics {
            m.open.inc();
        }
        Ok(BufReader::new(stream))
    }

    /// Return a healthy connection for later reuse. Dropped (and counted
    /// as evicted) when the host already holds `max_idle_per_host` idle
    /// connections.
    pub fn release(&self, addr: SocketAddr, conn: BufReader<TcpStream>) {
        let mut dropped = 0u64;
        {
            let mut hosts = self.inner.hosts.lock();
            let stack = hosts.entry(addr).or_default();
            if stack.len() >= self.inner.config.max_idle_per_host {
                dropped = 1;
            } else {
                stack.push(IdleConn { conn, since: Instant::now() });
            }
        }
        if dropped > 0 {
            self.count_evicted(dropped);
        }
    }

    /// Close every idle connection that has outlived the idle timeout,
    /// across all hosts. Returns how many were evicted. (Expired
    /// connections are also skipped-and-evicted lazily at checkout; this
    /// exists for callers that want bounded idle fd counts without
    /// traffic.)
    pub fn evict_idle(&self) -> u64 {
        let cutoff = Instant::now();
        let timeout = self.inner.config.idle_timeout;
        let mut dropped = 0u64;
        {
            let mut hosts = self.inner.hosts.lock();
            for stack in hosts.values_mut() {
                let before = stack.len();
                stack.retain(|c| cutoff.duration_since(c.since) <= timeout);
                dropped += (before - stack.len()) as u64;
            }
            hosts.retain(|_, stack| !stack.is_empty());
        }
        if dropped > 0 {
            self.count_evicted(dropped);
        }
        dropped
    }

    /// Activity counters and the current idle population.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            open: self.inner.open.load(Ordering::Relaxed),
            reuse: self.inner.reuse.load(Ordering::Relaxed),
            evicted: self.inner.evicted.load(Ordering::Relaxed),
            idle: self.inner.hosts.lock().values().map(Vec::len).sum(),
        }
    }

    fn checkout_idle(&self, addr: SocketAddr) -> Option<BufReader<TcpStream>> {
        let timeout = self.inner.config.idle_timeout;
        let now = Instant::now();
        let mut expired = 0u64;
        let picked = {
            let mut hosts = self.inner.hosts.lock();
            let stack = hosts.get_mut(&addr)?;
            // LIFO: warmest connection first; expired ones are closed.
            let mut picked = None;
            while let Some(idle) = stack.pop() {
                if now.duration_since(idle.since) <= timeout {
                    picked = Some(idle.conn);
                    break;
                }
                expired += 1;
            }
            if stack.is_empty() {
                hosts.remove(&addr);
            }
            picked
        };
        if expired > 0 {
            self.count_evicted(expired);
        }
        if picked.is_some() {
            self.inner.reuse.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.inner.metrics {
                m.reuse.inc();
            }
        }
        picked
    }

    fn count_evicted(&self, n: u64) {
        self.inner.evicted.fetch_add(n, Ordering::Relaxed);
        if let Some(m) = &self.inner.metrics {
            m.evicted.add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Request, Response};
    use crate::server::{Handler, Server, ServerConfig};

    fn pong_server() -> Server {
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::html("pong".to_string()));
        Server::start(handler, ServerConfig::default()).unwrap()
    }

    #[test]
    fn acquire_reuses_released_connections() {
        let server = pong_server();
        let pool = ConnPool::new(PoolConfig::default());
        let (conn, reused) = pool.acquire(server.addr(), Duration::from_secs(1)).unwrap();
        assert!(!reused);
        pool.release(server.addr(), conn);
        let (_conn, reused) = pool.acquire(server.addr(), Duration::from_secs(1)).unwrap();
        assert!(reused, "released connection must be handed back out");
        let stats = pool.stats();
        assert_eq!((stats.open, stats.reuse, stats.idle), (1, 1, 0));
    }

    #[test]
    fn per_host_bound_drops_surplus_checkins() {
        let server = pong_server();
        let pool = ConnPool::new(PoolConfig { max_idle_per_host: 2, ..Default::default() });
        let conns: Vec<_> = (0..4)
            .map(|_| pool.acquire(server.addr(), Duration::from_secs(1)).unwrap().0)
            .collect();
        for c in conns {
            pool.release(server.addr(), c);
        }
        let stats = pool.stats();
        assert_eq!(stats.idle, 2, "bound enforced");
        assert_eq!(stats.evicted, 2, "surplus counted as evicted");
    }

    #[test]
    fn idle_timeout_evicts_on_checkout() {
        let server = pong_server();
        let pool = ConnPool::new(PoolConfig {
            idle_timeout: Duration::from_millis(20),
            ..Default::default()
        });
        let (conn, _) = pool.acquire(server.addr(), Duration::from_secs(1)).unwrap();
        pool.release(server.addr(), conn);
        std::thread::sleep(Duration::from_millis(50));
        let (_conn, reused) = pool.acquire(server.addr(), Duration::from_secs(1)).unwrap();
        assert!(!reused, "expired idle connection must not be reused");
        let stats = pool.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.open, 2);
    }

    #[test]
    fn evict_idle_sweeps_without_traffic() {
        let server = pong_server();
        let pool = ConnPool::new(PoolConfig {
            idle_timeout: Duration::from_millis(20),
            ..Default::default()
        });
        for _ in 0..3 {
            let conn = pool.connect_fresh(server.addr(), Duration::from_secs(1)).unwrap();
            pool.release(server.addr(), conn);
        }
        assert_eq!(pool.stats().idle, 3);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(pool.evict_idle(), 3);
        let stats = pool.stats();
        assert_eq!((stats.idle, stats.evicted), (0, 3));
    }

    #[test]
    fn metrics_mirror_pool_counters() {
        let server = pong_server();
        let registry = obs::Registry::new();
        let pool = ConnPool::with_metrics(
            PoolConfig { max_idle_per_host: 1, ..Default::default() },
            &registry,
        );
        let (a, _) = pool.acquire(server.addr(), Duration::from_secs(1)).unwrap();
        let (b, _) = pool.acquire(server.addr(), Duration::from_secs(1)).unwrap();
        pool.release(server.addr(), a);
        pool.release(server.addr(), b); // over the bound of 1 → evicted
        let (_c, reused) = pool.acquire(server.addr(), Duration::from_secs(1)).unwrap();
        assert!(reused);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.open"), Some(2));
        assert_eq!(snap.counter("pool.reuse"), Some(1));
        assert_eq!(snap.counter("pool.evicted"), Some(1));
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let server = pong_server();
        let addr = server.addr();
        let pool = ConnPool::new(PoolConfig::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = pool.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let (conn, _) = p.acquire(addr, Duration::from_secs(1)).unwrap();
                    p.release(addr, conn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.open + stats.reuse, 40, "every checkout accounted");
    }
}
