//! The rendered-YouTube front-end (§3.3).
//!
//! The paper drove Selenium because YouTube titles/owners live in large
//! JavaScript blobs. Our stand-in models the *output* of that rendering
//! step: `GET /render?url=<page url>` returns the fully-rendered page
//! state as JSON (kind, availability, title, owner, comments-disabled).

use crate::cache::FrontCache;
use crate::Front;
use httpnet::http::percent_encode;
use httpnet::{Handler, Request, Response, Router, ServerConfig, Status};
use platform::{World, YtKind, YtState, YtUnavailableReason};
use std::sync::Arc;

/// Rendered pages are the same for every requester.
const RENDER_CLASS: &str = "render";

/// Handler exposing the rendered view of YouTube pages. Rendering was
/// the paper's most expensive fetch (a Selenium browser per page), which
/// makes this front the best conditional-serving customer: rendered
/// states are tagged, cached, and revalidate to `304`s.
pub struct YouTubeFront {
    router: Router,
    config_override: Option<ServerConfig>,
}

impl YouTubeFront {
    /// Build over a shared world with a default cache.
    pub fn new(world: Arc<World>) -> Self {
        let stamp = world.content_hash();
        Self::with_cache(world, FrontCache::new(stamp))
    }

    /// Build with an explicit conditional-request cache.
    pub fn with_cache(world: Arc<World>, cache: FrontCache) -> Self {
        let mut router = Router::new();
        router.route("GET", "/render", move |req, _| {
            cache.respond(req, RENDER_CLASS, || render(&world, req))
        });
        Self { router, config_override: None }
    }

    /// Pin an explicit server configuration for this front.
    pub fn with_server_config(mut self, config: ServerConfig) -> Self {
        self.config_override = Some(config);
        self
    }
}

impl Handler for YouTubeFront {
    fn handle(&self, req: &Request) -> Response {
        self.router.dispatch(req)
    }
}

impl Front for YouTubeFront {
    fn name(&self) -> &'static str {
        "youtube"
    }

    fn server_config(&self, base: &ServerConfig) -> ServerConfig {
        self.config_override.clone().unwrap_or_else(|| base.clone())
    }
}

/// Path for rendering a given URL.
pub fn render_target(url: &str) -> String {
    format!("/render?url={}", percent_encode(url))
}

fn render(world: &World, req: &Request) -> Response {
    let Some(url) = req.query("url") else {
        return Response::status(Status(400));
    };
    let Some(content) = world.youtube.get(&url) else {
        // Never-hosted URL: YouTube 404.
        let mut r = Response::status(Status::NOT_FOUND);
        r.body = br#"{"error":"not found"}"#.to_vec();
        return r;
    };
    let kind = match content.kind {
        YtKind::Video => "video",
        YtKind::User => "user",
        YtKind::Channel => "channel",
    };
    let v = match &content.state {
        YtState::Active { title, owner, comments_disabled } => jsonlite::Value::object()
            .with("kind", kind)
            .with("available", true)
            .with("title", title.as_str())
            .with("owner", owner.as_str())
            .with("comments_disabled", *comments_disabled),
        YtState::Unavailable(reason) => {
            let label = match reason {
                YtUnavailableReason::Generic => "Video Unavailable",
                YtUnavailableReason::Private => "This video is private",
                YtUnavailableReason::AccountTerminated => {
                    "This video is no longer available because the account has been terminated"
                }
                YtUnavailableReason::HateSpeechPolicy => {
                    "This video has been removed for violating YouTube's policy on hate speech"
                }
            };
            jsonlite::Value::object()
                .with("kind", kind)
                .with("available", false)
                .with("reason", label)
        }
    };
    Response::json(jsonlite::to_string(&v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_target_percent_encodes() {
        let t = render_target("https://youtube.com/watch?v=a&b=c");
        assert!(t.starts_with("/render?url="));
        assert!(!t[12..].contains('&'), "reserved chars must be escaped: {t}");
        assert!(!t[12..].contains('?'));
    }
}
