//! The Porter stemming algorithm (Porter, 1980).
//!
//! The paper stems tokens before matching against the hate dictionary so
//! that inflected forms ("slurs", "slurring") hit the same dictionary entry
//! — while noting this also *creates* false positives (§3.5). A faithful
//! from-scratch implementation of the original five-step algorithm.

/// Stem a single lowercase ASCII word. Non-ASCII or very short input is
/// returned unchanged (the classic algorithm is defined over ASCII and
/// leaves words of length ≤ 2 alone).
///
/// ```
/// assert_eq!(textkit::porter_stem("running"), "run");
/// assert_eq!(textkit::porter_stem("caresses"), "caress");
/// assert_eq!(textkit::porter_stem("relational"), "relat");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase() || b == b'\'') {
        return word.to_owned();
    }
    let mut w: Vec<u8> = word.bytes().filter(|&b| b != b'\'').collect();
    if w.len() <= 2 {
        return String::from_utf8(w).expect("ascii");
    }
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii")
}

fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// The "measure" m of the stem w[..end]: count of VC sequences.
fn measure(w: &[u8], end: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < end && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < end && !is_consonant(w, i) {
            i += 1;
        }
        if i >= end {
            return m;
        }
        // Skip consonants — one full VC observed.
        while i < end && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
    }
}

fn has_vowel(w: &[u8], end: usize) -> bool {
    (0..end).any(|i| !is_consonant(w, i))
}

fn ends_double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

/// cvc pattern at the end, where the final c is not w, x, or y.
fn ends_cvc(w: &[u8], end: usize) -> bool {
    if end < 3 {
        return false;
    }
    let (a, b, c) = (end - 3, end - 2, end - 1);
    is_consonant(w, a)
        && !is_consonant(w, b)
        && is_consonant(w, c)
        && !matches!(w[c], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suf: &str) -> bool {
    w.len() >= suf.len() && &w[w.len() - suf.len()..] == suf.as_bytes()
}

/// If w ends with `suf` and measure(stem) satisfies `cond`, replace the
/// suffix with `rep` and return true.
fn replace_if(w: &mut Vec<u8>, suf: &str, rep: &str, cond: impl Fn(&[u8], usize) -> bool) -> bool {
    if ends_with(w, suf) {
        let stem_len = w.len() - suf.len();
        if cond(w, stem_len) {
            w.truncate(stem_len);
            w.extend_from_slice(rep.as_bytes());
            return true;
        }
    }
    false
}

fn step1a(w: &mut Vec<u8>) {
    // "sses" → "ss" and "ies" → "i" both drop two bytes; keep the branches
    // in Porter's published order for readability.
    if ends_with(w, "sses") || ends_with(w, "ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, "ss") {
        // keep
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let hit = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if hit {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if ends_double_consonant(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suf, rep) in RULES {
        if replace_if(w, suf, rep, |w, n| measure(w, n) > 0) {
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suf, rep) in RULES {
        if replace_if(w, suf, rep, |w, n| measure(w, n) > 0) {
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const RULES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" requires the stem to end in s or t.
    if ends_with(w, "ion") {
        let n = w.len() - 3;
        if measure(w, n) > 1 && n > 0 && matches!(w[n - 1], b's' | b't') {
            w.truncate(n);
            return;
        }
    }
    for suf in RULES {
        if ends_with(w, suf) {
            let n = w.len() - suf.len();
            if measure(w, n) > 1 {
                w.truncate(n);
            }
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let n = w.len() - 1;
        let m = measure(w, n);
        if m > 1 || (m == 1 && !ends_cvc(w, n)) {
            w.truncate(n);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(w: &str) -> String {
        porter_stem(w)
    }

    #[test]
    fn classic_vectors() {
        // Vectors from Porter's paper and the reference implementation.
        assert_eq!(s("caresses"), "caress");
        assert_eq!(s("ponies"), "poni");
        assert_eq!(s("ties"), "ti");
        assert_eq!(s("caress"), "caress");
        assert_eq!(s("cats"), "cat");
        assert_eq!(s("feed"), "feed");
        assert_eq!(s("agreed"), "agre");
        assert_eq!(s("plastered"), "plaster");
        assert_eq!(s("bled"), "bled");
        assert_eq!(s("motoring"), "motor");
        assert_eq!(s("sing"), "sing");
    }

    #[test]
    fn repair_rules() {
        assert_eq!(s("conflated"), "conflat");
        assert_eq!(s("troubled"), "troubl");
        assert_eq!(s("sized"), "size");
        assert_eq!(s("hopping"), "hop");
        assert_eq!(s("tanned"), "tan");
        assert_eq!(s("falling"), "fall");
        assert_eq!(s("hissing"), "hiss");
        assert_eq!(s("fizzed"), "fizz");
        assert_eq!(s("failing"), "fail");
        assert_eq!(s("filing"), "file");
    }

    #[test]
    fn y_to_i() {
        assert_eq!(s("happy"), "happi");
        assert_eq!(s("sky"), "sky");
    }

    #[test]
    fn step2_suffixes() {
        assert_eq!(s("relational"), "relat");
        assert_eq!(s("conditional"), "condit");
        assert_eq!(s("rational"), "ration");
        assert_eq!(s("valenci"), "valenc");
        assert_eq!(s("digitizer"), "digit");
        assert_eq!(s("operator"), "oper");
    }

    #[test]
    fn step3_step4() {
        assert_eq!(s("triplicate"), "triplic");
        assert_eq!(s("formative"), "form");
        assert_eq!(s("formalize"), "formal");
        assert_eq!(s("hopefulness"), "hope");
        assert_eq!(s("goodness"), "good");
        assert_eq!(s("revival"), "reviv");
        assert_eq!(s("adjustment"), "adjust");
        assert_eq!(s("adoption"), "adopt");
    }

    #[test]
    fn full_words() {
        assert_eq!(s("running"), "run");
        assert_eq!(s("dogs"), "dog");
        assert_eq!(s("censorship"), "censorship");
        assert_eq!(s("comments"), "comment");
        assert_eq!(s("generalizations"), "gener");
    }

    #[test]
    fn short_and_nonascii_untouched() {
        assert_eq!(s("a"), "a");
        assert_eq!(s("be"), "be");
        assert_eq!(s("caf\u{e9}"), "caf\u{e9}");
        assert_eq!(s("\u{fc}ber"), "\u{fc}ber");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["running", "happiness", "relational", "dogs", "flies"] {
            let once = s(w);
            let twice = s(&once);
            // Porter is not guaranteed idempotent in general, but it is on
            // these vectors — a regression canary for the implementation.
            assert_eq!(once, twice, "word {w}");
        }
    }
}
