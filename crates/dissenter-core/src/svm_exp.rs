//! The §3.5.3 NLP experiment: train the three-class SVM on the synthetic
//! labeled corpus (Davidson-shaped imbalance) with ADASYN oversampling and
//! grid search, report 5-fold cross-validated F1, then compute class
//! probabilities for every crawled Dissenter comment.

use classify::adasyn::AdasynConfig;
use classify::cv::grid_search;
use classify::svm::{Featurizer, LinearSvm, SparseVec, SvmConfig};
use classify::CommentClass;
use crawler::CrawlStore;
use synth::labeled_corpus;

/// Outcome of the SVM experiment.
#[derive(Debug, Clone)]
pub struct SvmReport {
    /// Best 5-fold weighted F1 found by the grid search (paper: 0.87).
    pub cv_f1: f64,
    /// All grid points `(lambda, weighted F1)`.
    pub grid: Vec<(f64, f64)>,
    /// The winning λ.
    pub best_lambda: f64,
    /// Labeled corpus size used.
    pub corpus_size: usize,
    /// Mean class probability over all Dissenter comments
    /// `[hate, offensive, neither]`.
    pub mean_class_probs: [f64; 3],
    /// Fraction of Dissenter comments whose argmax class is each of
    /// `[hate, offensive, neither]`.
    pub class_shares: [f64; 3],
}

/// Run the full experiment against a crawl.
pub fn run_svm_experiment(store: &CrawlStore, corpus_size: usize, seed: u64) -> SvmReport {
    run_svm_experiment_with_metrics(store, corpus_size, seed, None)
}

/// [`run_svm_experiment`], exporting scorer metrics to `metrics`:
/// `classify.svm.comments` (comments the final model scored —
/// deterministic), `classify.svm.train` / `classify.svm.apply` busy-time
/// histograms, and a `classify.svm.comments_per_sec` application-rate
/// gauge.
pub fn run_svm_experiment_with_metrics(
    store: &CrawlStore,
    corpus_size: usize,
    seed: u64,
    metrics: Option<&obs::Registry>,
) -> SvmReport {
    let train_started = std::time::Instant::now();
    let corpus = labeled_corpus(corpus_size, seed ^ 0x5717);
    let featurizer = Featurizer::standard();
    let samples: Vec<(SparseVec, usize)> = corpus
        .iter()
        .map(|s| (featurizer.featurize(&s.text), s.class.index()))
        .collect();

    let lambdas = [1e-5, 1e-4, 1e-3];
    let base = SvmConfig { epochs: 8, seed, ..SvmConfig::default() };
    let results = grid_search(
        &samples,
        3,
        5,
        &lambdas,
        base,
        Some(AdasynConfig { k: 5, beta: 1.0, seed }),
        seed ^ 0xF0F0,
    );
    let best = &results[0];
    let grid: Vec<(f64, f64)> = results.iter().map(|r| (r.config.lambda, r.weighted_f1())).collect();

    // Final model on the full (oversampled) corpus; apply to all comments.
    let oversampled =
        classify::adasyn::adasyn(&samples, 3, AdasynConfig { k: 5, beta: 1.0, seed });
    let model = LinearSvm::train(&oversampled, 3, best.config);
    let train_busy = train_started.elapsed();

    let apply_started = std::time::Instant::now();
    let mut mean = [0.0f64; 3];
    let mut shares = [0.0f64; 3];
    let n = store.comments.len().max(1);
    for c in store.comments.values() {
        let x = featurizer.featurize(&c.text);
        let p = model.probabilities(&x);
        for k in 0..3 {
            mean[k] += p[k];
        }
        shares[model.predict(&x)] += 1.0;
    }
    for k in 0..3 {
        mean[k] /= n as f64;
        shares[k] /= n as f64;
    }

    if let Some(registry) = metrics {
        let apply_busy = apply_started.elapsed();
        registry.add("classify.svm.comments", store.comments.len() as u64);
        registry.observe("classify.svm.train", train_busy);
        registry.observe("classify.svm.apply", apply_busy);
        if !apply_busy.is_zero() {
            registry.set_gauge(
                "classify.svm.comments_per_sec",
                store.comments.len() as f64 / apply_busy.as_secs_f64(),
            );
        }
    }

    SvmReport {
        cv_f1: best.weighted_f1(),
        best_lambda: best.config.lambda,
        grid,
        corpus_size: corpus.len(),
        mean_class_probs: mean,
        class_shares: shares,
    }
}

/// Class label order used in the report arrays.
pub const CLASS_ORDER: [CommentClass; 3] =
    [CommentClass::Hate, CommentClass::Offensive, CommentClass::Neither];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svm_experiment_reaches_paper_band_on_synthetic_corpus() {
        let store = CrawlStore::default();
        let r = run_svm_experiment(&store, 1_500, 42);
        assert!(r.cv_f1 > 0.8, "weighted F1 {}", r.cv_f1);
        assert!(r.grid.len() == 3);
        // Empty store → no comment application.
        assert_eq!(r.class_shares, [0.0; 3]);
    }
}
