//! Closed-loop load generator for the conditional-request serving layer
//! (the `BENCH_PR5.json` artifact).
//!
//! [`run`] drives a front with `threads` closed-loop workers — each
//! issues its next request only after the previous one completes — and
//! reports throughput plus exact latency percentiles. Two regimes:
//!
//! * [`Mode::Uncached`] — every request carries a unique cache-busting
//!   query, so the server renders every response from scratch and no
//!   validator ever matches. This is the pre-PR cost of a request.
//! * [`Mode::Cached`] — a fixed working set fetched through a shared
//!   client [`RevalidationCache`]: after the first fetch of each target,
//!   repeats send `If-None-Match` and ride the `304` fast path (a hash
//!   compare and ~100 wire bytes instead of a render and a full body).
//!
//! The `loadgen` binary runs both regimes against the same services and
//! self-validates that cached throughput strictly beats uncached.

use httpnet::{Client, RevalidationCache};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Load shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Closed-loop worker threads.
    pub threads: usize,
    /// Requests each worker issues.
    pub requests_per_thread: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self { threads: 4, requests_per_thread: 250 }
    }
}

/// Serving regime under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unique query string per request: every response fully rendered.
    Uncached,
    /// Fixed working set through a shared revalidation cache.
    Cached,
}

/// One regime's measured outcome.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// Requests completed successfully (2xx, or 304-resolved).
    pub requests: u64,
    /// Requests that errored or returned non-success (expected 0).
    pub failures: u64,
    /// Wall-clock for the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Successful requests per second.
    pub req_per_sec: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Requests resolved client-side from a `304 Not Modified`.
    pub not_modified: u64,
}

/// Drive `targets` on the server at `addr` under the given regime.
/// Workers walk the target list round-robin from staggered offsets, so
/// every target is exercised by every thread.
pub fn run(addr: SocketAddr, targets: &[String], cfg: &LoadConfig, mode: Mode) -> LoadSummary {
    assert!(!targets.is_empty(), "loadgen needs at least one target");
    let threads = cfg.threads.max(1);
    let bust = AtomicU64::new(0);
    let reval = RevalidationCache::new(targets.len() * 4);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let failures = AtomicU64::new(0);
    let before_revalidated = reval.stats().revalidated;

    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let reval = reval.clone();
            let (bust, latencies, failures) = (&bust, &latencies, &failures);
            scope.spawn(move || {
                let mut builder = Client::builder(addr).keep_alive(true);
                if mode == Mode::Cached {
                    builder = builder.revalidation_cache(reval);
                }
                let mut client = builder.build();
                let mut local = Vec::with_capacity(cfg.requests_per_thread);
                for i in 0..cfg.requests_per_thread {
                    let base = &targets[(t + i) % targets.len()];
                    let target = match mode {
                        Mode::Cached => base.clone(),
                        Mode::Uncached => {
                            format!("{base}?bust={}", bust.fetch_add(1, Ordering::Relaxed))
                        }
                    };
                    let sent = Instant::now();
                    match client.get_keep_alive(&target) {
                        Ok(resp) if resp.status.is_success() => {
                            local.push(sent.elapsed().as_micros() as u64);
                        }
                        _ => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
    });
    let wall = started.elapsed();

    let mut lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    lat.sort_unstable();
    let pct = |q: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        lat[((lat.len() - 1) as f64 * q).round() as usize]
    };
    let requests = lat.len() as u64;
    let wall_ms = wall.as_secs_f64() * 1e3;
    LoadSummary {
        requests,
        failures: failures.load(Ordering::Relaxed),
        wall_ms,
        req_per_sec: if wall_ms > 0.0 { requests as f64 / (wall_ms / 1e3) } else { 0.0 },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        not_modified: reval.stats().revalidated.saturating_sub(before_revalidated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use synth::config::Scale;
    use synth::WorldConfig;

    #[test]
    fn cached_load_engages_the_fast_path() {
        let cfg = WorldConfig {
            seed: 0xBEEF,
            scale: Scale::Custom(0.001),
            ..WorldConfig::small()
        };
        let (world, _) = synth::generate(&cfg);
        let world = Arc::new(world);
        let registry = obs::Registry::new();
        let fronts = webfront::SimFronts::with_registry(world.clone(), &registry);
        let services =
            webfront::SimServices::start_with(fronts, crawler::default_server_config())
                .expect("services start");

        let mut names: Vec<String> =
            world.dissenter_users().map(|i| world.user(i).username.clone()).collect();
        names.sort_unstable();
        let targets: Vec<String> =
            names.iter().take(4).map(|n| format!("/user/{n}")).collect();
        assert!(!targets.is_empty(), "world has dissenter users");

        let load = LoadConfig { threads: 2, requests_per_thread: 20 };
        let summary = run(services.dissenter.addr(), &targets, &load, Mode::Cached);
        assert_eq!(summary.failures, 0, "loopback load must not fail");
        assert_eq!(summary.requests, 40);
        assert!(
            summary.not_modified > 0,
            "repeat fetches of a fixed working set must revalidate: {summary:?}"
        );
        let snap = registry.snapshot();
        let hits = snap.counter("cache.hits").unwrap_or(0);
        let ratio = (summary.not_modified + hits) as f64 / summary.requests as f64;
        assert!(ratio > 0.0, "cache-hit ratio must be nonzero (hits {hits}, {summary:?})");
    }

    #[test]
    fn uncached_load_never_revalidates() {
        let cfg = WorldConfig {
            seed: 0xBEEF,
            scale: Scale::Custom(0.001),
            ..WorldConfig::small()
        };
        let (world, _) = synth::generate(&cfg);
        let world = Arc::new(world);
        let services =
            webfront::SimServices::start(world.clone(), crawler::default_server_config())
                .expect("services start");
        let name = world
            .dissenter_users()
            .map(|i| world.user(i).username.clone())
            .min()
            .expect("a dissenter user");
        let targets = vec![format!("/user/{name}")];
        let load = LoadConfig { threads: 2, requests_per_thread: 10 };
        let summary = run(services.dissenter.addr(), &targets, &load, Mode::Uncached);
        assert_eq!(summary.failures, 0);
        assert_eq!(summary.not_modified, 0, "cache-busted requests must never 304");
    }
}
