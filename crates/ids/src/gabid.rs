//! Gab's sequential user identifiers (§3.1, Figure 2).
//!
//! Unlike Dissenter's timestamped object IDs, Gab user IDs are a counter
//! beginning at 1 (ID 1 belonged to "@e", the former Gab CTO). The paper's
//! exhaustive enumeration of IDs 1..N is what made complete user discovery
//! possible. Figure 2 shows IDs are *generally* monotone in account-creation
//! time, with two distinct anomaly periods where Gab assigned previously
//! unallocated lower-valued IDs to new accounts.
//!
//! [`GabIdAllocator`] reproduces that behaviour: sequential allocation with
//! configurable "gap" windows during which some fraction of new accounts
//! receive recycled low IDs, breaking monotonicity exactly as in Figure 2.

use crate::clock::Timestamp;
use rand::Rng;

/// A Gab user ID. `1` is the oldest account; `0` is never allocated.
pub type GabId = u64;

/// One window of anomalous (non-monotone) ID assignment.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyWindow {
    /// Simulated time the anomaly starts.
    pub start: Timestamp,
    /// Simulated time the anomaly ends.
    pub end: Timestamp,
    /// Probability a registration inside the window draws a recycled ID.
    pub recycle_prob: f64,
}

/// Allocates Gab IDs: monotone counter + deliberate gaps + recycled IDs
/// during anomaly windows.
#[derive(Debug, Clone)]
pub struct GabIdAllocator {
    next: GabId,
    /// Low-valued IDs skipped earlier and available for recycling.
    free_pool: Vec<GabId>,
    windows: Vec<AnomalyWindow>,
    /// Probability of deliberately skipping an ID (leaving a gap) on a
    /// normal allocation, feeding the free pool.
    gap_prob: f64,
}

impl GabIdAllocator {
    /// A fresh allocator with the two Figure-2 anomaly windows.
    pub fn with_paper_anomalies(gap_prob: f64) -> Self {
        use crate::clock::from_ymd;
        Self::new(
            gap_prob,
            vec![
                AnomalyWindow {
                    start: from_ymd(2018, 8, 1),
                    end: from_ymd(2018, 11, 1),
                    recycle_prob: 0.5,
                },
                AnomalyWindow {
                    start: from_ymd(2019, 7, 1),
                    end: from_ymd(2019, 10, 1),
                    recycle_prob: 0.5,
                },
            ],
        )
    }

    /// Allocator with explicit anomaly windows. `gap_prob` must be in [0,1).
    pub fn new(gap_prob: f64, windows: Vec<AnomalyWindow>) -> Self {
        assert!((0.0..1.0).contains(&gap_prob), "gap_prob out of range");
        Self { next: 1, free_pool: Vec::new(), windows, gap_prob }
    }

    /// Allocate an ID for an account created at `now`.
    pub fn allocate<R: Rng>(&mut self, now: Timestamp, rng: &mut R) -> GabId {
        let in_window = self
            .windows
            .iter()
            .find(|w| now >= w.start && now < w.end)
            .copied();
        if let Some(w) = in_window {
            if !self.free_pool.is_empty() && rng.gen::<f64>() < w.recycle_prob {
                let idx = rng.gen_range(0..self.free_pool.len());
                return self.free_pool.swap_remove(idx);
            }
        }
        // Possibly leave a gap (these IDs become recyclable later).
        while rng.gen::<f64>() < self.gap_prob {
            self.free_pool.push(self.next);
            self.next += 1;
        }
        let id = self.next;
        self.next += 1;
        id
    }

    /// Highest ID handed out or reserved so far.
    pub fn high_water(&self) -> GabId {
        self.next.saturating_sub(1)
    }

    /// IDs currently skipped and eligible for recycling.
    pub fn free_pool_len(&self) -> usize {
        self.free_pool.len()
    }
}

/// Measure monotonicity of an `(id, created_at)` series: the fraction of
/// consecutive-by-id pairs whose creation times are non-decreasing.
///
/// Figure 2's "generally monotone, two anomalies" shape corresponds to a
/// value close to but below 1.0.
pub fn monotone_fraction(mut series: Vec<(GabId, Timestamp)>) -> f64 {
    if series.len() < 2 {
        return 1.0;
    }
    series.sort_by_key(|&(id, _)| id);
    let ok = series
        .windows(2)
        .filter(|w| w[0].1 <= w[1].1)
        .count();
    ok as f64 / (series.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ids_start_at_one() {
        let mut a = GabIdAllocator::new(0.0, vec![]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(a.allocate(100, &mut rng), 1);
        assert_eq!(a.allocate(200, &mut rng), 2);
    }

    #[test]
    fn no_gaps_means_strictly_sequential() {
        let mut a = GabIdAllocator::new(0.0, vec![]);
        let mut rng = StdRng::seed_from_u64(1);
        let ids: Vec<GabId> = (0..100).map(|i| a.allocate(i, &mut rng)).collect();
        assert_eq!(ids, (1..=100).collect::<Vec<_>>());
        assert_eq!(a.free_pool_len(), 0);
    }

    #[test]
    fn gaps_populate_free_pool() {
        let mut a = GabIdAllocator::new(0.3, vec![]);
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..1000 {
            a.allocate(i, &mut rng);
        }
        assert!(a.free_pool_len() > 100, "pool: {}", a.free_pool_len());
    }

    #[test]
    fn anomaly_window_recycles_low_ids() {
        let w = AnomalyWindow { start: 1_000, end: 2_000, recycle_prob: 1.0 };
        let mut a = GabIdAllocator::new(0.5, vec![w]);
        let mut rng = StdRng::seed_from_u64(3);
        // Fill the pool before the window.
        for i in 0..500 {
            a.allocate(i, &mut rng);
        }
        let high = a.high_water();
        // Inside the window every allocation (pool non-empty) recycles.
        let id = a.allocate(1_500, &mut rng);
        assert!(id < high, "expected recycled low id, got {id} (high {high})");
    }

    #[test]
    fn monotone_fraction_perfect_series() {
        let series: Vec<(GabId, Timestamp)> = (1..=50).map(|i| (i, i * 10)).collect();
        assert_eq!(monotone_fraction(series), 1.0);
    }

    #[test]
    fn monotone_fraction_detects_inversions() {
        // id 5 created far later than id 6 — one inversion among 9 pairs.
        let mut series: Vec<(GabId, Timestamp)> = (1..=10).map(|i| (i, i * 10)).collect();
        series[4].1 = 10_000;
        let f = monotone_fraction(series);
        assert!((f - 8.0 / 9.0).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn monotone_fraction_trivial_inputs() {
        assert_eq!(monotone_fraction(vec![]), 1.0);
        assert_eq!(monotone_fraction(vec![(1, 5)]), 1.0);
    }

    #[test]
    fn paper_anomaly_allocator_breaks_monotonicity() {
        use crate::clock::from_ymd;
        let mut a = GabIdAllocator::with_paper_anomalies(0.05);
        let mut rng = StdRng::seed_from_u64(7);
        let mut series = Vec::new();
        // Register accounts weekly from Gab launch through study end.
        let mut t = from_ymd(2016, 9, 1);
        while t < from_ymd(2020, 4, 1) {
            for _ in 0..50 {
                series.push((a.allocate(t, &mut rng), t));
            }
            t += 7 * 86_400;
        }
        let f = monotone_fraction(series);
        assert!(f > 0.9, "should be generally monotone, got {f}");
        assert!(f < 1.0, "anomaly windows should break strict monotonicity");
    }
}
