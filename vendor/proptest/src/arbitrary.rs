//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread; full bit-pattern floats (NaN,
        // infinities) are rarely what property bodies want by default.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_values() {
        let mut rng = TestRng::from_seed(41);
        let s = any::<bool>();
        let trues = (0..200).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 50 && trues < 150);
    }

    #[test]
    fn i64_spans_signs() {
        let mut rng = TestRng::from_seed(42);
        let s = any::<i64>();
        let negs = (0..200).filter(|_| s.generate(&mut rng) < 0).count();
        assert!(negs > 50 && negs < 150);
    }
}
