//! Offline stand-in for the subset of `parking_lot` 0.12 this workspace
//! uses: `Mutex` and `RwLock` with non-poisoning guards. Backed by the
//! std primitives; a panicked holder's poison flag is swallowed, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose guard never reports poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a readers-writer lock.
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
