//! Worker-sharding speedup bench: run the same fixed-seed study serially
//! (`workers = 1`) and sharded (`--workers N`), prove the deterministic
//! report renders byte-identical, and emit the timing comparison as JSON
//! (the `BENCH_PR3.json` artifact produced by `scripts/bench_pr3.sh`).
//!
//! ```text
//! speedup [--out FILE] [--scale <f64>] [--seed N] [--workers N] [--svm-corpus N]
//! ```
//!
//! The determinism check is unconditional: any byte of divergence between
//! the serial and sharded renders aborts the bench. The speedup leg is
//! gated on the host's CPU count (recorded as `"cpus"`): with fewer than
//! 4 cores a wall-clock ratio is noise, so the bench *refuses* to report
//! one — the artifact carries `"speedup": null, "speedup_refused": true`
//! instead of a number nobody should gate on.

use dissenter_core::{render, run_study, Study, StudyConfig};
use std::fmt::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: speedup [--out FILE] [--scale <f64>] [--seed N] [--workers N] [--svm-corpus N]"
    );
    std::process::exit(2);
}

/// FNV-1a over the rendered report — a compact fingerprint for the JSON.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Minimum speedup the bench enforces, given ≥ 4 CPUs: 8 sharded workers
/// must beat serial by 1.5×. Below 4 CPUs the speedup leg is refused
/// outright (`None`) — the old behavior of returning a 0.0 floor made
/// the gate silently vacuous on small runners, which reads as a pass.
fn required_speedup(cpus: usize) -> Option<f64> {
    (cpus >= 4).then_some(1.5)
}

fn timed_study(cfg: &StudyConfig) -> (Study, std::time::Duration) {
    let started = std::time::Instant::now();
    let study = run_study(cfg);
    (study, started.elapsed())
}

fn main() {
    let mut out_path = std::path::PathBuf::from("BENCH_PR3.json");
    let mut workers = 8usize;
    let mut builder = dissenter_core::Study::builder()
        .scale(synth::config::Scale::Custom(0.004))
        .svm_corpus(600);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| usage()).into(),
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder
                    .scale(synth::config::Scale::Custom(v.parse().unwrap_or_else(|_| usage())));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder.seed(v.parse().unwrap_or_else(|_| usage()));
            }
            "--workers" => {
                let v = args.next().unwrap_or_else(|| usage());
                workers = v.parse().unwrap_or_else(|_| usage());
                if workers == 0 {
                    usage();
                }
            }
            "--svm-corpus" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder.svm_corpus(v.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let mut cfg = builder.build().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    cfg.workers = 1;
    let (serial, serial_wall) = timed_study(&cfg);
    cfg.workers = workers;
    let (parallel, parallel_wall) = timed_study(&cfg);

    // The contract under test: the deterministic render (every paper
    // artifact; run statistics excluded as wall-clock) must be
    // byte-identical at any worker count.
    let serial_render = render::deterministic(&serial);
    let parallel_render = render::deterministic(&parallel);
    assert_eq!(
        serial_render, parallel_render,
        "deterministic render diverged between workers=1 and workers={workers}"
    );
    let digest = fnv1a64(serial_render.as_bytes());

    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
    let required = required_speedup(cpus);

    let mut s = String::from("{");
    let _ = write!(s, "\"bench\":\"worker-speedup\"");
    let _ = write!(s, ",\"seed\":{}", cfg.world.seed);
    let _ = write!(s, ",\"scale\":{}", serial.scale_factor);
    let _ = write!(s, ",\"cpus\":{cpus}");
    let _ = write!(s, ",\"workers\":{workers}");
    let _ = write!(s, ",\"wall_ms_serial\":{:.1}", serial_wall.as_secs_f64() * 1e3);
    let _ = write!(s, ",\"wall_ms_parallel\":{:.1}", parallel_wall.as_secs_f64() * 1e3);
    match required {
        Some(floor) => {
            let _ = write!(s, ",\"speedup\":{speedup:.3}");
            let _ = write!(s, ",\"speedup_refused\":false");
            let _ = write!(s, ",\"required_speedup\":{floor}");
        }
        None => {
            // < 4 CPUs: a wall-clock ratio here is measurement noise, so
            // refuse the leg instead of emitting a number.
            s.push_str(",\"speedup\":null,\"speedup_refused\":true,\"required_speedup\":null");
        }
    }
    let _ = write!(s, ",\"deterministic\":true");
    let _ = write!(s, ",\"report_fnv1a64\":\"{digest:016x}\"");
    let _ = write!(s, ",\"comments\":{}", serial.report.overview.comments);

    s.push_str(",\"shards\":{");
    for (i, sh) in parallel.runstats.shards.iter().enumerate() {
        let _ = write!(
            s,
            "{}\"{}\":{{\"jobs\":{},\"items\":{},\"busy_us\":{}}}",
            if i > 0 { "," } else { "" },
            sh.name,
            sh.jobs,
            sh.items,
            sh.busy_us
        );
    }
    s.push('}');

    s.push_str(",\"stages_us\":{");
    for (which, study) in [("serial", &serial), ("parallel", &parallel)] {
        let _ = write!(s, "{}\"{which}\":{{", if which == "serial" { "" } else { "," });
        for (i, st) in study.runstats.stages.iter().enumerate() {
            let _ = write!(s, "{}\"{}\":{}", if i > 0 { "," } else { "" }, st.name, st.wall_us);
        }
        s.push('}');
    }
    s.push('}');
    s.push('}');

    // Self-validate before writing: a malformed artifact should fail the
    // bench run, not a downstream consumer.
    jsonlite::parse(&s).expect("generated speedup report must be valid JSON");

    std::fs::write(&out_path, &s).expect("write speedup report");
    println!("wrote {} ({} bytes)", out_path.display(), s.len());
    match required {
        Some(floor) => {
            println!(
                "serial {:.0} ms, {workers} workers {:.0} ms → {speedup:.2}x on {cpus} cpu(s); \
                 deterministic render fnv1a64={digest:016x}",
                serial_wall.as_secs_f64() * 1e3,
                parallel_wall.as_secs_f64() * 1e3,
            );
            assert!(
                speedup >= floor,
                "speedup {speedup:.2}x below the {floor:.1}x floor for {cpus} cpus"
            );
        }
        None => println!(
            "speedup leg refused on {cpus} cpu(s) (< 4); determinism held, \
             render fnv1a64={digest:016x}"
        ),
    }
}
