//! Paper-scale bench: run the out-of-core study at scale 1.0 under a
//! hard peak-RSS ceiling and emit the result as `BENCH_SCALE.json`
//! (produced in CI by `scripts/bench_scale.sh`).
//!
//! ```text
//! scalebench [--out FILE] [--scale <f64>] [--seed N] [--workers N]
//!            [--budget-gib <f64>] [--svm-corpus N] [--skip-svm]
//! ```
//!
//! Self-validating gates (exit nonzero on any failure):
//! * **memory** — the study runs with `out_of_core: true` and a
//!   `MemoryBudget` at the configured ceiling (default 4 GiB). The
//!   budget is checked inside `run_study` at every stage boundary and
//!   every 100k streamed world items, so *completing at all* proves the
//!   ceiling held; the artifact additionally records `peak_rss_bytes`
//!   and re-asserts it against the ceiling.
//! * **speedup** — on ≥ 4 CPUs the study is re-run at `workers = 1`,
//!   the deterministic render is proven byte-identical, and the
//!   wall-clock ratio must clear an Amdahl-adjusted floor: ≥ 0.6×
//!   efficiency per added effective core on the *parallelizable*
//!   portion, where the serial residue is measured from the serial
//!   run's crawl-stage share of wall time (the crawl is a single
//!   epoll loop and currently dominates at ~70%; the residue is
//!   reported as `crawl_serial_residue` rather than wished away).
//!   Below 4 CPUs a wall-clock ratio is noise, so the leg is refused:
//!   `"speedup": null, "speedup_refused": true`.

use dissenter_core::{run_study, MemoryBudget, Study, StudyConfig};
use std::fmt::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: scalebench [--out FILE] [--scale <f64>] [--seed N] [--workers N] \
         [--budget-gib <f64>] [--svm-corpus N] [--skip-svm]"
    );
    std::process::exit(2);
}

/// FNV-1a over the rendered report — a compact fingerprint for the JSON.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Amdahl-adjusted speedup floor, given ≥ 4 CPUs: the parallelizable
/// `1 - residue` fraction of the serial wall must scale at ≥ 0.6×
/// efficiency per added effective core, while the `residue` fraction
/// (the single-threaded crawl loop) is carried at 1×. Below 4 CPUs the
/// leg is refused outright (`None`) — a ratio measured on 1–3 cores is
/// noise nobody should gate on.
fn required_speedup(cpus: usize, workers: usize, residue: f64) -> Option<f64> {
    if cpus < 4 {
        return None;
    }
    let effective = workers.min(cpus) as f64;
    let parallel_speedup = 1.0 + 0.6 * (effective - 1.0);
    Some(1.0 / (residue + (1.0 - residue) / parallel_speedup))
}

fn timed_study(cfg: &StudyConfig) -> (Study, std::time::Duration) {
    let started = std::time::Instant::now();
    let study = run_study(cfg);
    (study, started.elapsed())
}

/// The crawl stage's share of total stage wall time — the serial
/// residue the speedup gate must carry.
fn crawl_residue(study: &Study) -> f64 {
    let total: u64 = study.runstats.stages.iter().map(|s| s.wall_us).sum();
    let crawl: u64 = study
        .runstats
        .stages
        .iter()
        .filter(|s| s.name == "crawl" || s.name == "serve")
        .map(|s| s.wall_us)
        .sum();
    if total == 0 { 0.0 } else { crawl as f64 / total as f64 }
}

fn main() {
    let mut out_path = std::path::PathBuf::from("BENCH_SCALE.json");
    let mut workers = 8usize;
    let mut budget_gib = 4.0f64;
    let mut builder = dissenter_core::Study::builder()
        .scale(synth::config::Scale::Custom(1.0))
        .out_of_core(true);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| usage()).into(),
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder
                    .scale(synth::config::Scale::Custom(v.parse().unwrap_or_else(|_| usage())));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder.seed(v.parse().unwrap_or_else(|_| usage()));
            }
            "--workers" => {
                let v = args.next().unwrap_or_else(|| usage());
                workers = v.parse().unwrap_or_else(|_| usage());
                if workers == 0 {
                    usage();
                }
            }
            "--budget-gib" => {
                let v = args.next().unwrap_or_else(|| usage());
                budget_gib = v.parse().unwrap_or_else(|_| usage());
            }
            "--svm-corpus" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder.svm_corpus(v.parse().unwrap_or_else(|_| usage()));
            }
            "--skip-svm" => builder = builder.svm(false),
            _ => usage(),
        }
    }
    let budget = MemoryBudget::gib(budget_gib);
    let mut cfg = builder.workers(workers).memory_budget(budget).build().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let ceiling = budget.ceiling_bytes().expect("a finite budget was requested");

    eprintln!(
        "scalebench: out-of-core study at scale factor {:.4}, {workers} workers, \
         {budget_gib} GiB budget ...",
        cfg.world.scale.factor()
    );
    let (study, wall) = timed_study(&cfg);
    let peak = study.runstats.peak_rss_bytes;
    assert!(peak > 0, "peak RSS was not measurable on this platform");
    assert!(
        peak <= ceiling,
        "peak RSS {peak} bytes over the {ceiling}-byte budget (run_study should have caught this)"
    );
    let residue = crawl_residue(&study);

    // Speedup leg: a second, serial run — refused below 4 CPUs.
    let required = required_speedup(cpus, workers, residue);
    let speedup_leg = required.map(|floor| {
        eprintln!("scalebench: serial control run (workers = 1) ...");
        cfg.workers = 1;
        let (serial, serial_wall) = timed_study(&cfg);
        let serial_render = dissenter_core::render::deterministic(&serial);
        let parallel_render = dissenter_core::render::deterministic(&study);
        assert_eq!(
            serial_render, parallel_render,
            "deterministic render diverged between workers=1 and workers={workers}"
        );
        let speedup = serial_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9);
        (floor, speedup, serial_wall, fnv1a64(serial_render.as_bytes()))
    });

    let mut s = String::from("{");
    let _ = write!(s, "\"bench\":\"paper-scale\"");
    let _ = write!(s, ",\"seed\":{}", cfg.world.seed);
    let _ = write!(s, ",\"scale\":{}", study.scale_factor);
    let _ = write!(s, ",\"cpus\":{cpus}");
    let _ = write!(s, ",\"workers\":{workers}");
    let _ = write!(s, ",\"out_of_core\":true");
    let _ = write!(s, ",\"comments\":{}", study.report.overview.comments);
    let _ = write!(s, ",\"active_users\":{}", study.report.overview.active_users);
    let _ = write!(s, ",\"urls\":{}", study.report.overview.urls);
    let _ = write!(s, ",\"wall_ms\":{:.1}", wall.as_secs_f64() * 1e3);
    let _ = write!(s, ",\"budget_bytes\":{ceiling}");
    let _ = write!(s, ",\"peak_rss_bytes\":{peak}");
    let _ = write!(s, ",\"rss_within_budget\":true");
    let _ = write!(s, ",\"crawl_serial_residue\":{residue:.4}");
    match &speedup_leg {
        Some((floor, speedup, serial_wall, digest)) => {
            let _ = write!(s, ",\"speedup\":{speedup:.3}");
            let _ = write!(s, ",\"speedup_refused\":false");
            let _ = write!(s, ",\"required_speedup\":{floor:.3}");
            let _ = write!(s, ",\"wall_ms_serial\":{:.1}", serial_wall.as_secs_f64() * 1e3);
            let _ = write!(s, ",\"deterministic\":true");
            let _ = write!(s, ",\"report_fnv1a64\":\"{digest:016x}\"");
        }
        None => {
            // < 4 CPUs: a wall-clock ratio here is measurement noise, so
            // refuse the leg instead of emitting a number.
            s.push_str(",\"speedup\":null,\"speedup_refused\":true,\"required_speedup\":null");
        }
    }

    s.push_str(",\"stages_us\":{");
    for (i, st) in study.runstats.stages.iter().enumerate() {
        let _ = write!(s, "{}\"{}\":{}", if i > 0 { "," } else { "" }, st.name, st.wall_us);
    }
    s.push('}');
    s.push('}');

    // Self-validate before writing: a malformed artifact should fail the
    // bench run, not a downstream consumer.
    jsonlite::parse(&s).expect("generated scale report must be valid JSON");

    std::fs::write(&out_path, &s).expect("write scale report");
    println!("wrote {} ({} bytes)", out_path.display(), s.len());
    println!(
        "scale {:.4}: {} comments in {:.1} s, peak RSS {:.1} MiB of {:.1} MiB budget, \
         crawl serial residue {:.0}%",
        study.scale_factor,
        study.report.overview.comments,
        wall.as_secs_f64(),
        peak as f64 / (1u64 << 20) as f64,
        ceiling as f64 / (1u64 << 20) as f64,
        residue * 100.0
    );
    match speedup_leg {
        Some((floor, speedup, _, digest)) => {
            println!(
                "speedup {speedup:.2}x on {cpus} cpu(s) against an Amdahl floor of {floor:.2}x; \
                 deterministic render fnv1a64={digest:016x}"
            );
            assert!(
                speedup >= floor,
                "speedup {speedup:.2}x below the {floor:.2}x Amdahl floor \
                 ({workers} workers, {cpus} cpus, residue {residue:.2})"
            );
        }
        None => println!("speedup leg refused on {cpus} cpu(s) (< 4)"),
    }
}
