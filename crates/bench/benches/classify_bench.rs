//! Benchmarks for the §3.5 classification stack: dictionary scoring,
//! Perspective-style scoring (the Figure 4/7/8 hot path), featurization,
//! ADASYN, and SVM training (the §3.5.3 experiment, E14).

use classify::adasyn::{adasyn, AdasynConfig};
use classify::svm::{Featurizer, LinearSvm, SparseVec, SvmConfig};
use classify::{HateDictionary, PerspectiveModel};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synth::{labeled_corpus, CommentSpec, TextGen};
use textkit::langid::Lang;

fn sample_comments(n: usize) -> Vec<String> {
    let gen = TextGen::standard();
    let mut rng = StdRng::seed_from_u64(99);
    (0..n)
        .map(|i| {
            let spec = CommentSpec {
                lang: Lang::En,
                severe: (i % 10) as f64 / 10.0,
                obscene: 0.1,
                attack: 0.1,
                reject: (i % 7) as f64 / 7.0,
                tokens: 10 + i % 30,
            };
            gen.generate(&mut rng, &spec)
        })
        .collect()
}

fn bench_scoring(c: &mut Criterion) {
    let comments = sample_comments(1_000);
    let mut g = c.benchmark_group("scoring");
    g.throughput(Throughput::Elements(comments.len() as u64));
    let dict = HateDictionary::standard();
    g.bench_function("dictionary_1k_comments", |b| {
        b.iter(|| {
            for t in &comments {
                black_box(dict.score(t));
            }
        });
    });
    let model = PerspectiveModel::standard();
    g.bench_function("perspective_1k_comments", |b| {
        b.iter(|| {
            for t in &comments {
                black_box(model.score(t));
            }
        });
    });
    g.finish();
}

fn bench_featurize(c: &mut Criterion) {
    let comments = sample_comments(1_000);
    let f = Featurizer::standard();
    let mut g = c.benchmark_group("svm");
    g.throughput(Throughput::Elements(comments.len() as u64));
    g.bench_function("featurize_1k_comments", |b| {
        b.iter(|| {
            for t in &comments {
                black_box(f.featurize(t));
            }
        });
    });
    g.finish();
}

fn svm_samples(n: usize) -> Vec<(SparseVec, usize)> {
    let corpus = labeled_corpus(n, 5);
    let f = Featurizer::standard();
    corpus.iter().map(|s| (f.featurize(&s.text), s.class.index())).collect()
}

fn bench_training(c: &mut Criterion) {
    let samples = svm_samples(1_000);
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    g.bench_function("adasyn_1k", |b| {
        b.iter_batched(
            || samples.clone(),
            |s| black_box(adasyn(&s, 3, AdasynConfig::default())),
            BatchSize::LargeInput,
        );
    });
    g.bench_function("svm_train_1k_x3class", |b| {
        let cfg = SvmConfig { epochs: 5, ..SvmConfig::default() };
        b.iter(|| black_box(LinearSvm::train(&samples, 3, cfg)));
    });
    let model = LinearSvm::train(&samples, 3, SvmConfig::default());
    g.bench_function("svm_predict_1k", |b| {
        b.iter(|| {
            for (x, _) in &samples {
                black_box(model.probabilities(x));
            }
        });
    });
    g.finish();
}

fn bench_textgen(c: &mut Criterion) {
    let gen = TextGen::standard();
    let mut rng = StdRng::seed_from_u64(1);
    let spec = CommentSpec { lang: Lang::En, severe: 0.4, obscene: 0.2, attack: 0.3, reject: 0.7, tokens: 20 };
    c.bench_function("textgen_comment", |b| {
        b.iter(|| black_box(gen.generate(&mut rng, &spec)));
    });
}

criterion_group!(benches, bench_scoring, bench_featurize, bench_training, bench_textgen);
criterion_main!(benches);
