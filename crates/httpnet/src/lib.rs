#![warn(missing_docs)]
//! A small, robust HTTP/1.1 server and client over `std::net` TCP.
//!
//! The paper's methodology is protocol work: probing response *sizes* to
//! detect account existence (§3.1), reading rate-limit headers and backing
//! off (§3.4), re-requesting timed-out pages (§4.3.1), and walking
//! paginated APIs. To exercise those code paths for real, the simulated
//! services are served over actual loopback TCP sockets and crawled with a
//! real client.
//!
//! Design follows the networking guides' priorities — simplicity and
//! robustness over framework magic:
//!
//! * an explicit event-driven server — an accept loop feeding per-core
//!   epoll reactors ([`sys`] raw syscall wrappers, no `libc`), with
//!   per-connection state machines, reusable buffers, and vectored
//!   writes; no async runtime (the bounded worker [`pool`] remains for
//!   compute scatter/gather);
//! * strict, bounded request parsing ([`http`]) — header and body caps so
//!   no peer can exhaust memory;
//! * keep-alive with per-connection request caps;
//! * deterministic, seedable **fault injection** ([`fault`]): added
//!   latency, dropped connections, injected 5xx responses, truncated
//!   bodies, mid-line resets, slow-loris stalls, malformed status lines,
//!   and 429/503 throttling with `Retry-After` — in the spirit of
//!   smoltcp's `--drop-chance` example knobs — used by tests to prove the
//!   crawler's retry logic works;
//! * a seeded exponential-backoff [`retry`] policy with status-aware
//!   classification, `Retry-After` honoring, and a total-elapsed cap;
//! * a blocking [`client`] with timeouts, redirects disabled (the crawler
//!   wants raw behavior), and response-size accounting — constructed via
//!   [`Client::builder`];
//! * conditional requests ([`http::format_etag`], [`http::if_none_match`],
//!   `304 Not Modified`) backed by a server-side [`cache::ResponseCache`]
//!   and a client-side [`cache::RevalidationCache`] so longitudinal
//!   re-crawls revalidate instead of re-downloading.

pub mod cache;
pub mod client;
pub mod cpool;
pub mod fault;
pub mod http;
pub mod log;
pub mod pool;
mod reactor;
pub mod retry;
pub mod router;
pub mod server;
pub mod sys;

pub use cache::{CacheConfig, ResponseCache, RevalidationCache};
pub use client::{Client, ClientBuilder, ClientError};
pub use cpool::{ConnPool, PoolConfig, PoolStats};
pub use fault::{FaultAction, FaultConfig, FaultInjector};
pub use http::{format_etag, if_none_match, Headers, Request, Response, Status};
pub use log::{AccessEntry, AccessLog};
pub use pool::ThreadPool;
pub use retry::{
    classify_status, parse_retry_after, parse_retry_after_detailed, RetryAfter, RetryPolicy,
    StatusClass, MAX_RETRY_AFTER,
};
pub use router::{Params, Router};
pub use server::{Handler, Server, ServerConfig};
