//! The CSV exporter writes a complete, well-formed series set for every
//! figure of a real study — and does so byte-identically no matter how
//! many times the report is rebuilt from the same crawl mirror.

use dissenter_repro::analysis::export::export_csv;
use dissenter_repro::analysis::report::build_report;
use dissenter_repro::dissenter_core::{run_study, Study as DissenterStudy};
use dissenter_repro::synth;
use dissenter_repro::synth::config::Scale;
use std::collections::BTreeMap;
use std::path::Path;

/// Expected column count per exported file.
const SCHEMAS: [(&str, usize); 12] = [
    ("fig2_gab_growth.csv", 2),
    ("fig3_concentration.csv", 2),
    ("table1_flags.csv", 3),
    ("table2_domains.csv", 4),
    ("fig4_shadow_cdfs.csv", 4),
    ("fig5_votes.csv", 4),
    ("fig6_comment_ratios.csv", 2),
    ("fig7_communities.csv", 4),
    ("fig8a_severe_by_bias.csv", 4),
    ("fig8b_attack_by_bias.csv", 3),
    ("fig9a_degrees.csv", 2),
    ("fig9bc_toxicity_by_degree.csv", 4),
];

/// A minimal CSV: the header's column names and every row's cells.
/// Sufficient for these exports — no writer emits quoting or embedded
/// separators, which `parse` verifies by re-serializing exactly.
struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Parse `text`, enforcing rectangularity against the header.
fn parse(name: &str, text: &str) -> Csv {
    let mut lines = text.lines();
    let header: Vec<String> =
        lines.next().unwrap_or_else(|| panic!("{name}: empty file")).split(',').map(String::from).collect();
    let rows: Vec<Vec<String>> = lines
        .map(|line| {
            let cells: Vec<String> = line.split(',').map(String::from).collect();
            assert_eq!(cells.len(), header.len(), "{name}: ragged row {line:?}");
            cells
        })
        .collect();
    Csv { header, rows }
}

/// Re-serialize a parsed CSV into the writers' exact format.
fn unparse(csv: &Csv) -> String {
    let mut out = csv.header.join(",");
    out.push('\n');
    for row in &csv.rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn read_all(dir: &Path, files: &[String]) -> BTreeMap<String, String> {
    files
        .iter()
        .map(|name| {
            let text = std::fs::read_to_string(dir.join(name))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            (name.clone(), text)
        })
        .collect()
}

#[test]
fn export_writes_every_figure_series() {
    let cfg = DissenterStudy::builder()
        .scale(Scale::Custom(0.0015))
        .svm(false)
        .build()
        .expect("export config is valid");
    let study = run_study(&cfg);

    let base = std::env::temp_dir().join(format!("dissenter-export-{}", std::process::id()));
    let dir = base.join("first");
    let files = export_csv(&study.report, &dir).expect("export succeeds");
    let contents = read_all(&dir, &files);

    // Every expected file exported, parseable, rectangular, non-empty —
    // and the minimal parser round-trips it byte-for-byte.
    assert_eq!(files.len(), SCHEMAS.len(), "exported set: {files:?}");
    for (name, cols) in SCHEMAS {
        let text = contents
            .get(name)
            .unwrap_or_else(|| panic!("{name} not exported (got {files:?})"));
        let csv = parse(name, text);
        assert_eq!(csv.header.len(), cols, "{name}: header {:?}", csv.header);
        assert!(!csv.rows.is_empty(), "{name}: no data rows");
        assert_eq!(unparse(&csv), *text, "{name}: parse/serialize round trip");
    }

    // Spot-check numeric columns parse and end where the math says.
    let fig3 = parse("fig3", &contents["fig3_concentration.csv"]);
    let cf: f64 = fig3.rows.last().unwrap()[1].parse().expect("numeric comment_fraction");
    assert!((0.9..=1.0).contains(&cf), "curve ends near 1.0: {cf}");
    let fig4 = parse("fig4", &contents["fig4_shadow_cdfs.csv"]);
    for row in &fig4.rows {
        let y: f64 = row[3].parse().expect("numeric cdf");
        assert!((0.0..=1.0).contains(&y), "cdf in range: {row:?}");
    }

    // Byte-identity: rebuild the report from the same crawl mirror (with
    // a different worker count, twice) and re-export — every file must
    // come back byte-identical. This is the regression net over the
    // hash-map-iteration-order fixes in `analysis`.
    let (world, _truth) = synth::generate(&cfg.world);
    for (tag, workers) in [("rebuild-serial", 1usize), ("rebuild-sharded", 8)] {
        let rebuilt = build_report(&study.store, &world.baselines, workers);
        let redir = base.join(tag);
        let refiles = export_csv(&rebuilt, &redir).expect("re-export succeeds");
        assert_eq!(refiles, files, "{tag}: file sets match");
        let recontents = read_all(&redir, &refiles);
        for name in &files {
            assert_eq!(
                recontents[name], contents[name],
                "{name}: bytes differ after report rebuild ({tag})"
            );
        }
    }

    std::fs::remove_dir_all(&base).ok();
}
