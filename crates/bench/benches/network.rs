//! Benchmarks for the networking substrate and crawl phases over real
//! loopback TCP: request/response round-trips, the §3.1 size probe, Gab
//! API fetches (E1), comment-page spidering, and the resilience layer
//! (fault decisions, circuit-breaker bookkeeping, retrying fetches
//! through a faulty server).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use httpnet::{Client, FaultConfig, FaultInjector, RetryPolicy, ServerConfig};
use std::sync::{Arc, OnceLock};
use synth::config::Scale;
use synth::WorldConfig;
use webfront::SimServices;

struct Fx {
    services: SimServices,
    world: Arc<platform::World>,
    dissenter_user: String,
    url_id: String,
    gab_id: u64,
}

fn fx() -> &'static Fx {
    static FX: OnceLock<Fx> = OnceLock::new();
    FX.get_or_init(|| {
        let cfg = WorldConfig { scale: Scale::Custom(0.002), ..WorldConfig::small() };
        let (world, _) = synth::generate(&cfg);
        let world = Arc::new(world);
        let dissenter_user = world
            .users
            .iter()
            .find(|u| u.author_id.is_some() && !u.gab_deleted)
            .expect("dissenter user")
            .username
            .clone();
        let url_id = world.dissenter.urls()[0].id.to_hex();
        let gab_id = 1;
        let services =
            SimServices::start(world.clone(), crawler::default_server_config()).expect("services");
        Fx { services, world, dissenter_user, url_id, gab_id }
    })
}

fn bench_http(c: &mut Criterion) {
    let fx = fx();
    let mut g = c.benchmark_group("http");
    g.throughput(Throughput::Elements(1));

    g.bench_function("roundtrip_fresh_connection", |b| {
        let client = Client::builder(fx.services.gab.addr()).build();
        b.iter(|| black_box(client.get("/api/v1/accounts/1").unwrap()));
    });
    g.bench_function("roundtrip_keep_alive", |b| {
        let mut client = Client::builder(fx.services.gab.addr()).build();
        client.keep_alive(true);
        b.iter(|| black_box(client.get_keep_alive("/api/v1/accounts/1").unwrap()));
    });
    g.finish();
}

fn bench_crawl_ops(c: &mut Criterion) {
    let fx = fx();
    let mut g = c.benchmark_group("crawl_ops");

    // E1: one Gab enumeration probe (hit + parse).
    g.bench_function("gab_account_fetch_parse", |b| {
        let mut client = Client::builder(fx.services.gab.addr()).build();
        client.keep_alive(true);
        let target = format!("/api/v1/accounts/{}", fx.gab_id);
        b.iter(|| {
            let resp = client.get_keep_alive(&target).unwrap();
            black_box(jsonlite::parse(&resp.text()).unwrap())
        });
    });

    // §3.1: the size probe (body length inspection, hit + miss).
    g.bench_function("dissenter_size_probe_hit", |b| {
        let mut client = Client::builder(fx.services.dissenter.addr()).build();
        client.keep_alive(true);
        let target = format!("/user/{}", fx.dissenter_user);
        b.iter(|| {
            let resp = client.get_keep_alive(&target).unwrap();
            black_box(resp.body.len() >= 10 * 1024)
        });
    });
    g.bench_function("dissenter_size_probe_miss", |b| {
        let mut client = Client::builder(fx.services.dissenter.addr()).build();
        client.keep_alive(true);
        b.iter(|| {
            let resp = client.get_keep_alive("/user/nosuchuserzz").unwrap();
            black_box(resp.body.len() >= 10 * 1024)
        });
    });

    // §3.2: comment-page scraping. Fetch once (the endpoint carries the
    // per-URL 10-req/min limit the real site advertises — hammering it in
    // a bench loop would measure the 429 path), then benchmark the parse.
    g.bench_function("comment_page_scrape", |b| {
        let client = Client::builder(fx.services.dissenter.addr()).build();
        let html = client.get(&format!("/url/{}", fx.url_id)).unwrap().text();
        b.iter(|| black_box(crawler::spider::parse_comment_page(&html)));
    });
    g.finish();
}

fn bench_resilience(c: &mut Criterion) {
    let fx = fx();
    let mut g = c.benchmark_group("resilience");
    g.throughput(Throughput::Elements(1));

    // The per-request cost of rolling a fault decision.
    g.bench_function("fault_decide", |b| {
        let injector = FaultInjector::new(FaultConfig::storm(7));
        b.iter(|| black_box(injector.decide()));
    });

    // Closed-breaker bookkeeping on the crawl's hot path.
    g.bench_function("breaker_allow_and_record", |b| {
        let breaker = crawler::CircuitBreaker::new();
        b.iter(|| {
            black_box(breaker.allow());
            breaker.record_success();
        });
    });

    // A policy-driven fetch against a healthy endpoint: the overhead the
    // retry machinery adds to the common (no-fault) case.
    g.bench_function("get_with_policy_clean", |b| {
        let mut client = Client::builder(fx.services.gab.addr()).build();
        client.keep_alive(true);
        let policy = RetryPolicy::immediate(3);
        b.iter(|| black_box(client.get_with_policy("/api/v1/accounts/1", &policy).unwrap()));
    });

    // The same fetch through a 20%-faulty server (drops + 500s), retries
    // included — the storm-weathering cost per delivered response.
    g.bench_function("get_with_policy_faulty", |b| {
        let world = fx.world.clone();
        let cfg = ServerConfig {
            faults: FaultConfig {
                drop_prob: 0.1,
                error_prob: 0.1,
                seed: 21,
                ..FaultConfig::none()
            },
            ..crawler::default_server_config()
        };
        let services = SimServices::start(world, cfg).expect("services");
        let mut client = Client::builder(services.gab.addr()).build();
        client.keep_alive(true);
        let policy = RetryPolicy::immediate(8);
        b.iter(|| black_box(client.get_with_policy("/api/v1/accounts/1", &policy).unwrap()));
        std::mem::forget(services);
    });
    g.finish();
}

criterion_group!(benches, bench_http, bench_crawl_ops, bench_resilience);
criterion_main!(benches);
