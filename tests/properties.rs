//! Property-based tests (proptest) over the core data structures and
//! invariants: JSON round-trips, identifier codecs, tokenizer guarantees,
//! ECDF/KS laws, rate-limiter bounds, and graph symmetries.

use dissenter_repro::httpnet::http::{percent_decode, percent_encode};
use dissenter_repro::ids::{EntityKind, ObjectId, ObjectIdGen};
use dissenter_repro::jsonlite::{parse, to_string, Value};
use proptest::prelude::*;

fn arb_json(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12f64).prop_map(|x| Value::Float((x * 1e3).round() / 1e3)),
        "[a-zA-Z0-9 _\\-\\.\u{e9}\u{fc}]{0,24}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(depth, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..5).prop_map(|pairs| {
                // Deduplicate keys: objects built via the API have unique keys.
                let mut seen = std::collections::HashSet::new();
                Value::Object(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
    .boxed()
}

proptest! {
    #[test]
    fn json_round_trips(v in arb_json(3)) {
        let s = to_string(&v);
        let back = parse(&s).expect("serializer output must parse");
        prop_assert_eq!(&back, &v);
        // Serialization is a fixpoint after one round.
        prop_assert_eq!(to_string(&back), s);
    }

    #[test]
    fn json_parser_never_panics(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn object_id_hex_round_trips(bytes in prop::array::uniform12(any::<u8>())) {
        let id = ObjectId::from_bytes(bytes);
        let parsed: ObjectId = id.to_hex().parse().expect("hex parses");
        prop_assert_eq!(parsed, id);
    }

    #[test]
    fn object_id_timestamp_embeds(ts in 0u64..=u32::MAX as u64) {
        let mut gen = ObjectIdGen::new(EntityKind::Comment, 1);
        prop_assert_eq!(gen.next(ts).timestamp(), ts);
    }

    #[test]
    fn percent_codec_round_trips(s in "\\PC{0,64}") {
        prop_assert_eq!(percent_decode(&percent_encode(&s)), s);
    }

    #[test]
    fn tokenizer_emits_clean_tokens(s in "\\PC{0,200}") {
        for t in textkit::tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.to_lowercase(), t.clone(), "tokens are lowercased");
            prop_assert!(!t.starts_with('\'') && !t.ends_with('\''));
        }
    }

    #[test]
    fn stemmer_never_grows_words(s in "[a-z]{1,20}") {
        let stem = textkit::porter_stem(&s);
        prop_assert!(stem.len() <= s.len() + 1, "{} -> {}", s, stem);
        prop_assert!(!stem.is_empty());
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(mut xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        xs.iter_mut().for_each(|x| *x = (*x * 100.0).round() / 100.0);
        let e = stats::Ecdf::new(&xs);
        let mut last = 0.0;
        for i in -10..=10 {
            let v = e.eval(i as f64 * 1e5);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert_eq!(e.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn ks_statistic_in_unit_interval(
        a in prop::collection::vec(0f64..1.0, 1..100),
        b in prop::collection::vec(0f64..1.0, 1..100),
    ) {
        let r = stats::ks_two_sample(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.statistic));
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        // KS is symmetric.
        let r2 = stats::ks_two_sample(&b, &a);
        prop_assert!((r.statistic - r2.statistic).abs() < 1e-12);
    }

    #[test]
    fn rate_limiter_never_exceeds_limit(
        limit in 1u32..20,
        window in 1u64..100,
        times in prop::collection::vec(0u64..500, 1..200),
    ) {
        let mut rl = platform::RateLimiter::new(limit, window);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        // Count allowed requests per window start; never above limit.
        let mut allowed_at: Vec<u64> = Vec::new();
        for t in sorted {
            if rl.check("k", t).allowed() {
                allowed_at.push(t);
            }
        }
        // A fixed-window limiter admits at most `limit` per window, so any
        // sliding interval of the same length (straddling two fixed
        // windows) holds at most 2×limit.
        for (i, &t) in allowed_at.iter().enumerate() {
            let in_window = allowed_at[i..].iter().take_while(|&&u| u < t + window).count();
            prop_assert!(in_window <= 2 * limit as usize);
        }
        prop_assert!(allowed_at.len() <= times.len());
    }

    #[test]
    fn digraph_edges_are_symmetric_in_indexes(
        edges in prop::collection::vec((0u32..50, 0u32..50), 0..200)
    ) {
        let mut g = graph::DiGraph::with_nodes(50);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        for v in 0..50u32 {
            for &w in g.following(v) {
                prop_assert!(g.followers(w).contains(&v));
            }
            for &w in g.followers(v) {
                prop_assert!(g.following(w).contains(&v));
            }
        }
        let total: usize = (0..50u32).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(total, g.edge_count());
    }

    #[test]
    fn dictionary_score_bounded(s in "\\PC{0,300}") {
        let d = classify::HateDictionary::standard();
        let score = d.score(&s);
        prop_assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn perspective_scores_bounded(s in "\\PC{0,300}") {
        let m = classify::PerspectiveModel::standard();
        let p = m.score(&s);
        for v in [p.severe_toxicity, p.likely_to_reject, p.obscene, p.attack_on_author] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}

/// Promoted from `tests/properties.proptest-regressions` (`cc 3c21da6a…`,
/// shrunk to `limit = 2, window = 12, times = [0, 0, 142, 153, 154, 154]`):
/// a burst straddling the 144-boundary of two fixed windows once admitted
/// 5 requests inside one sliding window of length 12, exceeding the
/// 2×limit bound the `rate_limiter_never_exceeds_limit` property allows a
/// fixed-window limiter. Kept as a named deterministic test so the case
/// runs everywhere, not just where the regression file is honored.
#[test]
fn rate_limiter_regression_burst_straddling_window_boundary() {
    let (limit, window) = (2u32, 12u64);
    let times = [0u64, 0, 142, 153, 154, 154];
    let mut rl = platform::RateLimiter::new(limit, window);
    let mut allowed_at: Vec<u64> = Vec::new();
    for t in times {
        if rl.check("k", t).allowed() {
            allowed_at.push(t);
        }
    }
    for (i, &t) in allowed_at.iter().enumerate() {
        let in_window = allowed_at[i..].iter().take_while(|&&u| u < t + window).count();
        assert!(
            in_window <= 2 * limit as usize,
            "sliding window starting at t={t} admitted {in_window} > 2*limit; allowed: {allowed_at:?}"
        );
    }
}

proptest! {
    #[test]
    fn langid_never_panics_and_returns_valid_variant(s in "\\PC{0,300}") {
        let l = textkit::detect(&s);
        let _ = l.code();
    }

    #[test]
    fn porter_stem_handles_arbitrary_unicode(s in "\\PC{0,40}") {
        // Non-ASCII input must be returned unchanged, never panic.
        let out = textkit::porter_stem(&s);
        if !s.bytes().all(|b| b.is_ascii_lowercase() || b == b'\'') {
            prop_assert_eq!(out, s);
        }
    }

    #[test]
    fn component_sizes_partition_the_node_set(
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..120)
    ) {
        let mut adj = vec![Vec::new(); 40];
        for &(a, b) in &edges {
            if a != b {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        let nodes: Vec<u32> = (0..40).collect();
        let c = graph::connected_components(&adj, &nodes);
        let total: usize = c.sizes.iter().sum();
        prop_assert_eq!(total, 40, "components partition the node set");
        // Sizes sorted descending.
        for w in c.sizes.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn concentration_curve_is_monotone(counts in prop::collection::vec(0u64..1000, 1..100)) {
        let curve = stats::ecdf::concentration_curve(&counts, 20);
        for w in curve.windows(2) {
            prop_assert!(w[1].0 >= w[0].0, "user fraction non-decreasing");
            prop_assert!(w[1].1 >= w[0].1 - 1e-12, "share non-decreasing");
        }
        for &(uf, af) in &curve {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&uf));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&af));
        }
    }

    #[test]
    fn featurizer_output_sorted_and_normalized(s in "[a-z ]{0,120}") {
        let f = classify::svm::Featurizer::standard();
        let v = f.featurize(&s);
        for w in v.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "indices strictly ascending");
        }
        if !v.is_empty() {
            let norm = classify::svm::norm(&v);
            prop_assert!((norm - 1.0).abs() < 1e-4, "L2-normalized, got {norm}");
        }
    }
}
