//! The §6 covert-channel scenario: "any URL is a potential anchor for a
//! Dissenter comment thread … The URL need not exist, can use any
//! arbitrary scheme, and could be shared among users wishing to engage in
//! a hidden conversation."
//!
//! ```sh
//! cargo run --release --example covert_channel
//! ```
//!
//! Two parties agree on a fictitious URL out-of-band, hold a conversation
//! in its comment thread (labeled NSFW so default viewers see nothing —
//! the shadow overlay inside the overlay), and we then show what each
//! class of observer can see over real HTTP, plus how the §4.2.1 URL
//! census would flag the anchor as anomalous.

use httpnet::Client;
use ids::{EntityKind, ObjectIdGen, DISSENTER_LAUNCH};
use platform::{Comment, CommentUrl, Viewer};
use std::sync::Arc;
use synth::config::Scale;
use synth::WorldConfig;
use webfront::SimServices;

fn main() {
    // A small cover world of normal traffic.
    let cfg = WorldConfig { scale: Scale::Custom(0.002), ..WorldConfig::small() };
    let (mut world, _) = synth::generate(&cfg);

    // The agreed-upon anchor: a browser-internal URL that no web server
    // will ever serve. Dissenter happily mints a thread for it.
    let anchor = "chrome://secret-meeting-point/";
    let mut url_gen = ObjectIdGen::new(EntityKind::CommentUrl, 0xC0FFEE);
    let mut comment_gen = ObjectIdGen::new(EntityKind::Comment, 0xC0FFEE);
    let t0 = DISSENTER_LAUNCH + 10_000_000;
    let thread = CommentUrl {
        id: url_gen.next(t0),
        url: anchor.into(),
        title: String::new(),
        description: String::new(),
        created_at: t0,
        upvotes: 0,
        downvotes: 0,
    };
    let thread_id = world.dissenter.add_url(thread).expect("fresh anchor URL");

    // Two existing Dissenter users exchange messages, labeled NSFW so that
    // even Dissenter users with default settings see nothing.
    let speakers: Vec<_> = world
        .users
        .iter()
        .filter(|u| u.author_id.is_some() && !u.gab_deleted)
        .take(2)
        .map(|u| (u.username.clone(), u.author_id.expect("dissenter")))
        .collect();
    let messages = [
        "the package arrives tuesday",
        "confirmed. same place as before",
        "bring the second set of documents",
    ];
    for (i, msg) in messages.iter().enumerate() {
        let (_, author) = &speakers[i % 2];
        world.dissenter.add_comment(Comment {
            id: comment_gen.next(t0 + i as u64 * 60),
            url_id: thread_id,
            author_id: *author,
            parent: None,
            text: (*msg).into(),
            created_at: t0 + i as u64 * 60,
            nsfw: true,
            offensive: false,
        });
    }

    // What does each observer see?
    println!("covert anchor: {anchor}");
    println!("thread id:     {thread_id}\n");
    let anon = world.dissenter.visible_comments(thread_id, Viewer::Anonymous);
    let default_user = world.dissenter.visible_comments(thread_id, Viewer::logged_in_default());
    let insider = world.dissenter.visible_comments(thread_id, Viewer::with_nsfw());
    println!("anonymous visitor sees:        {} comments", anon.len());
    println!("default Dissenter user sees:   {} comments", default_user.len());
    println!("opted-in conspirator sees:     {} comments", insider.len());
    for c in &insider {
        println!("    [{}] {}", &c.author_id.to_hex()[..8], c.text);
    }

    // Over the wire, exactly as the participants would do it.
    let services =
        SimServices::start(Arc::new(world), crawler::default_server_config()).expect("services");
    let mut client = Client::builder(services.dissenter.addr()).build();
    let page = client
        .get(&webfront::dissenter::discussion_target(anchor))
        .expect("lookup succeeds");
    println!("\nHTTP lookup of the anchor redirects to the hidden thread: {}", page.status);
    client.set_cookie("session", "crawler:nsfw");
    let hidden = client
        .get(&format!("/url/{thread_id}"))
        .expect("thread page");
    let scraped = crawler::spider::parse_comment_page(&hidden.text()).expect("parses");
    println!("authenticated fetch recovers {} hidden messages", scraped.1.len());

    // The measurement counter-move: the §4.2.1 census flags non-web
    // schemes, which is how the paper noticed this channel exists.
    let census = analysis::url::census([anchor].into_iter());
    println!(
        "\nURL census over the anchor: browser-internal URLs = {} (the paper's tell)",
        census.browser_urls
    );

    // And the full counter-measurement: crawl the platform like the paper
    // did and run the covert-channel detector (§6 extension) — the hidden
    // conversation surfaces among the candidates.
    println!("\nrunning the full crawl + covert-channel detector…");
    let mut crawler = crawler::Crawler::new(crawler::Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config.enum_gap_tolerance = 600;
    let store = crawler.full_crawl();
    let candidates = analysis::covert::detect_covert_channels(
        &store,
        analysis::covert::CovertConfig::default(),
    );
    println!("flagged {} candidate threads; top hits:", candidates.len());
    for c in candidates.iter().take(5) {
        println!(
            "  {:<45} comments={:<4} authors={:<3} signals={:?}",
            c.url, c.comments, c.authors, c.signals
        );
    }
    let ours = candidates.iter().find(|c| c.url == anchor);
    match ours {
        Some(c) => println!("\nthe planted channel WAS detected with signals {:?}", c.signals),
        None => println!("\nthe planted channel escaped detection — tune the thresholds!"),
    }
}
