//! The synthetic hate lexicon.
//!
//! The paper uses a modified Hatebase dictionary of 1,027 hate terms
//! (§3.5.1). Redistributing actual slurs would be harmful and is blocked by
//! Hatebase licensing, so we synthesize a lexicon of the same size from a
//! deterministic syllable generator. The synthetic text generator embeds
//! these same pseudo-terms in generated comments, so the dictionary scorer
//! measures a real lexical signal.
//!
//! Faithfulness details carried over from the paper's discussion:
//! * a small set of **ambiguous** everyday words is included (the paper
//!   cites "queen" and "pig"), which the benign vocabulary also uses —
//!   creating genuine false positives;
//! * tokens may appear with a trailing slang `z` in text ("…z"), which the
//!   stemmer does not strip — creating genuine false negatives;
//! * substring collisions ("paki" inside "Pakistan") are modeled by a
//!   benign word that contains one lexicon term as a prefix.

use std::collections::HashSet;
use textkit::porter_stem;

/// Number of terms in the paper's dictionary.
pub const LEXICON_SIZE: usize = 1_027;

/// Everyday words included in the lexicon despite benign meanings; these
/// also appear in the benign vocabulary (false-positive source, §3.5).
pub const AMBIGUOUS_TERMS: &[&str] = &["queen", "pig", "skank"];

/// A benign word that contains a lexicon term as a substring, modeling the
/// paper's "Pakistan contains 'paki'" example. The generator uses it in
/// benign text; substring-matching scorers would false-positive on it.
pub const SUBSTRING_TRAP: &str = "vorgastan";

/// The lexicon-term prefix of [`SUBSTRING_TRAP`].
pub const SUBSTRING_TRAP_TERM: &str = "vorga";

/// The hate lexicon: term list plus a stemmed lookup set.
#[derive(Debug, Clone)]
pub struct Lexicon {
    terms: Vec<String>,
    stemmed: HashSet<String>,
}

impl Lexicon {
    /// Build the standard 1,027-term synthetic lexicon. Deterministic:
    /// every call yields the identical list.
    pub fn standard() -> Self {
        Self::with_size(LEXICON_SIZE)
    }

    /// Build a lexicon with `size` terms (≥ the ambiguous/trap seeds).
    pub fn with_size(size: usize) -> Self {
        assert!(size > AMBIGUOUS_TERMS.len() + 1, "lexicon too small");
        let mut terms: Vec<String> = Vec::with_capacity(size);
        terms.extend(AMBIGUOUS_TERMS.iter().map(|s| s.to_string()));
        terms.push(SUBSTRING_TRAP_TERM.to_string());
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut seen: HashSet<String> = terms.iter().cloned().collect();
        while terms.len() < size {
            let w = pseudo_word(&mut state);
            // Never collide with common English (the generator's benign
            // vocabulary comes from textkit's seed words).
            if seen.contains(&w) || is_seed_word(&w) {
                continue;
            }
            seen.insert(w.clone());
            terms.push(w);
        }
        let stemmed = terms.iter().map(|t| porter_stem(t)).collect();
        Self { terms, stemmed }
    }

    /// The raw (unstemmed) term list.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the lexicon is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Does a **stemmed** token match the lexicon?
    pub fn contains_stemmed(&self, stemmed_token: &str) -> bool {
        self.stemmed.contains(stemmed_token)
    }

    /// Does a raw token match after stemming?
    pub fn matches_token(&self, token: &str) -> bool {
        self.contains_stemmed(&porter_stem(token))
    }

    /// Deterministic term by index — used by the text generator to embed
    /// hate terms in synthetic comments.
    pub fn term(&self, idx: usize) -> &str {
        &self.terms[idx % self.terms.len()]
    }
}

fn is_seed_word(w: &str) -> bool {
    use textkit::langid::{seed_words, Lang};
    Lang::ALL.iter().any(|&l| seed_words(l).contains(&w))
}

/// Public re-export of the pseudo-word generator for sibling marker lists
/// (the obscenity markers use a different stream seed).
pub fn pseudo_word_public(state: &mut u64) -> String {
    pseudo_word(state)
}

/// Generate a pronounceable pseudo-word from a SplitMix64 stream.
fn pseudo_word(state: &mut u64) -> String {
    const ONSETS: &[&str] = &[
        "b", "bl", "br", "d", "dr", "f", "fl", "g", "gl", "gr", "k", "kr", "m", "n", "p", "pl",
        "pr", "r", "s", "sk", "sl", "sn", "st", "t", "tr", "v", "z", "zr",
    ];
    // Nuclei avoid digraphs characteristic of the non-English profiles
    // ("au", "ei", "io", …) so pseudo-words stay out-of-vocabulary for the
    // language identifier rather than voting for French/Italian.
    const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "aa", "ee", "oo"];
    const CODAS: &[&str] = &["", "b", "d", "g", "k", "l", "m", "n", "p", "r", "s", "t", "x"];
    let mut next = || {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let syllables = 2 + (next() % 2) as usize; // 2-3 syllables
    let mut w = String::new();
    for _ in 0..syllables {
        let r = next();
        w.push_str(ONSETS[(r % ONSETS.len() as u64) as usize]);
        w.push_str(NUCLEI[((r >> 16) % NUCLEI.len() as u64) as usize]);
        w.push_str(CODAS[((r >> 32) % CODAS.len() as u64) as usize]);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_paper_size() {
        let lex = Lexicon::standard();
        assert_eq!(lex.len(), LEXICON_SIZE);
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(Lexicon::standard().terms(), Lexicon::standard().terms());
    }

    #[test]
    fn terms_are_unique() {
        let lex = Lexicon::standard();
        let set: HashSet<&String> = lex.terms().iter().collect();
        assert_eq!(set.len(), lex.len());
    }

    #[test]
    fn ambiguous_terms_included() {
        let lex = Lexicon::standard();
        for t in AMBIGUOUS_TERMS {
            assert!(lex.matches_token(t), "{t} missing");
        }
    }

    #[test]
    fn matching_is_stem_aware() {
        let lex = Lexicon::standard();
        // "queens" stems to "queen".
        assert!(lex.matches_token("queens"));
        // Slang 'z' suffix defeats the stemmer — a designed false negative.
        assert!(!lex.matches_token("queenz"));
    }

    #[test]
    fn substring_trap_is_not_a_token_match() {
        let lex = Lexicon::standard();
        assert!(lex.matches_token(SUBSTRING_TRAP_TERM));
        assert!(
            !lex.matches_token(SUBSTRING_TRAP),
            "token-level matching must not fire on the containing word"
        );
    }

    #[test]
    fn no_overlap_with_language_seed_vocab() {
        use textkit::langid::{seed_words, Lang};
        let lex = Lexicon::standard();
        for &l in &Lang::ALL {
            for w in seed_words(l) {
                let generated = !AMBIGUOUS_TERMS.contains(w);
                if generated {
                    assert!(
                        !lex.terms().iter().any(|t| t == w),
                        "seed word {w} leaked into lexicon"
                    );
                }
            }
        }
    }

    #[test]
    fn custom_size() {
        let lex = Lexicon::with_size(50);
        assert_eq!(lex.len(), 50);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_size_panics() {
        Lexicon::with_size(2);
    }
}
