//! Seeded hostile-load generator: composable abuse profiles driven
//! concurrently with a well-behaved loadgen baseline (the `abusegen`
//! binary's `BENCH_PR8.json`, and the simcheck `abuse.*` oracle family).
//!
//! Each [`Profile`] is one adversarial client population:
//!
//! * [`Profile::Slowloris`] — header-trickle clients (one byte per
//!   interval, so `read_timeout` alone would never fire — the
//!   `header_read_timeout` budget must) interleaved with partial-write
//!   sinkholes that pipeline a large burst and never drain the
//!   responses, stalling the reactor's write path until
//!   `ServerConfig::write_timeout` closes them;
//! * [`Profile::Stampede`] — a herd hammering one hot dissenter user
//!   page while a voter keeps invalidating the response cache, forcing
//!   repeated miss storms through the front cache's single-flight;
//! * [`Profile::ValidatorReplay`] — cache-poisoning probes replaying a
//!   shadow session's validator from an anonymous connection (extending
//!   the PR5 shadow-isolation probe to sustained hostile load);
//! * [`Profile::PipelineFlood`] — batched HTTP/1.1 pipelined floods that
//!   ride keep-alive connections into the per-connection request cap;
//! * [`Profile::GreedyScraper`] — a swarm hammering the rate-limited
//!   per-URL route, ignoring every 429, eating penalized lockouts.
//!
//! Every driver keeps exact books ([`AbuseCounts`]): each offered
//! request ends in exactly one of served / not-modified / denied /
//! rejected / dropped / errored, so the caller can reconcile the abuse
//! run against the server's own counters (`conn.read_timeouts`,
//! `conn.write_timeouts`, `conn.oversize`, the rate limiter's
//! [`platform::RateStats`]) and prove nothing went unaccounted.
//!
//! [`polite_collect`] / [`greedy_collect`] run the 4TCT-style collector
//! comparison (arXiv:2307.03556) on the rate-limited route: same wall
//! budget, one honoring `X-RateLimit-Reset`, one hammering through
//! penalized lockouts — the polite collector must acquire more.

use crate::loadgen::{run, LoadConfig, LoadSummary, Mode};
use httpnet::http::{read_response, write_request};
use httpnet::{Request, Response, Status};
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// One adversarial client population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Per-URL scraper swarm ignoring 429s (and their penalties).
    GreedyScraper,
    /// Header tricklers + partial-write sinkholes.
    Slowloris,
    /// Hot-page herd with a cache-invalidating voter.
    Stampede,
    /// Pipelined request floods.
    PipelineFlood,
    /// Shadow-validator replay / cache-poisoning probes.
    ValidatorReplay,
}

impl Profile {
    /// Every profile, in stable order (index == `from_index` argument).
    pub const ALL: [Profile; 5] = [
        Profile::GreedyScraper,
        Profile::Slowloris,
        Profile::Stampede,
        Profile::PipelineFlood,
        Profile::ValidatorReplay,
    ];

    /// Stable name (artifact keys, scenario descriptions).
    pub fn name(&self) -> &'static str {
        match self {
            Profile::GreedyScraper => "greedy_scraper",
            Profile::Slowloris => "slowloris",
            Profile::Stampede => "stampede",
            Profile::PipelineFlood => "pipeline_flood",
            Profile::ValidatorReplay => "validator_replay",
        }
    }

    /// Profile for a scenario knob drawn as `index % ALL.len()`.
    pub fn from_index(index: u8) -> Profile {
        Self::ALL[index as usize % Self::ALL.len()]
    }
}

/// Abuse-load shape. `seed` drives every random choice (target
/// selection, voter cadence) through SplitMix64, so a profile run is
/// reproducible up to thread interleaving.
#[derive(Debug, Clone)]
pub struct AbuseConfig {
    /// Hostile connections (threads) per profile.
    pub conns: usize,
    /// RNG seed.
    pub seed: u64,
    /// Trickle interval for slowloris header drip.
    pub trickle: Duration,
    /// Per-connection give-up budget for tricklers/sinkholes; must
    /// comfortably exceed the server's `header_read_timeout` and
    /// `write_timeout` plus its ~200 ms sweep granularity.
    pub conn_deadline: Duration,
    /// Pipelined requests per flood burst.
    pub flood_batch: usize,
    /// Pipelined requests a sinkhole writes and never reads; sized so
    /// the queued responses overflow both socket buffers and stall the
    /// reactor's write path.
    pub sink_batch: usize,
}

impl Default for AbuseConfig {
    fn default() -> Self {
        Self {
            conns: 4,
            seed: 0xAB05_E5EE_D000_0001,
            trickle: Duration::from_millis(20),
            conn_deadline: Duration::from_secs(3),
            flood_batch: 64,
            sink_batch: 1024,
        }
    }
}

/// Exact books for one abuse segment. Every offered request lands in
/// exactly one outcome bucket, so
/// `offered == served + not_modified + denied + rejected + dropped + errors`
/// always — [`AbuseCounts::reconciles`] is the oracle's first check.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AbuseCounts {
    /// Requests the clients attempted (including ones never delivered).
    pub offered: u64,
    /// 2xx responses.
    pub served: u64,
    /// 304 responses.
    pub not_modified: u64,
    /// 429 responses.
    pub denied: u64,
    /// 429s carrying `X-RateLimit-Penalized: 1` (a subset of `denied`).
    pub penalized: u64,
    /// Other non-success statuses (expected rejections: 404s on probe
    /// targets, 400s).
    pub rejected: u64,
    /// Requests lost to a server-closed connection (the defense doing
    /// its job: timeouts, oversize closes, keep-alive caps).
    pub dropped: u64,
    /// Client-side failures before the server was reached (connect
    /// refusals, local I/O errors), plus tricklers that outlived their
    /// give-up budget without being closed.
    pub errors: u64,
    /// Shadow-visibility leaks observed (success or 304 where the
    /// isolation contract demands rejection). Always expected zero.
    pub leaks: u64,
    /// Cache-coherence violations: two responses sharing an ETag with
    /// different body bytes. Always expected zero.
    pub incoherent: u64,
    /// Connections the clients watched the server close mid-request
    /// (each must be accounted by a `conn.*` defense counter).
    pub closed_conns: u64,
}

impl AbuseCounts {
    /// Fold another segment's books into this one.
    pub fn merge(&mut self, other: &AbuseCounts) {
        self.offered += other.offered;
        self.served += other.served;
        self.not_modified += other.not_modified;
        self.denied += other.denied;
        self.penalized += other.penalized;
        self.rejected += other.rejected;
        self.dropped += other.dropped;
        self.errors += other.errors;
        self.leaks += other.leaks;
        self.incoherent += other.incoherent;
        self.closed_conns += other.closed_conns;
    }

    /// Every offered request is accounted by exactly one outcome.
    pub fn reconciles(&self) -> bool {
        self.offered
            == self.served + self.not_modified + self.denied + self.rejected + self.dropped
                + self.errors
    }
}

/// Targets an abuse run drives, discovered from the served world.
#[derive(Debug, Clone)]
pub struct AbuseTargets {
    /// The hot dissenter user page the herd stampedes (`/user/<name>`).
    pub hot_user: String,
    /// Rate-limited per-URL comment pages (`/url/<cuid>`), all valid.
    pub cuids: Vec<String>,
    /// Vote endpoint bumping the cache generation
    /// (`/url/<cuid>/vote?dir=up`), when the world has a URL.
    pub vote: Option<String>,
}

impl AbuseTargets {
    /// Pick targets from a world: the lexicographically first dissenter
    /// user as the hot page and the first few comment URLs as the
    /// rate-limited set. Deterministic for a deterministic world.
    pub fn discover(world: &platform::World, url_count: usize) -> Option<AbuseTargets> {
        let hot = world
            .dissenter_users()
            .map(|i| world.user(i).username.clone())
            .min()?;
        let mut ids: Vec<String> =
            world.dissenter.urls().iter().map(|u| u.id.to_string()).collect();
        ids.sort_unstable();
        ids.truncate(url_count.max(1));
        if ids.is_empty() {
            return None;
        }
        let vote = Some(format!("/url/{}/vote?dir=up", ids[0]));
        Some(AbuseTargets {
            hot_user: format!("/user/{hot}"),
            cuids: ids.into_iter().map(|id| format!("/url/{id}")).collect(),
            vote,
        })
    }
}

/// A shadow-labeled page plus the validator an opted-in session was
/// served for it — the ammunition for [`Profile::ValidatorReplay`].
#[derive(Debug, Clone)]
pub struct ShadowProbe {
    /// The shadow-labeled comment page (`/comment/<cid>`).
    pub target: String,
    /// The ETag the shadow session was served.
    pub tag: String,
}

/// Fetch a shadow-labeled comment page as the opted-in crawler session
/// and capture its validator over the wire. `None` when the world has
/// no shadow-labeled comment (tiny scales) or the fetch fails.
pub fn shadow_probe(addr: SocketAddr, world: &platform::World) -> Option<ShadowProbe> {
    let comment = world.dissenter.comments().iter().find(|c| c.nsfw || c.offensive)?;
    let target = format!("/comment/{}", comment.id);
    let mut conn = connect(addr).ok()?;
    let mut req = request("GET", &target);
    req.headers.add("Cookie", "session=crawler:both");
    let resp = send(&mut conn, &req).ok()?;
    if !resp.status.is_success() {
        return None;
    }
    let tag = resp.etag()?.to_owned();
    Some(ShadowProbe { target, tag })
}

/// SplitMix64 step.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn now_secs() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

fn connect(addr: SocketAddr) -> std::io::Result<BufReader<TcpStream>> {
    let s = TcpStream::connect(addr)?;
    s.set_nodelay(true)?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    Ok(BufReader::with_capacity(16 * 1024, s))
}

fn request(method: &str, target: &str) -> Request {
    let mut req = Request {
        method: method.into(),
        target: target.into(),
        headers: httpnet::http::Headers::new(),
        body: Vec::new(),
    };
    req.headers.add("Host", "sim.local");
    req
}

fn send(conn: &mut BufReader<TcpStream>, req: &Request) -> Result<Response, ()> {
    write_request(req, conn.get_mut()).map_err(|_| ())?;
    read_response(conn).map_err(|_| ())
}

/// FNV-1a over body bytes, for ETag↔body coherence checks.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Bucket one delivered response into the books. `coherence`, when
/// given, is the shared ETag→body-hash map the stampede herd uses to
/// prove byte-identity of cache-served bodies.
fn record(
    counts: &mut AbuseCounts,
    resp: &Response,
    coherence: Option<&Mutex<HashMap<String, u64>>>,
) {
    if resp.status.is_success() {
        counts.served += 1;
        if let (Some(map), Some(tag)) = (coherence, resp.etag()) {
            let hash = fnv64(&resp.body);
            let mut map = map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let prior = *map.entry(tag.to_owned()).or_insert(hash);
            if prior != hash {
                counts.incoherent += 1;
            }
        }
    } else if resp.status == Status::NOT_MODIFIED {
        counts.not_modified += 1;
    } else if resp.status == Status::TOO_MANY {
        counts.denied += 1;
        if resp.headers.get("X-RateLimit-Penalized") == Some("1") {
            counts.penalized += 1;
        }
    } else {
        counts.rejected += 1;
    }
}

/// Greedy scraper: hammer the rate-limited per-URL pages round-robin,
/// ignoring every 429 (each re-request inside a lockout extends it).
fn greedy_scraper(
    addr: SocketAddr,
    cuids: &[String],
    stop: &AtomicBool,
    mut rng: u64,
    counts: &mut AbuseCounts,
) {
    let mut conn: Option<BufReader<TcpStream>> = None;
    while !stop.load(Ordering::Relaxed) {
        counts.offered += 1;
        let c = match conn.as_mut() {
            Some(c) => c,
            None => match connect(addr) {
                Ok(c) => conn.insert(c),
                Err(_) => {
                    counts.errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            },
        };
        let target = &cuids[(splitmix(&mut rng) % cuids.len() as u64) as usize];
        match send(c, &request("GET", target)) {
            Ok(resp) => record(counts, &resp, None),
            Err(()) => {
                // Keep-alive retirement or a defense close: the request
                // was never answered.
                counts.dropped += 1;
                counts.closed_conns += 1;
                conn = None;
            }
        }
    }
}

/// Header trickler: start a request, then drip one header byte per
/// interval. `read_timeout` is refreshed by every byte, so only the
/// pinned `header_read_timeout` budget can end this — the driver counts
/// a drop when (and only when) the server hangs up.
fn trickler(addr: SocketAddr, cfg: &AbuseConfig, stop: &AtomicBool, counts: &mut AbuseCounts) {
    while !stop.load(Ordering::Relaxed) {
        counts.offered += 1;
        let Ok(reader) = connect(addr) else {
            counts.errors += 1;
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let mut s = reader.into_inner();
        let _ = s.set_read_timeout(Some(Duration::from_millis(5)));
        if s.write_all(b"GET /user/slow HTTP/1.1\r\nHost: sim.local\r\nX-Drip: ").is_err() {
            counts.dropped += 1;
            counts.closed_conns += 1;
            continue;
        }
        let started = Instant::now();
        let mut closed = false;
        while !closed && started.elapsed() < cfg.conn_deadline {
            std::thread::sleep(cfg.trickle);
            if s.write_all(b"a").is_err() {
                closed = true;
                break;
            }
            let mut buf = [0u8; 64];
            match s.read(&mut buf) {
                Ok(0) => closed = true,
                Ok(_) => {} // the server never speaks first; ignore
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => closed = true,
            }
        }
        if closed {
            counts.dropped += 1;
            counts.closed_conns += 1;
        } else {
            // Outlived the give-up budget without a close: the defense
            // failed to fire. Books it as an error so reconciliation
            // still holds and the oracle can see dropped == 0.
            counts.errors += 1;
        }
    }
}

/// Partial-write sinkhole: pipeline a burst big enough that the queued
/// responses overflow both loopback socket buffers, then refuse to read.
/// The reactor's write path stalls until `write_timeout` closes the
/// connection; the driver then drains what was delivered and books the
/// rest as dropped.
fn sinkhole(
    addr: SocketAddr,
    hot: &str,
    cfg: &AbuseConfig,
    stop: &AtomicBool,
    counts: &mut AbuseCounts,
) {
    let one = format!("GET {hot} HTTP/1.1\r\nHost: sim.local\r\n\r\n");
    while !stop.load(Ordering::Relaxed) {
        let Ok(mut conn) = connect(addr) else {
            counts.offered += 1;
            counts.errors += 1;
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let burst: Vec<u8> = one.as_bytes().repeat(cfg.sink_batch);
        if conn.get_mut().write_all(&burst).is_err() {
            counts.offered += 1;
            counts.dropped += 1;
            counts.closed_conns += 1;
            continue;
        }
        counts.offered += cfg.sink_batch as u64;
        // Hold without reading until the write deadline has certainly
        // swept, then drain whatever made it through before the close.
        let hold_until = Instant::now() + cfg.conn_deadline;
        while Instant::now() < hold_until && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(50));
        }
        let _ = conn.get_ref().set_read_timeout(Some(Duration::from_millis(500)));
        let mut got = 0u64;
        let mut saw_close = false;
        while got < cfg.sink_batch as u64 {
            match read_response(&mut conn) {
                Ok(resp) => {
                    record(counts, &resp, None);
                    got += 1;
                }
                Err(_) => {
                    saw_close = true;
                    break;
                }
            }
        }
        counts.dropped += cfg.sink_batch as u64 - got;
        if saw_close {
            counts.closed_conns += 1;
        }
    }
}

/// Stampede herd: hammer the hot user page; every so often a vote bumps
/// the cache generation, purging the entry and forcing the herd through
/// the front cache's single-flight again. Coherence is checked via the
/// shared ETag→body-hash map.
fn stampede(
    addr: SocketAddr,
    targets: &AbuseTargets,
    stop: &AtomicBool,
    mut rng: u64,
    coherence: &Mutex<HashMap<String, u64>>,
    counts: &mut AbuseCounts,
) {
    let mut conn: Option<BufReader<TcpStream>> = None;
    while !stop.load(Ordering::Relaxed) {
        counts.offered += 1;
        let c = match conn.as_mut() {
            Some(c) => c,
            None => match connect(addr) {
                Ok(c) => conn.insert(c),
                Err(_) => {
                    counts.errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            },
        };
        let vote_turn = targets.vote.is_some() && splitmix(&mut rng).is_multiple_of(13);
        let req = if vote_turn {
            request("POST", targets.vote.as_deref().unwrap())
        } else {
            request("GET", &targets.hot_user)
        };
        match send(c, &req) {
            Ok(resp) => record(counts, &resp, (!vote_turn).then_some(coherence)),
            Err(()) => {
                counts.dropped += 1;
                counts.closed_conns += 1;
                conn = None;
            }
        }
    }
}

/// Pipelined flood: batched bursts down keep-alive connections. Bursts
/// that cross the server's per-connection request cap lose their tail —
/// booked as drops, which the caller reconciles against the server
/// having closed the connection deliberately.
fn pipeline_flood(
    addr: SocketAddr,
    target: &str,
    cfg: &AbuseConfig,
    stop: &AtomicBool,
    counts: &mut AbuseCounts,
) {
    let one = format!("GET {target} HTTP/1.1\r\nHost: sim.local\r\n\r\n");
    let burst: Vec<u8> = one.as_bytes().repeat(cfg.flood_batch);
    'outer: while !stop.load(Ordering::Relaxed) {
        let Ok(mut conn) = connect(addr) else {
            counts.offered += 1;
            counts.errors += 1;
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        while !stop.load(Ordering::Relaxed) {
            if conn.get_mut().write_all(&burst).is_err() {
                counts.offered += 1;
                counts.dropped += 1;
                counts.closed_conns += 1;
                continue 'outer;
            }
            counts.offered += cfg.flood_batch as u64;
            for got in 0..cfg.flood_batch as u64 {
                match read_response(&mut conn) {
                    Ok(resp) => record(counts, &resp, None),
                    Err(_) => {
                        counts.dropped += cfg.flood_batch as u64 - got;
                        counts.closed_conns += 1;
                        continue 'outer;
                    }
                }
            }
        }
    }
}

/// Validator replay / poisoning probes: replay the shadow session's
/// validator anonymously (a 304 or 2xx is a leak), interleaved with
/// plain anonymous fetches (a 2xx is a leak) and occasional legitimate
/// shadow-session fetches that keep the cache entry hot — the poisoning
/// attempt needs something to poison.
fn validator_replay(
    addr: SocketAddr,
    probe: &ShadowProbe,
    stop: &AtomicBool,
    mut rng: u64,
    counts: &mut AbuseCounts,
) {
    let mut conn: Option<BufReader<TcpStream>> = None;
    while !stop.load(Ordering::Relaxed) {
        counts.offered += 1;
        let c = match conn.as_mut() {
            Some(c) => c,
            None => match connect(addr) {
                Ok(c) => conn.insert(c),
                Err(_) => {
                    counts.errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            },
        };
        let draw = splitmix(&mut rng) % 3;
        let mut req = request("GET", &probe.target);
        match draw {
            // Keep the shadow entry cached so the replay has a live
            // target; never a leak (the session is entitled to it).
            0 => req.headers.add("Cookie", "session=crawler:both"),
            // Anonymous replay of the shadow validator.
            1 => req.headers.add("If-None-Match", &probe.tag),
            // Plain anonymous fetch.
            _ => {}
        }
        match send(c, &req) {
            Ok(resp) => {
                if draw != 0
                    && (resp.status.is_success() || resp.status == Status::NOT_MODIFIED)
                {
                    counts.leaks += 1;
                }
                record(counts, &resp, None);
            }
            Err(()) => {
                counts.dropped += 1;
                counts.closed_conns += 1;
                conn = None;
            }
        }
    }
}

/// Drive one profile with `cfg.conns` concurrent hostile clients until
/// `stop` flips, returning the merged books. `shadow` arms
/// [`Profile::ValidatorReplay`]; without it that profile is a no-op
/// (tiny worlds may have no shadow-labeled comment to probe).
pub fn run_profile(
    addr: SocketAddr,
    profile: Profile,
    targets: &AbuseTargets,
    shadow: Option<&ShadowProbe>,
    cfg: &AbuseConfig,
    stop: &AtomicBool,
) -> AbuseCounts {
    let coherence: Mutex<HashMap<String, u64>> = Mutex::new(HashMap::new());
    let merged: Mutex<AbuseCounts> = Mutex::new(AbuseCounts::default());
    std::thread::scope(|scope| {
        for t in 0..cfg.conns.max(1) {
            let (merged, coherence) = (&merged, &coherence);
            scope.spawn(move || {
                let mut counts = AbuseCounts::default();
                let rng = cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                match profile {
                    Profile::GreedyScraper => {
                        greedy_scraper(addr, &targets.cuids, stop, rng, &mut counts)
                    }
                    Profile::Slowloris => {
                        if t % 2 == 0 {
                            trickler(addr, cfg, stop, &mut counts)
                        } else {
                            sinkhole(addr, &targets.hot_user, cfg, stop, &mut counts)
                        }
                    }
                    Profile::Stampede => {
                        stampede(addr, targets, stop, rng, coherence, &mut counts)
                    }
                    Profile::PipelineFlood => {
                        pipeline_flood(addr, &targets.hot_user, cfg, stop, &mut counts)
                    }
                    Profile::ValidatorReplay => {
                        if let Some(probe) = shadow {
                            validator_replay(addr, probe, stop, rng, &mut counts)
                        }
                    }
                }
                merged
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .merge(&counts);
            });
        }
    });
    merged.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One mixed run's outcome: the polite baseline's measurements beside
/// the hostile population's books.
#[derive(Debug, Clone)]
pub struct MixedOutcome {
    /// The well-behaved closed-loop baseline, measured mid-abuse.
    pub polite: LoadSummary,
    /// The hostile population's merged books.
    pub abuse: AbuseCounts,
}

/// Drive `profile` concurrently with a polite loadgen baseline: abuse
/// threads start first (with a short ramp so the measured window is
/// fully contested), the baseline is measured, and the abuse runs at
/// least `hold` from phase start before being stopped (slow defenses —
/// header budgets, write deadlines — need wall time to fire even when
/// the polite baseline finishes quickly).
#[allow(clippy::too_many_arguments)]
pub fn run_mixed(
    addr: SocketAddr,
    profile: Profile,
    targets: &AbuseTargets,
    shadow: Option<&ShadowProbe>,
    cfg: &AbuseConfig,
    polite_targets: &[String],
    polite: &LoadConfig,
    hold: Duration,
) -> MixedOutcome {
    let started = Instant::now();
    let stop = AtomicBool::new(false);
    let mut outcome: Option<MixedOutcome> = None;
    std::thread::scope(|scope| {
        let abuse_handle = scope.spawn(|| run_profile(addr, profile, targets, shadow, cfg, &stop));
        std::thread::sleep(Duration::from_millis(100)); // ramp: contention before measurement
        let polite = run(addr, polite_targets, polite, Mode::Cached);
        if let Some(rest) = hold.checked_sub(started.elapsed()) {
            std::thread::sleep(rest);
        }
        stop.store(true, Ordering::Relaxed);
        let abuse = abuse_handle.join().unwrap_or_default();
        outcome = Some(MixedOutcome { polite, abuse });
    });
    outcome.expect("scoped run completed")
}

/// One collector's outcome in the polite-vs-greedy comparison.
#[derive(Debug, Clone, Copy)]
pub struct CollectorOutcome {
    /// The collector's request books.
    pub counts: AbuseCounts,
    /// Pages successfully acquired inside the budget.
    pub acquired: u64,
    /// Times the polite collector slept until `X-RateLimit-Reset`.
    pub sleeps: u64,
}

/// The well-behaved collector: walk the rate-limited pages round-robin,
/// and on a 429 sleep until the advertised `X-RateLimit-Reset` before
/// retrying the same page — the paper crawler's (and 4TCT's) protocol.
pub fn polite_collect(addr: SocketAddr, cuids: &[String], deadline: Instant) -> CollectorOutcome {
    let mut out =
        CollectorOutcome { counts: AbuseCounts::default(), acquired: 0, sleeps: 0 };
    let mut conn: Option<BufReader<TcpStream>> = None;
    let mut i = 0usize;
    while Instant::now() < deadline {
        out.counts.offered += 1;
        let c = match conn.as_mut() {
            Some(c) => c,
            None => match connect(addr) {
                Ok(c) => conn.insert(c),
                Err(_) => {
                    out.counts.errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            },
        };
        let target = &cuids[i % cuids.len()];
        match send(c, &request("GET", target)) {
            Ok(resp) => {
                let reset = resp
                    .headers
                    .get("X-RateLimit-Reset")
                    .and_then(|s| s.parse::<u64>().ok());
                record(&mut out.counts, &resp, None);
                if resp.status == Status::TOO_MANY {
                    let wait = reset.unwrap_or(0).saturating_sub(now_secs());
                    let wake = Instant::now()
                        + Duration::from_secs(wait)
                        + Duration::from_millis(100);
                    if wake < deadline {
                        out.sleeps += 1;
                        std::thread::sleep(wake - Instant::now());
                    } else {
                        return out; // budget exhausted mid-backoff
                    }
                } else {
                    if resp.status.is_success() {
                        out.acquired += 1;
                    }
                    i += 1;
                }
            }
            Err(()) => {
                out.counts.dropped += 1;
                out.counts.closed_conns += 1;
                conn = None;
            }
        }
    }
    out
}

/// The greedy collector: same task and budget, but 429s are ignored —
/// it moves on immediately and keeps hammering, so under a
/// penalty-enabled limiter each re-visit inside a lockout extends it
/// and the acquisition rate collapses.
pub fn greedy_collect(addr: SocketAddr, cuids: &[String], deadline: Instant) -> CollectorOutcome {
    let mut out =
        CollectorOutcome { counts: AbuseCounts::default(), acquired: 0, sleeps: 0 };
    let mut conn: Option<BufReader<TcpStream>> = None;
    let mut i = 0usize;
    while Instant::now() < deadline {
        out.counts.offered += 1;
        let c = match conn.as_mut() {
            Some(c) => c,
            None => match connect(addr) {
                Ok(c) => conn.insert(c),
                Err(_) => {
                    out.counts.errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            },
        };
        let target = &cuids[i % cuids.len()];
        i += 1;
        match send(c, &request("GET", target)) {
            Ok(resp) => {
                record(&mut out.counts, &resp, None);
                if resp.status.is_success() {
                    out.acquired += 1;
                }
            }
            Err(()) => {
                out.counts.dropped += 1;
                out.counts.closed_conns += 1;
                conn = None;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpnet::{Handler, ServerConfig};
    use std::sync::Arc;
    use synth::config::Scale;
    use synth::WorldConfig;

    fn small_world() -> Arc<platform::World> {
        let cfg = WorldConfig {
            seed: 0xBEEF,
            scale: Scale::Custom(0.001),
            ..WorldConfig::small()
        };
        let (world, _) = synth::generate(&cfg);
        Arc::new(world)
    }

    fn hardened(registry: &obs::Registry) -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue: 256,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_millis(400),
            header_read_timeout: Duration::from_millis(300),
            metrics: Some(registry.clone()),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn slowloris_profile_is_closed_counted_and_reconciles() {
        let world = small_world();
        let registry = obs::Registry::new();
        let front = Arc::new(webfront::dissenter::DissenterFront::new(world.clone()));
        let server =
            httpnet::Server::start(front as Arc<dyn Handler>, hardened(&registry)).unwrap();
        let targets = AbuseTargets::discover(&world, 2).expect("targets");
        let cfg = AbuseConfig {
            conns: 2, // one trickler + one sinkhole
            conn_deadline: Duration::from_millis(1500),
            sink_batch: 1024,
            ..AbuseConfig::default()
        };
        let stop = AtomicBool::new(false);
        let counts;
        {
            let stop = &stop;
            counts = std::thread::scope(|scope| {
                let h = scope
                    .spawn(|| run_profile(server.addr(), Profile::Slowloris, &targets, None, &cfg, stop));
                std::thread::sleep(Duration::from_millis(2500));
                stop.store(true, Ordering::Relaxed);
                h.join().unwrap()
            });
        }
        assert!(counts.reconciles(), "{counts:?}");
        assert!(counts.dropped > 0, "the defense never closed a hostile conn: {counts:?}");
        assert_eq!(counts.errors, 0, "a trickler outlived its budget unclosed: {counts:?}");
        let snap = registry.snapshot();
        let timeouts = snap.counter("conn.read_timeouts").unwrap_or(0)
            + snap.counter("conn.write_timeouts").unwrap_or(0)
            + snap.counter("conn.oversize").unwrap_or(0);
        assert!(
            timeouts >= counts.closed_conns,
            "server closed {} hostile conns but only counted {timeouts} defense closes",
            counts.closed_conns
        );
        assert!(
            snap.counter("conn.read_timeouts").unwrap_or(0) > 0,
            "tricklers must be closed by the header budget"
        );
        assert!(
            snap.counter("conn.write_timeouts").unwrap_or(0) > 0,
            "sinkholes must be closed by the write deadline"
        );
    }

    #[test]
    fn greedy_books_reconcile_against_the_limiter_exactly() {
        let world = small_world();
        let stamp = world.content_hash();
        let front = Arc::new(webfront::dissenter::DissenterFront::with_parts(
            world.clone(),
            webfront::cache::FrontCache::new(stamp),
            platform::RateLimiter::new(2, 1).with_penalty(3),
        ));
        let server = httpnet::Server::start(
            front.clone() as Arc<dyn Handler>,
            ServerConfig::default(),
        )
        .unwrap();
        let targets = AbuseTargets::discover(&world, 2).expect("targets");
        let deadline = Instant::now() + Duration::from_millis(1500);
        let greedy = greedy_collect(server.addr(), &targets.cuids, deadline);
        assert!(greedy.counts.reconciles(), "{greedy:?}");
        assert!(greedy.counts.penalized > 0, "hammering must earn penalized denies: {greedy:?}");
        let stats = front.rate_stats();
        assert_eq!(
            stats.allowed,
            greedy.counts.served + greedy.counts.not_modified + greedy.counts.rejected,
            "limiter allows vs client-observed successes: {stats:?} vs {greedy:?}"
        );
        assert_eq!(stats.denied, greedy.counts.denied, "{stats:?} vs {greedy:?}");
        assert_eq!(stats.penalized, greedy.counts.penalized, "{stats:?} vs {greedy:?}");
    }

    #[test]
    fn polite_collector_outcollects_greedy_under_penalties() {
        let world = small_world();
        let stamp = world.content_hash();
        let front = Arc::new(webfront::dissenter::DissenterFront::with_parts(
            world.clone(),
            webfront::cache::FrontCache::new(stamp),
            platform::RateLimiter::new(2, 1).with_penalty(3),
        ));
        let server = httpnet::Server::start(
            front as Arc<dyn Handler>,
            ServerConfig::default(),
        )
        .unwrap();
        let targets = AbuseTargets::discover(&world, 2).expect("targets");
        let budget = Duration::from_millis(3200);
        let greedy = greedy_collect(server.addr(), &targets.cuids, Instant::now() + budget);
        // Let every penalty lockout expire so the polite run starts clean.
        std::thread::sleep(Duration::from_millis(3600));
        let polite = polite_collect(server.addr(), &targets.cuids, Instant::now() + budget);
        assert!(polite.sleeps > 0, "polite collector never honored a reset: {polite:?}");
        assert!(
            polite.acquired > greedy.acquired,
            "polite {} must outcollect greedy {} under penalties",
            polite.acquired,
            greedy.acquired
        );
    }
}
