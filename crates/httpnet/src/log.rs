//! Server-side access logging.
//!
//! The guides treat observability (packet dumps, traces) as a first-class
//! feature of a networking substrate. The server keeps a bounded ring of
//! recent requests — method, path, status, body size, handling duration —
//! that tests and operators can inspect without external tooling.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Duration;

/// One served request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessEntry {
    /// HTTP method.
    pub method: String,
    /// Request target (path + query).
    pub target: String,
    /// Response status code.
    pub status: u16,
    /// Response body size in bytes.
    pub body_len: usize,
    /// Handler wall time.
    pub duration: Duration,
}

/// A bounded, thread-safe ring of recent [`AccessEntry`]s.
#[derive(Debug)]
pub struct AccessLog {
    ring: Mutex<VecDeque<AccessEntry>>,
    capacity: usize,
    total: std::sync::atomic::AtomicU64,
}

impl AccessLog {
    /// A log retaining the most recent `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            total: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Record an entry (evicting the oldest when full).
    pub fn record(&self, entry: AccessEntry) {
        self.total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Snapshot of the retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<AccessEntry> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Total requests ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Count of retained entries with a given status class (e.g. `4` for
    /// 4xx).
    pub fn count_status_class(&self, class: u16) -> usize {
        self.ring.lock().iter().filter(|e| e.status / 100 == class).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(status: u16, target: &str) -> AccessEntry {
        AccessEntry {
            method: "GET".into(),
            target: target.into(),
            status,
            body_len: 0,
            duration: Duration::from_micros(10),
        }
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let log = AccessLog::new(10);
        log.record(entry(200, "/a"));
        log.record(entry(404, "/b"));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].target, "/a");
        assert_eq!(snap[1].status, 404);
        assert_eq!(log.total(), 2);
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = AccessLog::new(3);
        for i in 0..5 {
            log.record(entry(200, &format!("/{i}")));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].target, "/2");
        assert_eq!(log.total(), 5);
    }

    #[test]
    fn status_class_counting() {
        let log = AccessLog::new(10);
        log.record(entry(200, "/"));
        log.record(entry(201, "/"));
        log.record(entry(404, "/"));
        log.record(entry(500, "/"));
        assert_eq!(log.count_status_class(2), 2);
        assert_eq!(log.count_status_class(4), 1);
        assert_eq!(log.count_status_class(5), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        AccessLog::new(0);
    }
}
