//! Simulated wall clock for deterministic world generation.
//!
//! All data generation runs against a simulated clock spanning the paper's
//! 14-month measurement window: Dissenter's launch in February 2019 through
//! the end of April 2020. Real wall-clock time never feeds the generators,
//! so a `(seed, scale)` pair always produces an identical world.

/// Seconds since the Unix epoch. Dissenter encodes this (truncated to 32
/// bits, big-endian) into the first four bytes of each object ID.
pub type Timestamp = u64;

/// 2019-02-26T00:00:00Z — public launch of the Dissenter extension.
pub const DISSENTER_LAUNCH: Timestamp = 1_551_139_200;

/// 2020-04-30T23:59:59Z — end of the paper's measurement window.
pub const STUDY_END: Timestamp = 1_588_291_199;

/// 2016-08-15T00:00:00Z — approximate Gab launch, used for Gab account ages.
pub const GAB_LAUNCH: Timestamp = 1_471_219_200;

const SECS_PER_DAY: u64 = 86_400;

/// A monotone simulated clock.
///
/// The clock only moves forward; [`SimClock::advance`] saturates at
/// [`STUDY_END`] unless explicitly constructed with a different horizon.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Timestamp,
    horizon: Timestamp,
}

impl SimClock {
    /// A clock positioned at Dissenter's launch, bounded by the study window.
    pub fn at_launch() -> Self {
        Self { now: DISSENTER_LAUNCH, horizon: STUDY_END }
    }

    /// A clock with an arbitrary start and horizon. `start` must not exceed
    /// `horizon`.
    pub fn new(start: Timestamp, horizon: Timestamp) -> Self {
        assert!(start <= horizon, "clock start after horizon");
        Self { now: start, horizon }
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The clock's horizon (advancing saturates here).
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// Advance by `secs`, saturating at the horizon. Returns the new time.
    pub fn advance(&mut self, secs: u64) -> Timestamp {
        self.now = (self.now + secs).min(self.horizon);
        self.now
    }

    /// Jump to an absolute time. Panics if this would move the clock
    /// backwards or past the horizon.
    pub fn seek(&mut self, to: Timestamp) {
        assert!(to >= self.now, "SimClock cannot move backwards");
        assert!(to <= self.horizon, "SimClock cannot move past its horizon");
        self.now = to;
    }

    /// Fraction of the way through `[start, horizon]` in `[0, 1]`.
    pub fn progress(&self, start: Timestamp) -> f64 {
        if self.horizon <= start {
            return 1.0;
        }
        (self.now.saturating_sub(start)) as f64 / (self.horizon - start) as f64
    }
}

/// Render a timestamp as `YYYY-MM-DD` (proleptic Gregorian, UTC).
///
/// Implemented from first principles (civil-from-days algorithm) so the
/// crate needs no external time dependency.
pub fn format_date(ts: Timestamp) -> String {
    let (y, m, d) = civil_from_days((ts / SECS_PER_DAY) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Render a timestamp as `YYYY-MM-DDTHH:MM:SSZ`.
pub fn format_datetime(ts: Timestamp) -> String {
    let (y, m, d) = civil_from_days((ts / SECS_PER_DAY) as i64);
    let rem = ts % SECS_PER_DAY;
    let (h, mi, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    format!("{y:04}-{m:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
}

/// Timestamp for midnight UTC of the given civil date.
pub fn from_ymd(year: i64, month: u32, day: u32) -> Timestamp {
    let days = days_from_civil(year, month, day);
    assert!(days >= 0, "date before the Unix epoch is unsupported");
    days as u64 * SECS_PER_DAY
}

/// `(year, month)` of a timestamp; handy for monthly growth histograms.
pub fn year_month(ts: Timestamp) -> (i64, u32) {
    let (y, m, _) = civil_from_days((ts / SECS_PER_DAY) as i64);
    (y, m)
}

// Howard Hinnant's `civil_from_days` / `days_from_civil` algorithms.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_date_is_feb_2019() {
        assert_eq!(format_date(DISSENTER_LAUNCH), "2019-02-26");
    }

    #[test]
    fn study_end_is_apr_2020() {
        assert_eq!(format_date(STUDY_END), "2020-04-30");
    }

    #[test]
    fn paper_example_timestamp() {
        // §2.2: an account created 2019-02-28T16:23:53Z begins `5c780b19`.
        let ts: Timestamp = 0x5c78_0b19;
        assert_eq!(format_datetime(ts), "2019-02-28T16:23:53Z");
    }

    #[test]
    fn from_ymd_round_trip() {
        for &(y, m, d) in &[(1970, 1, 1), (2000, 2, 29), (2019, 2, 26), (2020, 12, 31)] {
            let ts = from_ymd(y, m, d);
            assert_eq!(format_date(ts), format!("{y:04}-{m:02}-{d:02}"));
        }
    }

    #[test]
    fn clock_advances_and_saturates() {
        let mut c = SimClock::new(0, 100);
        assert_eq!(c.advance(60), 60);
        assert_eq!(c.advance(60), 100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn clock_progress_bounds() {
        let mut c = SimClock::new(0, 200);
        assert_eq!(c.progress(0), 0.0);
        c.advance(100);
        assert!((c.progress(0) - 0.5).abs() < 1e-12);
        c.advance(1000);
        assert_eq!(c.progress(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_seek_backwards_panics() {
        let mut c = SimClock::new(50, 100);
        c.seek(10);
    }

    #[test]
    fn year_month_extraction() {
        assert_eq!(year_month(DISSENTER_LAUNCH), (2019, 2));
        assert_eq!(year_month(from_ymd(2019, 3, 31)), (2019, 3));
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;

    #[test]
    fn leap_day_round_trips() {
        let ts = from_ymd(2020, 2, 29);
        assert_eq!(format_date(ts), "2020-02-29");
        assert_eq!(format_date(ts + 86_400), "2020-03-01");
    }

    #[test]
    fn year_boundary() {
        let ts = from_ymd(2019, 12, 31) + 86_399;
        assert_eq!(format_datetime(ts), "2019-12-31T23:59:59Z");
        assert_eq!(format_date(ts + 1), "2020-01-01");
    }

    #[test]
    fn non_leap_century_rules_hold() {
        // 2100 is not a leap year (divisible by 100, not 400).
        let ts = from_ymd(2100, 2, 28) + 86_400;
        assert_eq!(format_date(ts), "2100-03-01");
    }
}
