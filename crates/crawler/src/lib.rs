#![warn(missing_docs)]
//! The measurement apparatus — §3's methodology as code.
//!
//! Everything here talks to the services over real HTTP and reconstructs
//! the dataset the way the paper did:
//!
//! 1. [`gab_enum`] — exhaustively enumerate Gab's sequential account IDs
//!    through `https://gab.com/api/v1/accounts/<id>`, reading rate-limit
//!    headers and sleeping until reset when exhausted (§3.1, §3.4);
//! 2. [`probe`] — for every Gab username, request the Dissenter home page
//!    and classify existence **by response size** (≥10 kB vs ~150 B);
//! 3. [`spider`] — crawl home pages for author-ids and commented-URL
//!    lists, then every comment page in four visibility contexts
//!    (anonymous, NSFW, offensive, both), inferring shadow labels from the
//!    diff against the anonymous baseline, scraping the hidden
//!    `commentAuthor` metadata, and recovering ghost (deleted-Gab)
//!    accounts to a fixpoint (§3.2);
//! 4. [`shadow`] — validate a sample of inferred shadow labels against the
//!    live service, with timeout-retry hygiene (§4.3.1);
//! 5. [`youtube`] — fetch the rendered state of every YouTube URL (§3.3);
//! 6. [`social`] — walk the paginated Gab follower/following API for every
//!    Dissenter user (§3.4);
//! 7. [`reddit`] — match usernames on Reddit and pull Pushshift comment
//!    histories (§4.4.1).
//!
//! [`Crawler::full_crawl`] runs all phases and returns a [`store::CrawlStore`]
//! — the reconstructed mirror every §4 analysis consumes. The crawler never
//! reads the in-process `World`; its only input is HTTP.

pub mod gab_enum;
pub mod journal;
pub mod parallel;
pub mod persist;
pub mod probe;
pub mod reddit;
pub mod resilience;
pub mod scrape;
pub mod shadow;
pub mod social;
pub mod spider;
pub mod store;
pub mod youtube;

use httpnet::ServerConfig;
use std::net::SocketAddr;

pub use journal::{DurableConfig, Failpoint, Retention};
pub use resilience::{CircuitBreaker, Phase};
pub use store::{CrawlStore, DeadLetter};

/// Crawl tuning.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Parallel worker connections per phase.
    pub workers: usize,
    /// Extra attempts for failed requests (the §4.3.1 re-request loop).
    pub retries: usize,
    /// Backoff between retries.
    pub backoff: std::time::Duration,
    /// Stop Gab enumeration after this many consecutive missing IDs.
    pub enum_gap_tolerance: u64,
    /// Validation sample size for shadow-label checks.
    pub validation_sample: usize,
    /// Client read/connect timeout — a stalled (slow-loris) server is
    /// indistinguishable from a dead one past this point.
    pub timeout: std::time::Duration,
    /// Shared retry budget per phase: total extra attempts a phase may
    /// spend across all its fetches. Once dry, every fetch gets a single
    /// attempt, so a pathological endpoint degrades coverage (visibly,
    /// via dead letters) instead of stalling the crawl.
    pub retry_budget: usize,
    /// Consecutive exhausted fetches that open an endpoint's circuit
    /// breaker.
    pub breaker_threshold: usize,
    /// How long an open breaker fast-fails before admitting a half-open
    /// probe.
    pub breaker_cooldown: std::time::Duration,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            retries: 3,
            backoff: std::time::Duration::from_millis(20),
            enum_gap_tolerance: 2_000,
            validation_sample: 100,
            timeout: std::time::Duration::from_secs(5),
            retry_budget: 10_000,
            breaker_threshold: 5,
            breaker_cooldown: std::time::Duration::from_millis(200),
        }
    }
}

/// What [`Crawler::resume`] found in the journal before re-running the
/// remainder of the crawl.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeInfo {
    /// Phases already durable at recovery time (a prefix of
    /// [`Phase::ALL`]); only the rest were re-run.
    pub completed: usize,
    /// Revalidation entries recovered from after the last checkpoint —
    /// the killed run's partial progress through the interrupted phase.
    /// Each is answerable with a `304` during the re-run, so this is a
    /// floor on the `http.<service>.not_modified` counters resume earns.
    pub uncheckpointed_reval: usize,
    /// The WAL ended in a torn record that recovery truncated away.
    pub torn_tail_recovered: bool,
}

/// Addresses of the four services.
#[derive(Debug, Clone, Copy)]
pub struct Endpoints {
    /// dissenter.com.
    pub dissenter: SocketAddr,
    /// gab.com.
    pub gab: SocketAddr,
    /// reddit.com / Pushshift.
    pub reddit: SocketAddr,
    /// Rendered YouTube.
    pub youtube: SocketAddr,
}

/// Prior-sweep knowledge for an incremental longitudinal sweep (see
/// [`Crawler::set_sweep_hint`]).
///
/// # Soundness contract
///
/// The hint lets [`gab_enum`] and [`probe`] skip the uncacheable
/// negative probes (404s carry no validator, so they are re-paid in
/// full every sweep) that a previous sweep already answered. Skipping
/// them is sound only under the world's epoch contract
/// (`synth::apply_epoch`):
///
/// * Gab IDs are minted by a monotonic counter — every account created
///   after the previous sweep has an ID **above** [`SweepHint::max_gab_id`],
///   and IDs that were unallocated (or deleted) below it never become
///   visible again. Re-checking the known IDs (conditional, mostly
///   `304`-cheap) plus scanning past the previous maximum therefore
///   finds exactly the set a from-scratch enumeration would.
/// * Existing Gab users never gain a Dissenter account mid-study (only
///   newly created users can carry one), so a username that probed
///   negative stays negative; known positives are re-probed (their
///   pages change with bans) and new accounts are probed fresh.
///
/// The sweep≡one-shot differential oracle (`longitudinal.oracle`)
/// enforces the contract end-to-end: a hint that skipped a probe it
/// should not have makes the composed study diverge from the one-shot
/// study byte-for-byte.
#[derive(Debug, Clone)]
pub struct SweepHint {
    /// Highest Gab ID visible to the previous sweep.
    pub max_gab_id: u64,
    /// Every Gab ID the previous sweep enumerated, ascending.
    pub known_gab_ids: Vec<u64>,
    /// Usernames the previous sweep confirmed as Dissenter accounts.
    pub dissenter_usernames: std::collections::HashSet<String>,
}

impl SweepHint {
    /// Derive the hint from a completed sweep's store. `None` when the
    /// store enumerated nothing (an empty hint would degenerate the next
    /// sweep's enumeration into scanning from ID 1 anyway).
    pub fn from_store(store: &CrawlStore) -> Option<Self> {
        let known_gab_ids: Vec<u64> = store.gab_accounts.iter().map(|a| a.gab_id).collect();
        let max_gab_id = *known_gab_ids.last()?;
        Some(Self {
            max_gab_id,
            known_gab_ids,
            dissenter_usernames: store.dissenter_usernames.iter().cloned().collect(),
        })
    }
}

/// The full §3 pipeline.
#[derive(Debug)]
pub struct Crawler {
    /// Service addresses.
    pub endpoints: Endpoints,
    /// Tuning.
    pub config: CrawlConfig,
    /// Per-endpoint circuit breakers, shared across phases (probe and
    /// spider hammer the same Dissenter endpoint; an outage in progress
    /// must survive the phase boundary).
    pub breakers: resilience::Breakers,
    /// Run metrics: per-phase coverage counters, request latency per
    /// service, breaker transition events, and phase wall-clock spans.
    /// Replace with a clone of an outer registry to aggregate a crawl
    /// into a larger run (the registry is a shared handle).
    pub metrics: obs::Registry,
    /// Shared ETag revalidation cache, attached to every worker client
    /// when set (see [`Crawler::enable_revalidation`]).
    reval: Option<httpnet::RevalidationCache>,
    /// Simulated serving clock (see [`Crawler::set_clock`]).
    clock: Option<platform::SimClock>,
    /// Prior-sweep knowledge (see [`Crawler::set_sweep_hint`]).
    hint: Option<SweepHint>,
}

impl Crawler {
    /// A crawler with default tuning.
    pub fn new(endpoints: Endpoints) -> Self {
        Self {
            endpoints,
            config: CrawlConfig::default(),
            breakers: resilience::Breakers::default(),
            metrics: obs::Registry::new(),
            reval: None,
            clock: None,
            hint: None,
        }
    }

    /// Attach prior-sweep knowledge for an **incremental sweep**: the
    /// enumeration re-checks the known ID set and scans only past the
    /// previous maximum, and the probe phase skips usernames that
    /// already probed negative (see [`SweepHint`] for why that is
    /// sound). The resulting store is byte-identical to a hint-free
    /// crawl of the same world; only the uncacheable negative-probe
    /// traffic disappears.
    pub fn set_sweep_hint(&mut self, hint: SweepHint) {
        self.hint = Some(hint);
    }

    /// The attached prior-sweep knowledge, if any.
    pub fn sweep_hint(&self) -> Option<&SweepHint> {
        self.hint.as_ref()
    }

    /// Turn on **incremental re-crawl**: every worker client shares one
    /// [`httpnet::RevalidationCache`], so a second [`Crawler::full_crawl`]
    /// on the same crawler sends `If-None-Match` for pages it has seen
    /// and resolves the servers' `304`s from cache instead of
    /// re-downloading bodies. The store a re-crawl produces is
    /// byte-identical to a fresh full crawl's (the cache is transparent
    /// — `simcheck`'s incremental oracle holds this across seeds);
    /// only the wire traffic shrinks, visible as `http.<service>.not_modified`
    /// counters in [`Crawler::metrics`].
    ///
    /// `capacity` bounds the number of cached representations (FIFO
    /// eviction; an evicted page is transparently re-fetched in full).
    pub fn enable_revalidation(&mut self, capacity: usize) {
        self.reval = Some(httpnet::RevalidationCache::new(capacity));
    }

    /// The shared revalidation cache, if incremental re-crawl is on.
    pub fn revalidation_cache(&self) -> Option<&httpnet::RevalidationCache> {
        self.reval.as_ref()
    }

    /// Attach an **existing** revalidation cache instead of a fresh one
    /// — longitudinal sweeps hand every sweep's crawler the same cache
    /// (revalidation keys are host-free, so validators earned against
    /// one sweep's ephemeral ports keep working on the next sweep's).
    pub fn set_revalidation(&mut self, cache: httpnet::RevalidationCache) {
        self.reval = Some(cache);
    }

    /// Key every throttle wait off a shared [`platform::SimClock`]
    /// instead of the wall: when a server's `X-RateLimit-Reset` (in
    /// simulated seconds) demands a wait, the crawler *advances the
    /// clock* past the reset rather than sleeping. Paired with fronts
    /// built by `webfront::SimFronts::for_sweep` (whose rate limiters
    /// read the same clock), this keeps penalty lockouts and resumed
    /// sweeps byte-replayable — wall-clock scheduling can no longer
    /// decide whether a resumed crawl lands inside a spent rate window.
    pub fn set_clock(&mut self, clock: platform::SimClock) {
        self.clock = Some(clock);
    }

    /// The simulated clock, if one is attached.
    pub fn clock(&self) -> Option<&platform::SimClock> {
        self.clock.as_ref()
    }

    /// Run every phase: enumerate, probe, spider, shadow-diff, YouTube,
    /// social, Reddit. Returns the reconstructed dataset.
    pub fn full_crawl(&self) -> CrawlStore {
        let mut store = CrawlStore::default();
        for phase in Phase::ALL {
            self.timed_phase(phase, &mut store, phase_fn(phase));
        }
        store
    }

    /// [`Crawler::full_crawl`], journaled through a [`journal::Journal`]
    /// rooted at `dir`: each phase is checkpointed into a segmented WAL
    /// (with periodic snapshots) as it completes, so a killed crawl can
    /// pick up from the last phase boundary via [`Crawler::resume`]
    /// instead of starting over. Fails if `dir` already holds a
    /// journal.
    pub fn full_crawl_durable(
        &self,
        dir: &std::path::Path,
        cfg: &DurableConfig,
    ) -> std::io::Result<CrawlStore> {
        let mut journal = journal::Journal::create(dir, cfg, self.metrics.clone())?;
        let mut store = CrawlStore::default();
        for phase in Phase::ALL {
            self.timed_phase(phase, &mut store, phase_fn(phase));
            journal.commit_phase(phase, &store, self.revalidation_cache())?;
        }
        Ok(store)
    }

    /// Resume a killed [`Crawler::full_crawl_durable`] from its journal:
    /// replay the latest snapshot + WAL tail into the store, seed the
    /// revalidation cache with every journaled representation (so the
    /// re-run answers `If-None-Match` with `304`s instead of
    /// re-downloading pages the dead crawl already fetched), durably
    /// roll back the interrupted phase's partial batch, and re-run only
    /// the phases after the last checkpoint. The result is
    /// indistinguishable from an uninterrupted crawl — `simcheck`'s
    /// `crash.resume` oracle holds this byte-for-byte across seeds.
    pub fn resume(
        &self,
        dir: &std::path::Path,
        cfg: &DurableConfig,
    ) -> std::io::Result<(CrawlStore, ResumeInfo)> {
        let (mut journal, state) = journal::Journal::recover(dir, cfg, self.metrics.clone())?;
        if let Some(cache) = &self.reval {
            for (key, resp) in &state.reval_entries {
                cache.store(key, resp);
            }
        }
        journal.rollback()?;
        let info = ResumeInfo {
            completed: state.completed,
            uncheckpointed_reval: state.uncheckpointed_reval,
            torn_tail_recovered: state.torn_tail_recovered,
        };
        let mut completed = state.completed;
        if resilience::mutation("resume_skips_interrupted_phase") && completed < Phase::ALL.len() {
            completed += 1;
        }
        let mut store = state.store;
        for &phase in &Phase::ALL[completed..] {
            self.timed_phase(phase, &mut store, phase_fn(phase));
            journal.commit_phase(phase, &store, self.revalidation_cache())?;
        }
        Ok((store, info))
    }

    /// Run one phase under a `crawl.<phase>` span and publish its
    /// timing-derived throughput as a `crawl.<phase>.items_per_sec`
    /// gauge (gauges, unlike counters, may differ between same-seed
    /// runs).
    fn timed_phase(
        &self,
        phase: Phase,
        store: &mut CrawlStore,
        f: impl FnOnce(&Crawler, &mut CrawlStore),
    ) {
        let span = self.metrics.span(&format!("crawl.{}", phase.name()));
        f(self, store);
        let elapsed = span.finish().as_secs_f64();
        if elapsed > 0.0 {
            let done = store.stats.phase(phase).snapshot().succeeded;
            self.metrics
                .set_gauge(&format!("crawl.{}.items_per_sec", phase.name()), done as f64 / elapsed);
        }
    }
}

/// The function that runs one pipeline phase (`full_crawl`, its durable
/// variant, and `resume` all dispatch through this table).
fn phase_fn(phase: Phase) -> fn(&Crawler, &mut CrawlStore) {
    match phase {
        Phase::GabEnum => gab_enum::enumerate,
        Phase::Probe => probe::probe_dissenter_accounts,
        Phase::Spider => spider::spider,
        Phase::Shadow => shadow::shadow_crawl,
        Phase::Youtube => youtube::crawl_youtube,
        Phase::Social => social::crawl_social,
        Phase::Reddit => reddit::crawl_reddit,
    }
}

/// Default server config used by tests and the harness when starting
/// services for a crawl.
pub fn default_server_config() -> ServerConfig {
    ServerConfig { workers: 8, queue: 256, ..Default::default() }
}
