//! The composed world: one user table, four services, baseline corpora.

use crate::dissenter::DissenterDb;
use crate::gab::GabDb;
use crate::model::{BaselineCorpus, User};
use crate::reddit::RedditDb;
use crate::youtube::YouTubeDb;
use ids::ObjectId;
use std::collections::HashMap;

/// The complete simulated universe the crawler measures.
///
/// Invariants:
/// * every user with `author_id = Some(..)` is a Dissenter user and appears
///   in `by_author_id`;
/// * every user is registered in [`GabDb`] under their `gab_id` **unless**
///   `gab_deleted` is set (deleted accounts vanish from the Gab API but
///   their Dissenter comments persist — §4.1.1 found ~1,300 such users);
/// * usernames are unique.
#[derive(Debug, Default, Clone)]
pub struct World {
    /// All users (Gab superset; some have Dissenter accounts).
    pub users: Vec<User>,
    /// Dissenter comment store.
    pub dissenter: DissenterDb,
    /// Gab ID space and social graph.
    pub gab: GabDb,
    /// Reddit accounts for the intersection baseline.
    pub reddit: RedditDb,
    /// YouTube content states.
    pub youtube: YouTubeDb,
    /// Table 3 baseline corpora (NY Times, Daily Mail).
    pub baselines: Vec<BaselineCorpus>,
    by_username: HashMap<String, u32>,
    by_author_id: HashMap<ObjectId, u32>,
}

impl World {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a user, maintaining indexes. Returns the user's index.
    /// Panics on duplicate usernames or author-ids.
    pub fn add_user(&mut self, user: User) -> u32 {
        let idx = self.users.len() as u32;
        assert!(
            self.by_username.insert(user.username.clone(), idx).is_none(),
            "duplicate username {}",
            user.username
        );
        if let Some(aid) = user.author_id {
            assert!(
                self.by_author_id.insert(aid, idx).is_none(),
                "duplicate author-id"
            );
        }
        if !user.gab_deleted {
            self.gab.register(user.gab_id, idx);
        }
        self.users.push(user);
        idx
    }

    /// Look up a user index by username.
    pub fn user_by_username(&self, username: &str) -> Option<u32> {
        self.by_username.get(username).copied()
    }

    /// Look up a user index by Dissenter author-id.
    pub fn user_by_author_id(&self, author_id: ObjectId) -> Option<u32> {
        self.by_author_id.get(&author_id).copied()
    }

    /// The user record at an index.
    pub fn user(&self, idx: u32) -> &User {
        &self.users[idx as usize]
    }

    /// Number of users (Gab universe, including deleted).
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of Dissenter users.
    pub fn dissenter_user_count(&self) -> usize {
        self.by_author_id.len()
    }

    /// Indexes of all Dissenter users.
    pub fn dissenter_users(&self) -> impl Iterator<Item = u32> + '_ {
        self.by_author_id.values().copied()
    }

    /// A 64-bit FNV-1a digest of every field the four services can
    /// render: users (identity, profile, flags, filters), the Dissenter
    /// URL/comment store, the Gab social graph, Reddit histories, YouTube
    /// content states, and baseline corpora. Two worlds with equal
    /// digests serve byte-identical pages, so the webfronts derive
    /// strong ETags from this value. Unordered collections are hashed in
    /// sorted order, making the digest independent of map iteration.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        for u in &self.users {
            h.str(&u.username).str(&u.display_name).str(&u.bio).str(&u.language);
            h.u64(u.gab_id).u64(u.created_at).bit(u.gab_deleted);
            match u.author_id {
                Some(id) => h.str(&id.to_hex()),
                None => h.bit(false),
            };
            let f = &u.flags;
            for b in [
                f.can_login, f.can_post, f.can_report, f.can_chat, f.can_vote, f.is_banned,
                f.is_admin, f.is_moderator, f.is_pro, f.is_donor, f.is_investor, f.is_premium,
                f.is_tippable, f.is_private, f.verified,
            ] {
                h.bit(b);
            }
            let v = &u.filters;
            for b in [v.pro, v.verified, v.standard, v.nsfw, v.offensive] {
                h.bit(b);
            }
        }
        for url in self.dissenter.urls() {
            h.str(&url.id.to_hex()).str(&url.url).str(&url.title).str(&url.description);
            h.u64(url.created_at).u64(url.upvotes as u64).u64(url.downvotes as u64);
        }
        for c in self.dissenter.comments() {
            h.str(&c.id.to_hex()).str(&c.url_id.to_hex()).str(&c.author_id.to_hex());
            match c.parent {
                Some(p) => h.str(&p.to_hex()),
                None => h.bit(false),
            };
            h.str(&c.text).u64(c.created_at).bit(c.nsfw).bit(c.offensive);
        }
        for idx in 0..self.users.len() as u32 {
            for &f in self.gab.following(idx) {
                h.u64(idx as u64).u64(f as u64);
            }
        }
        let mut reddit: Vec<&str> = self.reddit.usernames().collect();
        reddit.sort_unstable();
        for name in reddit {
            h.str(name);
            if let Some(comments) = self.reddit.comments(name) {
                for c in comments {
                    h.str(c);
                }
            }
            h.u64(self.reddit.declared_count(name).unwrap_or(0));
        }
        let mut yt: Vec<(&str, &crate::youtube::YtContent)> = self.youtube.iter().collect();
        yt.sort_unstable_by_key(|(url, _)| *url);
        for (url, content) in yt {
            h.str(url).u64(content.kind as u64);
            match &content.state {
                crate::youtube::YtState::Active { title, owner, comments_disabled } => {
                    h.bit(true).str(title).str(owner).bit(*comments_disabled);
                }
                crate::youtube::YtState::Unavailable(reason) => {
                    h.bit(false).u64(*reason as u64);
                }
            }
        }
        for b in &self.baselines {
            h.str(&b.name).u64(b.comments.len() as u64);
        }
        h.finish()
    }
}

/// FNV-1a accumulator with field separators (so adjacent fields cannot
/// alias into each other).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn str(&mut self, s: &str) -> &mut Self {
        for b in s.bytes() {
            self.byte(b);
        }
        self.byte(0x1f);
        self
    }

    fn u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    fn bit(&mut self, b: bool) -> &mut Self {
        self.byte(b as u8 + 1);
        self
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{UserFlags, ViewFilters};
    use ids::{EntityKind, ObjectIdGen};

    fn user(name: &str, gab_id: u64, dissenter: bool, deleted: bool, g: &mut ObjectIdGen) -> User {
        User {
            author_id: if dissenter { Some(g.next(100)) } else { None },
            gab_id,
            username: name.into(),
            display_name: name.to_uppercase(),
            bio: String::new(),
            created_at: 100,
            flags: UserFlags::default(),
            filters: ViewFilters::default(),
            language: "en".into(),
            gab_deleted: deleted,
        }
    }

    #[test]
    fn indexes_stay_consistent() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 1);
        let a = w.add_user(user("a", 1, true, false, &mut g));
        let b = w.add_user(user("quiet", 2, false, false, &mut g));
        assert_eq!(w.user_by_username("a"), Some(a));
        assert_eq!(w.user_by_username("quiet"), Some(b));
        assert_eq!(w.user_count(), 2);
        assert_eq!(w.dissenter_user_count(), 1);
        let aid = w.user(a).author_id.unwrap();
        assert_eq!(w.user_by_author_id(aid), Some(a));
    }

    #[test]
    fn deleted_gab_accounts_not_in_gab_api() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 2);
        w.add_user(user("ghost", 7, true, true, &mut g));
        // Dissenter side still knows them…
        assert_eq!(w.dissenter_user_count(), 1);
        // …but the Gab API does not.
        assert_eq!(w.gab.user_by_gab_id(7), None);
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let build = |bio: &str| {
            let mut w = World::new();
            let mut g = ObjectIdGen::new(EntityKind::Author, 9);
            let mut u = user("a", 1, true, false, &mut g);
            u.bio = bio.into();
            w.add_user(u);
            w
        };
        let w1 = build("hello");
        assert_eq!(w1.content_hash(), build("hello").content_hash(), "same content, same hash");
        assert_ne!(w1.content_hash(), build("changed").content_hash(), "content change must show");
        // A vote is a world-visible mutation: the digest must move.
        let mut w2 = build("hello");
        let url_id = {
            let mut g = ObjectIdGen::new(EntityKind::CommentUrl, 9);
            let id = g.next(50);
            let author = w2.users[0].author_id.unwrap();
            w2.dissenter
                .add_url(crate::model::CommentUrl {
                    id,
                    url: "https://example.com".into(),
                    title: "t".into(),
                    description: String::new(),
                    created_at: 10,
                    upvotes: 0,
                    downvotes: 0,
                })
                .unwrap_or(id);
            let _ = author;
            id
        };
        let before = w2.content_hash();
        w2.dissenter.vote(url_id, crate::model::Vote::Up);
        assert_ne!(before, w2.content_hash(), "vote must change the digest");
    }

    #[test]
    #[should_panic(expected = "duplicate username")]
    fn duplicate_username_panics() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 3);
        w.add_user(user("dup", 1, false, false, &mut g));
        w.add_user(user("dup", 2, false, false, &mut g));
    }
}
