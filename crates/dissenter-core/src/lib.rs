#![warn(missing_docs)]
//! The public pipeline: generate → serve → crawl → classify → analyze.
//!
//! [`run_study`] is the one-call entry point reproducing the entire paper:
//! it synthesizes a world at the configured scale, serves it over loopback
//! HTTP as four services (Dissenter, Gab, Reddit, rendered YouTube), runs
//! the §3 measurement methodology against those services, scores every
//! comment with the §3.5 classification stack (dictionary, Perspective
//! stand-in, SVM), and assembles every §4 table and figure into a
//! [`Study`].
//!
//! ```no_run
//! use dissenter_core::{run_study, StudyConfig};
//!
//! let study = run_study(&StudyConfig::small());
//! println!("{}", dissenter_core::render::overview(&study));
//! assert!(study.report.overview.comments > 0);
//! ```

pub mod experiments;
pub mod longitudinal;
pub mod render;
pub mod runstats;
pub mod svm_exp;

use analysis::report::{build_report_pooled, StudyReport};
use crawler::{CrawlConfig, CrawlStore, Crawler, Endpoints};
use std::sync::Arc;
use synth::config::Scale;
use synth::WorldConfig;
use webfront::SimServices;

pub use runstats::RunStats;
pub use svm_exp::SvmReport;

/// End-to-end study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// World generation parameters.
    pub world: WorldConfig,
    /// Crawl tuning.
    pub crawl: CrawlConfig,
    /// Worker threads for CPU-bound stages (synth text generation,
    /// comment scoring, SVM cross-validation/application). Output is
    /// byte-identical for every value; see DESIGN.md "Sharding".
    pub workers: usize,
    /// Size of the synthetic labeled corpus for the SVM experiment
    /// (the Davidson corpus is 37,718 samples; scale to taste).
    pub svm_corpus: usize,
    /// Skip the SVM experiment (it is the most CPU-intensive stage).
    pub skip_svm: bool,
    /// Fault injection applied to every simulated service — run the whole
    /// study through an adverse network to exercise the crawler's
    /// resilience layer. Defaults to no faults.
    pub faults: httpnet::FaultConfig,
}

impl StudyConfig {
    /// Test-sized configuration.
    pub fn small() -> Self {
        Self {
            world: WorldConfig::small(),
            crawl: CrawlConfig::default(),
            workers: 8,
            svm_corpus: 2_000,
            skip_svm: false,
            faults: httpnet::FaultConfig::none(),
        }
    }

    /// Configuration at an arbitrary scale.
    pub fn at_scale(scale: Scale) -> Self {
        Self { world: WorldConfig::at(scale), ..Self::small() }
    }
}

/// The complete study output.
#[derive(Debug)]
pub struct Study {
    /// Every §4 table and figure.
    pub report: StudyReport,
    /// The §3.5.3 SVM experiment (None when skipped).
    pub svm: Option<SvmReport>,
    /// The raw crawl mirror.
    pub store: CrawlStore,
    /// The scale factor the world was generated at.
    pub scale_factor: f64,
    /// Run observability: stage wall-clocks, per-phase crawl coverage,
    /// per-scorer throughput, the full metric snapshot, and the event
    /// trace.
    pub runstats: RunStats,
}

/// Run the full pipeline.
///
/// CPU-bound stages (synth text generation, comment scoring, SVM
/// cross-validation and application) shard onto `cfg.workers` threads;
/// shard geometry and seed streams are keyed by stable ids, so the
/// resulting [`Study`] is byte-identical at any worker count.
pub fn run_study(cfg: &StudyConfig) -> Study {
    let metrics = obs::Registry::new();
    let workers = cfg.workers.max(1);
    // One pool shared by every scoring stage (report + SVM experiment).
    let pool = httpnet::ThreadPool::with_metrics(workers, workers * 2, Some(&metrics));

    let span = metrics.span("stage.synth");
    let (world, _truth) = synth::generate_sharded(&cfg.world, workers);
    span.finish();
    let world = Arc::new(world);

    let span = metrics.span("stage.serve");
    let server_config = httpnet::ServerConfig {
        faults: cfg.faults,
        metrics: Some(metrics.clone()),
        ..crawler::default_server_config()
    };
    let services = SimServices::start(world.clone(), server_config)
        .expect("failed to start simulated services");
    span.finish();

    let mut crawler = Crawler::new(Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config = cfg.crawl.clone();
    crawler.metrics = metrics.clone();
    // Scale the enumeration stop-window with the world (IDs are sparse).
    crawler.config.enum_gap_tolerance = crawler
        .config
        .enum_gap_tolerance
        .min((world.gab.max_id() / 4).max(512));
    let span = metrics.span("stage.crawl");
    let store = crawler.full_crawl();
    span.finish();

    let span = metrics.span("stage.report");
    let report = build_report_pooled(&store, &world.baselines, &pool, Some(&metrics));
    span.finish();

    let svm = (!cfg.skip_svm).then(|| {
        let span = metrics.span("stage.svm");
        let r = svm_exp::run_svm_experiment_pooled(
            &store,
            cfg.svm_corpus,
            cfg.world.seed,
            &pool,
            Some(&metrics),
        );
        span.finish();
        r
    });

    let runstats = runstats::collect(&metrics);
    Study { report, svm, store, scale_factor: cfg.world.scale.factor(), runstats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_runs_end_to_end() {
        let mut cfg = StudyConfig::small();
        cfg.world.scale = Scale::Custom(0.002);
        cfg.svm_corpus = 400;
        let study = run_study(&cfg);
        assert!(study.report.overview.comments > 100);
        assert!(study.report.overview.urls > 50);
        assert!(study.svm.as_ref().expect("svm ran").cv_f1 > 0.5);
        // Every figure section materialized.
        assert_eq!(study.report.figure7.len(), 4);
        assert!(!study.report.figure8.severe_by_bias.is_empty());
        assert!(study.report.social.users > 0);
    }

    #[test]
    fn runstats_are_fully_populated() {
        let mut cfg = StudyConfig::small();
        cfg.world.scale = Scale::Custom(0.002);
        cfg.svm_corpus = 400;
        let study = run_study(&cfg);
        let rs = &study.runstats;

        // Every pipeline stage ran under a span.
        let stages: Vec<&str> = rs.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(stages, vec!["synth", "serve", "crawl", "report", "svm"]);
        assert!(rs.stages.iter().all(|s| s.wall_us > 0), "stages take nonzero time: {rs:?}");

        // Every crawl phase did work and balanced its books.
        assert_eq!(rs.phases.len(), 7);
        for p in &rs.phases {
            assert!(p.attempted > 0, "phase {} attempted nothing", p.name);
            assert_eq!(p.attempted, p.succeeded + p.dead_lettered, "{}", p.name);
        }

        // Every scorer is represented with comment counts.
        let mut scorers: Vec<&str> = rs.scorers.iter().map(|s| s.name.as_str()).collect();
        scorers.sort_unstable();
        assert_eq!(scorers, vec!["dictionary", "perspective", "svm"]);
        assert!(rs.scorers.iter().all(|s| s.comments > 0), "scorers scored: {:?}", rs.scorers);

        // Every sharded stage accounted for its scatter.
        let shards: Vec<&str> = rs.shards.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(shards, vec!["classify.score", "svm.apply", "svm.cv"]);
        assert!(rs.shards.iter().all(|s| s.jobs > 0), "shards ran: {:?}", rs.shards);

        // The wire instrumentation recorded latency for every service.
        for service in ["dissenter", "gab", "reddit", "youtube"] {
            let h = rs
                .snapshot
                .histogram(&format!("http.{service}.latency"))
                .unwrap_or_else(|| panic!("latency histogram for {service}"));
            assert!(h.count > 0 && h.sum_ns > 0, "{service} latency empty: {h:?}");
        }

        // The event trace captured the stage spans as JSONL.
        assert!(rs.events_jsonl.lines().count() >= 5);
        assert!(rs.events_jsonl.contains("\"event\":\"span\""));

        // The rendered table mentions each section.
        let table = render::runstats(&study);
        for needle in ["stage wall-clock", "crawl coverage", "scorer throughput", "latency"] {
            assert!(table.contains(needle), "runstats table missing {needle}:\n{table}");
        }
    }

    #[test]
    fn same_seed_runs_report_identical_counters() {
        // Counters are the deterministic half of the observability split:
        // two studies from the same seed must agree on every counter even
        // though gauges and histograms (wall-clock) may differ.
        let mut cfg = StudyConfig::small();
        cfg.world.scale = Scale::Custom(0.002);
        cfg.skip_svm = true;
        let a = run_study(&cfg);
        let b = run_study(&cfg);
        assert_eq!(
            a.runstats.snapshot.counters, b.runstats.snapshot.counters,
            "same-seed counter sets must be identical"
        );
        assert!(!a.runstats.snapshot.counters.is_empty());
    }

    #[test]
    fn study_survives_an_adverse_network() {
        let mut cfg = StudyConfig::small();
        cfg.world.scale = Scale::Custom(0.002);
        cfg.skip_svm = true;
        cfg.crawl.retries = 8;
        cfg.crawl.backoff = std::time::Duration::from_millis(1);
        cfg.faults = httpnet::FaultConfig {
            drop_prob: 0.05,
            error_prob: 0.05,
            seed: 3,
            ..httpnet::FaultConfig::none()
        };
        let study = run_study(&cfg);
        assert!(study.report.overview.comments > 100);
        assert!(
            study.store.dead_letters().is_empty(),
            "8 retries must ride out a 10% fault rate"
        );
    }
}
