//! Empirical cumulative distribution functions.
//!
//! Most of the paper's figures are ECDFs ("CDF of Total Comments",
//! "CDF of Ratios", Perspective score CDFs). [`Ecdf`] owns a sorted sample
//! and answers `F(x)`, quantiles, and evenly-spaced curve points suitable
//! for plotting or table output.

use crate::describe::quantile_sorted;

/// An empirical CDF over a finite sample.
///
/// ```
/// let e = stats::Ecdf::new(&[0.1, 0.4, 0.4, 0.9]);
/// assert_eq!(e.eval(0.4), 0.75);
/// assert_eq!(e.survival(0.4), 0.25);
/// assert_eq!(e.quantile(0.5), Some(0.4));
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (copied and sorted). Panics on NaN.
    pub fn new(xs: &[f64]) -> Self {
        assert!(xs.iter().all(|x| !x.is_nan()), "NaN in ECDF sample");
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Self { sorted }
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// `F(x)` — fraction of the sample ≤ `x`. Returns 0 for empty samples.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Complementary CDF: fraction strictly greater than `x`.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// Quantile `q ∈ [0,1]` with linear interpolation.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(quantile_sorted(&self.sorted, q))
    }

    /// `points` evenly-spaced `(x, F(x))` pairs spanning the sample range —
    /// the series a plotting tool would consume. The span always includes
    /// both endpoints (`points` is raised to 2 if needed); a constant
    /// sample yields the two-point curve `[(lo, F(lo)), (hi, 1.0)]`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        if hi == lo {
            return vec![(lo, self.eval(lo)), (hi, 1.0)];
        }
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// The underlying sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Lorenz-style concentration curve for Figure 3: given per-user activity
/// counts, returns `(user_fraction, activity_fraction)` pairs where users
/// are ordered by *descending* activity. The paper reads this curve as
/// "90% of comments are made by ~14% of active users".
pub fn concentration_curve(counts: &[u64], points: usize) -> Vec<(f64, f64)> {
    if counts.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return vec![(1.0, 0.0)];
    }
    let n = sorted.len();
    let mut cum = 0u64;
    let mut curve = Vec::with_capacity(points);
    let mut next_mark = 0usize;
    for (i, c) in sorted.iter().enumerate() {
        cum += c;
        // Emit when we cross each of the `points` user-fraction marks.
        while next_mark < points && (i + 1) * points >= (next_mark + 1) * n {
            curve.push(((i + 1) as f64 / n as f64, cum as f64 / total as f64));
            next_mark += 1;
        }
    }
    curve
}

/// Check that `(x, y)` points form a valid CDF-style curve: every value
/// finite, `y` within `[0, 1]`, and both coordinates non-decreasing.
/// Holds for [`Ecdf::curve`] and [`concentration_curve`] output by
/// construction; the simulation harness asserts it on every exported
/// curve so a regression in either becomes a named invariant violation
/// instead of a silent byte diff. Returns the first violation found.
pub fn validate_curve(points: &[(f64, f64)]) -> Result<(), String> {
    for (i, &(x, y)) in points.iter().enumerate() {
        if !x.is_finite() || !y.is_finite() {
            return Err(format!("curve point {i} not finite: ({x}, {y})"));
        }
        if !(-1e-9..=1.0 + 1e-9).contains(&y) {
            return Err(format!("curve point {i} has y outside [0,1]: {y}"));
        }
    }
    for (i, w) in points.windows(2).enumerate() {
        if w[1].0 < w[0].0 {
            return Err(format!("curve x decreases at point {}: {} -> {}", i + 1, w[0].0, w[1].0));
        }
        if w[1].1 < w[0].1 {
            return Err(format!("curve y decreases at point {}: {} -> {}", i + 1, w[0].1, w[1].1));
        }
    }
    Ok(())
}

/// Smallest user fraction whose (descending-activity) cumulative share
/// reaches `target` of total activity — e.g. `fraction_for_share(c, 0.9)`
/// answers "what fraction of users produce 90% of comments?".
pub fn fraction_for_share(counts: &[u64], target: f64) -> f64 {
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let goal = target * total as f64;
    let mut cum = 0f64;
    for (i, c) in sorted.iter().enumerate() {
        cum += *c as f64;
        if cum >= goal {
            return (i + 1) as f64 / sorted.len() as f64;
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_function() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(9.0), 1.0);
    }

    #[test]
    fn survival_complements() {
        let e = Ecdf::new(&[1.0, 2.0]);
        assert_eq!(e.survival(1.0), 0.5);
    }

    #[test]
    fn empty_sample() {
        let e = Ecdf::new(&[]);
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert!(e.curve(10).is_empty());
    }

    #[test]
    fn curve_spans_range_monotonically() {
        let e = Ecdf::new(&[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
        let c = e.curve(11);
        assert_eq!(c.len(), 11);
        assert_eq!(c[0].0, 0.0);
        assert_eq!(c[10].0, 1.0);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert_eq!(c[10].1, 1.0);
    }

    #[test]
    fn curve_degenerate_sample() {
        // A constant sample still reports both span endpoints (the old
        // single-point answer dropped the lower one).
        let e = Ecdf::new(&[5.0, 5.0, 5.0]);
        assert_eq!(e.curve(10), vec![(5.0, 1.0), (5.0, 1.0)]);
    }

    #[test]
    fn curve_one_point_still_spans_the_range() {
        // Regression: curve(1) used to return only (max, 1.0), losing the
        // lower endpoint of the range.
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.curve(1), vec![(1.0, 0.25), (4.0, 1.0)]);
    }

    #[test]
    fn concentration_all_equal() {
        // Uniform activity: x% of users always hold x% of activity.
        let counts = vec![10u64; 100];
        let c = concentration_curve(&counts, 10);
        for (uf, af) in c {
            assert!((uf - af).abs() < 0.11, "({uf},{af})");
        }
    }

    #[test]
    fn concentration_skewed() {
        // One whale makes 91 of 100 comments.
        let mut counts = vec![1u64; 9];
        counts.push(91);
        let f = fraction_for_share(&counts, 0.9);
        assert!((f - 0.1).abs() < 1e-9, "one of ten users covers 90%: {f}");
    }

    #[test]
    fn fraction_for_share_edge_cases() {
        assert_eq!(fraction_for_share(&[], 0.9), 0.0);
        assert_eq!(fraction_for_share(&[0, 0], 0.9), 0.0);
        assert_eq!(fraction_for_share(&[5], 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Ecdf::new(&[f64::NAN]);
    }

    #[test]
    fn validate_curve_accepts_real_curves() {
        let e = Ecdf::new(&[0.1, 0.3, 0.3, 0.9]);
        assert_eq!(validate_curve(&e.curve(50)), Ok(()));
        assert_eq!(validate_curve(&concentration_curve(&[1, 5, 2, 90], 20)), Ok(()));
        assert_eq!(validate_curve(&[]), Ok(()));
    }

    #[test]
    fn validate_curve_rejects_bad_shapes() {
        assert!(validate_curve(&[(0.0, f64::NAN)]).unwrap_err().contains("not finite"));
        assert!(validate_curve(&[(0.0, 1.5)]).unwrap_err().contains("outside [0,1]"));
        assert!(validate_curve(&[(1.0, 0.1), (0.5, 0.2)])
            .unwrap_err()
            .contains("x decreases"));
        assert!(validate_curve(&[(0.0, 0.5), (1.0, 0.2)])
            .unwrap_err()
            .contains("y decreases"));
    }
}
