//! The crawl's output: a reconstructed mirror of the platform.

use crate::resilience::Phase;
use ids::ObjectId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One enumerated Gab account (from the accounts API).
#[derive(Debug, Clone)]
pub struct GabAccount {
    /// Sequential Gab ID.
    pub gab_id: u64,
    /// Username.
    pub username: String,
    /// ISO-8601 creation time string as returned by the API.
    pub created_at: String,
    /// Creation time parsed to epoch seconds (for Fig. 2).
    pub created_epoch: u64,
    /// Follower count advertised by the API.
    pub followers_count: u64,
    /// Following count advertised by the API.
    pub following_count: u64,
}

/// Hidden per-user metadata scraped from the `commentAuthor` blob (§3.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HiddenMeta {
    /// Language setting.
    pub language: String,
    /// Permission flags in Table-1 order.
    pub can_login: bool,
    /// canPost
    pub can_post: bool,
    /// canReport
    pub can_report: bool,
    /// canChat
    pub can_chat: bool,
    /// canVote
    pub can_vote: bool,
    /// isBanned
    pub is_banned: bool,
    /// isAdmin
    pub is_admin: bool,
    /// isModerator
    pub is_moderator: bool,
    /// isPro
    pub is_pro: bool,
    /// isDonor
    pub is_donor: bool,
    /// isInvestor
    pub is_investor: bool,
    /// isPremium
    pub is_premium: bool,
    /// isTippable
    pub is_tippable: bool,
    /// isPrivate
    pub is_private: bool,
    /// verified
    pub verified: bool,
    /// View filter: pro
    pub filter_pro: bool,
    /// View filter: verified
    pub filter_verified: bool,
    /// View filter: standard
    pub filter_standard: bool,
    /// View filter: nsfw
    pub filter_nsfw: bool,
    /// View filter: offensive
    pub filter_offensive: bool,
}

/// A crawled Dissenter user.
#[derive(Debug, Clone)]
pub struct CrawledUser {
    /// Username (from the probe phase).
    pub username: String,
    /// Author-id scraped from the home page.
    pub author_id: ObjectId,
    /// Display name.
    pub display_name: String,
    /// Biography.
    pub bio: String,
    /// Commenturl-ids listed on the home page, in page order.
    pub url_ids: Vec<ObjectId>,
    /// Hidden metadata (filled by the comment-page scrape; `None` for
    /// users with no comments).
    pub meta: Option<HiddenMeta>,
}

/// A crawled comment thread (URL record).
#[derive(Debug, Clone)]
pub struct CrawledUrl {
    /// Commenturl-id.
    pub id: ObjectId,
    /// The URL string.
    pub url: String,
    /// Page title.
    pub title: String,
    /// Page description.
    pub description: String,
    /// Thumbs up.
    pub upvotes: u32,
    /// Thumbs down.
    pub downvotes: u32,
    /// Total comment count displayed on the page (includes shadow
    /// content the anonymous crawl cannot see).
    pub declared_comment_count: usize,
}

/// Shadow-label classification inferred by the diff crawl.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowLabel {
    /// Visible anonymously.
    Standard,
    /// Appeared only with the NSFW filter enabled.
    Nsfw,
    /// Appeared only with the "offensive" filter enabled.
    Offensive,
    /// Appeared in both authenticated crawls but not anonymously.
    Both,
}

/// A crawled comment or reply.
#[derive(Debug, Clone)]
pub struct CrawledComment {
    /// Comment-id.
    pub id: ObjectId,
    /// Thread it belongs to.
    pub url_id: ObjectId,
    /// Author.
    pub author_id: ObjectId,
    /// Parent comment for replies.
    pub parent: Option<ObjectId>,
    /// Text.
    pub text: String,
    /// Creation epoch seconds (scraped `data-created`).
    pub created_at: u64,
    /// Inferred label.
    pub label: ShadowLabel,
}

/// Rendered YouTube state for one URL.
#[derive(Debug, Clone)]
pub struct CrawledYoutube {
    /// The page URL.
    pub url: String,
    /// "video" / "user" / "channel".
    pub kind: String,
    /// Renders?
    pub available: bool,
    /// Unavailability reason text, if gone.
    pub reason: Option<String>,
    /// Content owner, if active.
    pub owner: Option<String>,
    /// Comments disabled on YouTube itself?
    pub comments_disabled: bool,
}

/// Reddit match for one Dissenter username.
#[derive(Debug, Clone)]
pub struct RedditMatch {
    /// Username.
    pub username: String,
    /// Full comment count declared by the archive.
    pub total_comments: u64,
    /// Downloaded comment bodies.
    pub comments: Vec<String>,
}

/// A fetch that exhausted its retries (or met an open circuit breaker):
/// what was wanted, by which phase, and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// The phase that wanted the page.
    pub phase: Phase,
    /// The request target (path + query).
    pub target: String,
    /// The last failure observed before giving up.
    pub cause: String,
}

/// Per-phase coverage counters. Counted per **logical fetch** (one page
/// the crawl wants), not per wire attempt, so
/// `attempted == succeeded + dead_lettered` always holds and the gap
/// between "what the phase asked for" and "what it got" is explicit.
#[derive(Debug, Default)]
pub struct PhaseStats {
    /// Logical fetches started.
    pub attempted: AtomicU64,
    /// Logical fetches that delivered a response.
    pub succeeded: AtomicU64,
    /// Extra wire attempts spent retrying (not counted in `attempted`).
    pub retried: AtomicU64,
    /// Logical fetches abandoned to the dead-letter list.
    pub dead_lettered: AtomicU64,
}

impl PhaseStats {
    /// Record a logical fetch starting.
    pub fn add_attempted(&self) {
        self.attempted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a delivered response.
    pub fn add_succeeded(&self) {
        self.succeeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one retry attempt.
    pub fn add_retried(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an abandoned fetch.
    pub fn add_dead_lettered(&self) {
        self.dead_lettered.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-value copy for comparison and reporting.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            attempted: self.attempted.load(Ordering::Relaxed),
            succeeded: self.succeeded.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            dead_lettered: self.dead_lettered.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`PhaseStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Logical fetches started.
    pub attempted: u64,
    /// Logical fetches that delivered a response.
    pub succeeded: u64,
    /// Extra wire attempts spent retrying.
    pub retried: u64,
    /// Logical fetches abandoned.
    pub dead_lettered: u64,
}

/// Operational counters (the §4.3.1 hygiene evidence).
#[derive(Debug, Default)]
pub struct CrawlStats {
    /// HTTP requests issued (wire attempts, including retries).
    pub requests: AtomicU64,
    /// Requests that failed and were retried.
    pub retries: AtomicU64,
    /// Logical fetches that never succeeded.
    pub failures: AtomicU64,
    /// Rate-limit sleeps honored.
    pub rate_limit_sleeps: AtomicU64,
    /// Worker-closure panics caught by the parallel driver (each also
    /// counted as a failure).
    pub panics: AtomicU64,
    /// Coverage accounting per phase, indexed by [`Phase::index`].
    pub phases: [PhaseStats; 7],
}

impl CrawlStats {
    /// Record `n` issued requests.
    pub fn add_requests(&self, n: u64) {
        self.requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a retry.
    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a permanent failure.
    pub fn add_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a rate-limit sleep.
    pub fn add_rate_limit_sleep(&self) {
        self.rate_limit_sleeps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a caught worker panic (also a failure).
    pub fn add_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        self.add_failure();
    }

    /// The counters for one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseStats {
        &self.phases[phase.index()]
    }

    /// Snapshots of every phase's coverage, in pipeline order.
    pub fn phase_snapshots(&self) -> [(Phase, PhaseSnapshot); 7] {
        Phase::ALL.map(|p| (p, self.phase(p).snapshot()))
    }
}

/// Everything the crawl produced.
#[derive(Debug, Default)]
pub struct CrawlStore {
    /// Enumerated Gab accounts, ascending by ID.
    pub gab_accounts: Vec<GabAccount>,
    /// Usernames confirmed to have Dissenter accounts.
    pub dissenter_usernames: Vec<String>,
    /// Crawled users by username.
    pub users: HashMap<String, CrawledUser>,
    /// Crawled threads by commenturl-id.
    pub urls: HashMap<ObjectId, CrawledUrl>,
    /// Crawled comments by comment-id.
    pub comments: HashMap<ObjectId, CrawledComment>,
    /// Validation outcomes from the shadow crawl: `(sampled, confirmed)`.
    pub shadow_validation: (usize, usize),
    /// Rendered YouTube states by URL.
    pub youtube: Vec<CrawledYoutube>,
    /// Follower edges among Dissenter users, as `(follower, followed)`
    /// author-id pairs.
    pub follow_edges: Vec<(ObjectId, ObjectId)>,
    /// Reddit matches by username.
    pub reddit: HashMap<String, RedditMatch>,
    /// Operational counters.
    pub stats: CrawlStats,
    /// Fetches abandoned after exhausting their retries, with enough
    /// context to audit (or re-drive) each one.
    dead_letters: Mutex<Vec<DeadLetter>>,
}

impl CrawlStore {
    /// Record an abandoned fetch.
    pub fn push_dead_letter(&self, letter: DeadLetter) {
        self.dead_letters.lock().push(letter);
    }

    /// All dead letters, sorted by (phase, target) for stable comparison
    /// across runs regardless of worker interleaving.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        let mut v = self.dead_letters.lock().clone();
        v.sort_by(|a, b| (a.phase, a.target.as_str()).cmp(&(b.phase, b.target.as_str())));
        v
    }

    /// Comments labeled NSFW (including dual-labeled).
    pub fn nsfw_comments(&self) -> impl Iterator<Item = &CrawledComment> {
        self.comments
            .values()
            .filter(|c| matches!(c.label, ShadowLabel::Nsfw | ShadowLabel::Both))
    }

    /// Comments labeled "offensive" (including dual-labeled).
    pub fn offensive_comments(&self) -> impl Iterator<Item = &CrawledComment> {
        self.comments
            .values()
            .filter(|c| matches!(c.label, ShadowLabel::Offensive | ShadowLabel::Both))
    }

    /// Comments per author. Each author's comments come back in comment-id
    /// order: `self.comments` is a hash map, so without the sort the vec
    /// order (and any f64 aggregation a consumer does over it) would vary
    /// run to run and break the byte-identical export contract.
    pub fn comments_by_author(&self) -> HashMap<ObjectId, Vec<&CrawledComment>> {
        let mut m: HashMap<ObjectId, Vec<&CrawledComment>> = HashMap::new();
        for c in self.comments.values() {
            m.entry(c.author_id).or_default().push(c);
        }
        for v in m.values_mut() {
            v.sort_by_key(|c| c.id);
        }
        m
    }

    /// Audit the crawl's books. Checks the per-phase coverage invariant
    /// (`attempted == succeeded + dead_lettered`), that the dead-letter
    /// list agrees with the counters, that aggregate retry/failure
    /// counters reconcile with the per-phase ones, and comment→URL
    /// referential integrity. Returns the first violation found.
    pub fn check_accounting(&self) -> Result<(), String> {
        let mut dead_total = 0u64;
        let mut retried_total = 0u64;
        for (phase, s) in self.stats.phase_snapshots() {
            if s.attempted != s.succeeded + s.dead_lettered {
                return Err(format!(
                    "phase {}: attempted {} != succeeded {} + dead_lettered {}",
                    phase.name(),
                    s.attempted,
                    s.succeeded,
                    s.dead_lettered
                ));
            }
            dead_total += s.dead_lettered;
            retried_total += s.retried;
        }
        let letters = self.dead_letters.lock().len() as u64;
        if dead_total != letters {
            return Err(format!(
                "dead_lettered counters sum to {dead_total} but {letters} dead letters recorded"
            ));
        }
        let retries = self.stats.retries.load(Ordering::Relaxed);
        if retries != retried_total {
            return Err(format!(
                "aggregate retries {retries} != per-phase retried sum {retried_total}"
            ));
        }
        let failures = self.stats.failures.load(Ordering::Relaxed);
        let panics = self.stats.panics.load(Ordering::Relaxed);
        if failures != dead_total + panics {
            return Err(format!(
                "failures {failures} != dead_lettered {dead_total} + panics {panics}"
            ));
        }
        for c in self.comments.values() {
            if !self.urls.contains_key(&c.url_id) {
                return Err(format!("comment {} references uncrawled url {}", c.id, c.url_id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::{EntityKind, ObjectIdGen};

    fn comment(label: ShadowLabel, g: &mut ObjectIdGen) -> CrawledComment {
        CrawledComment {
            id: g.next(10),
            url_id: g.next(1),
            author_id: g.next(2),
            parent: None,
            text: "t".into(),
            created_at: 10,
            label,
        }
    }

    #[test]
    fn shadow_filters() {
        let mut store = CrawlStore::default();
        let mut g = ObjectIdGen::new(EntityKind::Comment, 0);
        for label in [ShadowLabel::Standard, ShadowLabel::Nsfw, ShadowLabel::Offensive, ShadowLabel::Both] {
            let c = comment(label, &mut g);
            store.comments.insert(c.id, c);
        }
        assert_eq!(store.nsfw_comments().count(), 2);
        assert_eq!(store.offensive_comments().count(), 2);
    }

    #[test]
    fn stats_counters() {
        let s = CrawlStats::default();
        s.add_requests(5);
        s.add_retry();
        s.add_failure();
        s.add_rate_limit_sleep();
        assert_eq!(s.requests.load(Ordering::Relaxed), 5);
        assert_eq!(s.retries.load(Ordering::Relaxed), 1);
        assert_eq!(s.failures.load(Ordering::Relaxed), 1);
        assert_eq!(s.rate_limit_sleeps.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn phase_stats_and_dead_letters() {
        let store = CrawlStore::default();
        let p = store.stats.phase(Phase::Probe);
        p.add_attempted();
        p.add_succeeded();
        p.add_attempted();
        p.add_retried();
        p.add_dead_lettered();
        let snap = p.snapshot();
        assert_eq!(snap.attempted, 2);
        assert_eq!(snap.attempted, snap.succeeded + snap.dead_lettered);
        assert_eq!(snap.retried, 1);
        // Other phases untouched.
        assert_eq!(store.stats.phase(Phase::Reddit).snapshot(), PhaseSnapshot::default());

        store.push_dead_letter(DeadLetter {
            phase: Phase::Probe,
            target: "/user/b".into(),
            cause: "request failed".into(),
        });
        store.push_dead_letter(DeadLetter {
            phase: Phase::GabEnum,
            target: "/api/v1/accounts/9".into(),
            cause: "http status 503".into(),
        });
        let letters = store.dead_letters();
        assert_eq!(letters.len(), 2);
        assert_eq!(letters[0].phase, Phase::GabEnum, "sorted by phase order");
        assert_eq!(letters[1].target, "/user/b");
    }

    #[test]
    fn accounting_audit_catches_cooked_books() {
        let store = CrawlStore::default();
        assert_eq!(store.check_accounting(), Ok(()));

        // A balanced ledger: 2 attempted = 1 succeeded + 1 dead-lettered,
        // with the matching dead letter and aggregate failure.
        let p = store.stats.phase(Phase::Spider);
        p.add_attempted();
        p.add_succeeded();
        p.add_attempted();
        p.add_dead_lettered();
        store.stats.add_failure();
        store.push_dead_letter(DeadLetter {
            phase: Phase::Spider,
            target: "/comments/x".into(),
            cause: "request failed".into(),
        });
        assert_eq!(store.check_accounting(), Ok(()));

        // An extra "succeeded" without its "attempted" breaks the books.
        p.add_succeeded();
        let err = store.check_accounting().unwrap_err();
        assert!(err.contains("spider"), "{err}");
    }

    #[test]
    fn accounting_audit_catches_orphan_comments() {
        let mut store = CrawlStore::default();
        let mut g = ObjectIdGen::new(EntityKind::Comment, 7);
        let c = comment(ShadowLabel::Standard, &mut g);
        store.comments.insert(c.id, c);
        let err = store.check_accounting().unwrap_err();
        assert!(err.contains("uncrawled url"), "{err}");
    }

    #[test]
    fn comments_by_author_groups() {
        let mut store = CrawlStore::default();
        let mut g = ObjectIdGen::new(EntityKind::Comment, 1);
        let a = comment(ShadowLabel::Standard, &mut g);
        let mut b = comment(ShadowLabel::Standard, &mut g);
        b.author_id = a.author_id;
        store.comments.insert(a.id, a.clone());
        store.comments.insert(b.id, b);
        let by = store.comments_by_author();
        assert_eq!(by[&a.author_id].len(), 2);
    }
}
