//! Adversarial-traffic bench: every abuse profile driven concurrently
//! with a polite loadgen baseline against a hardened Dissenter front
//! (the `BENCH_PR8.json` artifact, produced in CI by
//! `scripts/bench_pr8.sh`). Phases:
//!
//! 1. **baseline** — the polite closed-loop load alone (warmed, cached
//!    regime): the no-abuse p99 the contested runs are gated against.
//! 2. **profiles** — one mixed run per [`bench::abusegen::Profile`]:
//!    hostile clients plus the same polite load, measured mid-abuse.
//! 3. **4TCT comparison** — greedy vs polite collectors on the
//!    rate-limited per-URL route under a penalty-enabled short-window
//!    limiter (arXiv:2307.03556's polite-collector argument): same wall
//!    budget, the polite one must acquire more pages.
//!
//! Self-validating gates (exit 1 on any failure):
//! * polite success rate ≥ 99% and p99 ≤ 3× the no-abuse baseline
//!   (with a 10 ms jitter floor) under **every** profile;
//! * every abuse segment's books reconcile exactly
//!   (offered == served + 304 + 429 + rejected + dropped + errors);
//! * zero shadow-visibility leaks and zero ETag↔body incoherence;
//! * the slowloris phase is actually defended: hostile conns closed and
//!   counted under `conn.read_timeouts` / `conn.write_timeouts`;
//! * the limiter's books reconcile exactly against client-observed
//!   outcomes on the rate-limited route, penalized lockouts included;
//! * the polite collector out-collects the greedy one;
//! * server-process peak RSS stays under the ceiling.
//!
//! ```text
//! abusegen [--out FILE] [--conns N] [--threads N] [--requests N]
//!          [--budget-ms N] [--rss-ceiling-mb N] [--scale <f64>] [--seed N]
//! ```

use bench::abusegen::{
    greedy_collect, polite_collect, run_mixed, shadow_probe, AbuseConfig, AbuseCounts,
    AbuseTargets, CollectorOutcome, MixedOutcome, Profile,
};
use bench::loadgen::{run, LoadConfig, LoadSummary, Mode};
use httpnet::ServerConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};
use synth::config::Scale;
use synth::WorldConfig;
use webfront::dissenter::DissenterFront;

/// Short, penalty-enabled per-URL window so the collectors' comparison
/// resolves in seconds instead of the production 10-req/min.
const URL_LIMIT: u32 = 3;
const URL_WINDOW_SECS: u64 = 1;
const URL_PENALTY_SECS: u64 = 3;

fn usage() -> ! {
    eprintln!(
        "usage: abusegen [--out FILE] [--conns N] [--threads N] [--requests N] \
         [--budget-ms N] [--rss-ceiling-mb N] [--scale <f64>] [--seed N]"
    );
    std::process::exit(2);
}

/// Read a `kB` field (`VmRSS`, `VmHWM`, ...) from `/proc/self/status`.
fn proc_status_kb(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            if let Some(kb) = rest.split_whitespace().next() {
                return kb.parse().unwrap_or(0);
            }
        }
    }
    0
}

fn counts_json(c: &AbuseCounts) -> jsonlite::Value {
    jsonlite::Value::object()
        .with("offered", c.offered)
        .with("served", c.served)
        .with("not_modified", c.not_modified)
        .with("denied", c.denied)
        .with("penalized", c.penalized)
        .with("rejected", c.rejected)
        .with("dropped", c.dropped)
        .with("errors", c.errors)
        .with("leaks", c.leaks)
        .with("incoherent", c.incoherent)
        .with("closed_conns", c.closed_conns)
        .with("reconciles", c.reconciles())
}

fn summary_json(s: &LoadSummary) -> jsonlite::Value {
    jsonlite::Value::object()
        .with("requests", s.requests)
        .with("failures", s.failures)
        .with("wall_ms", s.wall_ms)
        .with("req_per_sec", s.req_per_sec)
        .with("p50_us", s.p50_us)
        .with("p99_us", s.p99_us)
        .with("not_modified", s.not_modified)
}

fn collector_json(c: &CollectorOutcome) -> jsonlite::Value {
    jsonlite::Value::object()
        .with("acquired", c.acquired)
        .with("sleeps", c.sleeps)
        .with("counts", counts_json(&c.counts))
}

fn main() {
    let mut out_path = std::path::PathBuf::from("BENCH_PR8.json");
    let mut conns = 4usize;
    let mut threads = 4usize;
    let mut requests = 150usize;
    let mut budget_ms = 3200u64;
    let mut rss_ceiling_mb = 512.0f64;
    let mut scale = 0.002f64;
    let mut seed = 0x0005_EEDA_B05E_u64;

    let mut args = std::env::args().skip(1);
    fn next_arg(args: &mut impl Iterator<Item = String>) -> String {
        args.next().unwrap_or_else(|| usage())
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = next_arg(&mut args).into(),
            "--conns" => conns = next_arg(&mut args).parse_ok("--conns"),
            "--threads" => threads = next_arg(&mut args).parse_ok("--threads"),
            "--requests" => requests = next_arg(&mut args).parse_ok("--requests"),
            "--budget-ms" => budget_ms = next_arg(&mut args).parse_ok("--budget-ms"),
            "--rss-ceiling-mb" => {
                rss_ceiling_mb = next_arg(&mut args).parse_ok("--rss-ceiling-mb")
            }
            "--scale" => scale = next_arg(&mut args).parse_ok("--scale"),
            "--seed" => seed = next_arg(&mut args).parse_ok("--seed"),
            _ => usage(),
        }
    }

    // ---- Hardened services over a seeded world ------------------------
    let cfg = WorldConfig { seed, scale: Scale::Custom(scale), ..WorldConfig::small() };
    let (world, _) = synth::generate(&cfg);
    let world = Arc::new(world);
    let registry = obs::Registry::new();
    let stamp = world.content_hash();
    let front_cache = webfront::cache::FrontCache::with_registry(
        stamp,
        httpnet::CacheConfig::default(),
        &registry,
    );
    let limiter = platform::RateLimiter::new(URL_LIMIT, URL_WINDOW_SECS)
        .with_penalty(URL_PENALTY_SECS);
    let dissenter =
        Arc::new(DissenterFront::with_parts(world.clone(), front_cache, limiter));
    let mut fronts = webfront::SimFronts::new(world.clone());
    fronts.dissenter = dissenter.clone();
    let hardened = ServerConfig {
        workers: 4,
        queue: 256,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_millis(400),
        header_read_timeout: Duration::from_millis(300),
        metrics: Some(registry.clone()),
        ..ServerConfig::default()
    };
    let services = webfront::SimServices::start_with(fronts, hardened)
        .expect("failed to start simulated services");
    let addr = services.dissenter.addr();

    let targets = AbuseTargets::discover(&world, 3)
        .expect("world has no dissenter users/urls; grow --scale");
    let shadow = shadow_probe(addr, &world);
    if shadow.is_none() {
        eprintln!("abusegen: note — no shadow-labeled comment at this scale; validator_replay probes only the anonymous path");
    }
    let mut names: Vec<String> =
        world.dissenter_users().map(|i| world.user(i).username.clone()).collect();
    names.sort_unstable();
    let polite_targets: Vec<String> =
        names.iter().take(16).map(|n| format!("/user/{n}")).collect();
    assert!(!polite_targets.is_empty(), "world has no dissenter users; grow --scale");

    // ---- Phase 1: no-abuse polite baseline ----------------------------
    let polite_shape = || LoadConfig {
        threads,
        requests_per_thread: requests,
        warmup_per_thread: 30,
        ..LoadConfig::default()
    };
    let baseline = run(addr, &polite_targets, &polite_shape(), Mode::Cached);
    println!(
        "abusegen: baseline {:.0} req/s (p99 {} us, {} failures)",
        baseline.req_per_sec, baseline.p99_us, baseline.failures
    );

    // ---- Phase 2: one mixed run per profile ---------------------------
    let abuse_cfg = AbuseConfig { conns, seed, ..AbuseConfig::default() };
    let hold = Duration::from_millis(2500);
    let mut phases: Vec<(Profile, MixedOutcome)> = Vec::new();
    for profile in Profile::ALL {
        let rss_before_mb = proc_status_kb("VmRSS") as f64 / 1024.0;
        let outcome = run_mixed(
            addr,
            profile,
            &targets,
            shadow.as_ref(),
            &abuse_cfg,
            &polite_targets,
            &polite_shape(),
            hold,
        );
        println!(
            "abusegen: {} — polite p99 {} us ({} failures), abuse {:?} (rss {:.1} MB)",
            profile.name(),
            outcome.polite.p99_us,
            outcome.polite.failures,
            outcome.abuse,
            rss_before_mb
        );
        phases.push((profile, outcome));
    }

    // ---- Phase 3: 4TCT polite-vs-greedy collector comparison ----------
    let budget = Duration::from_millis(budget_ms);
    let greedy = greedy_collect(addr, &targets.cuids, Instant::now() + budget);
    // Let every penalty lockout expire so the polite run starts clean.
    std::thread::sleep(Duration::from_millis(URL_PENALTY_SECS * 1000 + 600));
    let polite_c = polite_collect(addr, &targets.cuids, Instant::now() + budget);
    println!(
        "abusegen: 4tct — polite acquired {} ({} reset sleeps) vs greedy {} ({} penalized denies)",
        polite_c.acquired, polite_c.sleeps, greedy.acquired, greedy.counts.penalized
    );

    let rss_peak_mb = proc_status_kb("VmHWM") as f64 / 1024.0;
    let snap = registry.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let rate_stats = dissenter.rate_stats();

    // Every segment that touched the rate-limited route, for the
    // limiter-book reconciliation.
    let mut url_books = AbuseCounts::default();
    for (profile, outcome) in &phases {
        if *profile == Profile::GreedyScraper {
            url_books.merge(&outcome.abuse);
        }
    }
    url_books.merge(&greedy.counts);
    url_books.merge(&polite_c.counts);

    let report = jsonlite::Value::object()
        .with("scale", scale)
        .with("abuse_conns", conns)
        .with(
            "limiter",
            jsonlite::Value::object()
                .with("limit", URL_LIMIT)
                .with("window_secs", URL_WINDOW_SECS)
                .with("penalty_secs", URL_PENALTY_SECS)
                .with("allowed", rate_stats.allowed)
                .with("denied", rate_stats.denied)
                .with("penalized", rate_stats.penalized),
        )
        .with("baseline", summary_json(&baseline))
        .with("profiles", {
            let mut obj = jsonlite::Value::object();
            for (profile, outcome) in &phases {
                obj = obj.with(
                    profile.name(),
                    jsonlite::Value::object()
                        .with("polite", summary_json(&outcome.polite))
                        .with("abuse", counts_json(&outcome.abuse)),
                );
            }
            obj
        })
        .with(
            "four_tct",
            jsonlite::Value::object()
                .with("budget_ms", budget_ms)
                .with("polite", collector_json(&polite_c))
                .with("greedy", collector_json(&greedy)),
        )
        .with(
            "server",
            jsonlite::Value::object()
                .with("requests_served", services.dissenter.requests_served())
                .with("read_timeouts", counter("conn.read_timeouts"))
                .with("write_timeouts", counter("conn.write_timeouts"))
                .with("oversize", counter("conn.oversize"))
                .with("cache_hits", counter("cache.hits"))
                .with("cache_misses", counter("cache.misses"))
                .with("rss_peak_mb", rss_peak_mb)
                .with("rss_ceiling_mb", rss_ceiling_mb),
        );
    std::fs::write(&out_path, jsonlite::to_string_pretty(&report))
        .expect("failed to write bench artifact");
    println!("abusegen: wrote {}", out_path.display());

    // ---- Self-validation ----------------------------------------------
    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("abusegen: FAIL — {msg}");
        ok = false;
    };

    // Polite envelope: success ≥ 99% and p99 ≤ 3× baseline (10 ms floor
    // against microsecond-scale scheduler jitter) under every profile.
    let p99_gate = (baseline.p99_us as f64 * 3.0).max(10_000.0);
    if baseline.failures > 0 {
        fail(format!("{} baseline requests failed", baseline.failures));
    }
    for (profile, outcome) in &phases {
        let p = &outcome.polite;
        let total = p.requests + p.failures;
        if total == 0 || (p.failures as f64) > total as f64 * 0.01 {
            fail(format!(
                "{}: polite success rate below 99% ({} failures of {total})",
                profile.name(),
                p.failures
            ));
        }
        if (p.p99_us as f64) > p99_gate {
            fail(format!(
                "{}: polite p99 {} us exceeds gate {:.0} us (3x baseline {} us)",
                profile.name(),
                p.p99_us,
                p99_gate,
                baseline.p99_us
            ));
        }
        if !outcome.abuse.reconciles() {
            fail(format!("{}: abuse books do not reconcile: {:?}", profile.name(), outcome.abuse));
        }
        if outcome.abuse.leaks > 0 {
            fail(format!("{}: {} shadow-visibility leaks", profile.name(), outcome.abuse.leaks));
        }
        if outcome.abuse.incoherent > 0 {
            fail(format!(
                "{}: {} ETag/body coherence violations",
                profile.name(),
                outcome.abuse.incoherent
            ));
        }
    }

    // The slowloris phase must have been defended, and every hostile
    // close accounted by a defense counter.
    let slowloris = &phases.iter().find(|(p, _)| *p == Profile::Slowloris).expect("ran").1.abuse;
    if slowloris.dropped == 0 {
        fail("slowloris: no hostile connection was ever closed".to_owned());
    }
    if slowloris.errors > 0 {
        fail(format!(
            "slowloris: {} tricklers outlived the give-up budget unclosed",
            slowloris.errors
        ));
    }
    if counter("conn.read_timeouts") == 0 {
        fail("conn.read_timeouts never fired (header budget defense is dead)".to_owned());
    }
    if counter("conn.write_timeouts") == 0 {
        fail("conn.write_timeouts never fired (write deadline defense is dead)".to_owned());
    }
    let closed: u64 = phases.iter().map(|(_, o)| o.abuse.closed_conns).sum::<u64>()
        + greedy.counts.closed_conns
        + polite_c.counts.closed_conns;
    let defense_closes = counter("conn.read_timeouts")
        + counter("conn.write_timeouts")
        + counter("conn.oversize");
    // Keep-alive retirements at the per-connection cap are graceful
    // closes, not defense closes; only the slowloris phase's closes are
    // all defense-attributable.
    if defense_closes < slowloris.closed_conns {
        fail(format!(
            "server counted {defense_closes} defense closes but slowloris clients observed {} \
             (of {closed} hostile closes total)",
            slowloris.closed_conns
        ));
    }

    // Limiter books must reconcile exactly against client-observed
    // outcomes on the rate-limited route.
    let client_allowed = url_books.served + url_books.not_modified + url_books.rejected;
    if rate_stats.allowed != client_allowed {
        fail(format!(
            "limiter allowed {} != client-observed successes {client_allowed}",
            rate_stats.allowed
        ));
    }
    if rate_stats.denied != url_books.denied {
        fail(format!(
            "limiter denied {} != client-observed 429s {}",
            rate_stats.denied, url_books.denied
        ));
    }
    if rate_stats.penalized != url_books.penalized {
        fail(format!(
            "limiter penalized {} != client-observed penalized 429s {}",
            rate_stats.penalized, url_books.penalized
        ));
    }
    if url_books.penalized == 0 {
        fail("no penalized lockout was ever observed (the greedy swarm never bit)".to_owned());
    }

    // 4TCT: the polite collector must out-collect the greedy one.
    if polite_c.acquired <= greedy.acquired {
        fail(format!(
            "polite collector acquired {} <= greedy {}",
            polite_c.acquired, greedy.acquired
        ));
    }
    if polite_c.sleeps == 0 {
        fail("polite collector never slept on a reset (limiter never bound)".to_owned());
    }

    if rss_peak_mb > rss_ceiling_mb {
        fail(format!(
            "peak RSS {rss_peak_mb:.1} MB exceeds {rss_ceiling_mb:.1} MB ceiling"
        ));
    }

    if !ok {
        std::process::exit(1);
    }
}

/// Tiny arg-parsing helper: parse or die with the flag name.
trait ParseOk {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T;
}

impl ParseOk for String {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T {
        self.parse().unwrap_or_else(|_| {
            eprintln!("abusegen: invalid value {self:?} for {name}");
            std::process::exit(2);
        })
    }
}
