//! URL parsing and the §4.2.1 over-counting census.
//!
//! Dissenter keys threads on *exact* URL strings, so `http://` vs
//! `https://`, trailing slashes, and GET-parameter permutations all mint
//! separate commenturl-ids. The paper quantifies each anomaly; this module
//! reproduces that accounting.

use std::collections::{HashMap, HashSet};

/// A minimally-parsed URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedUrl {
    /// Scheme (lowercased), e.g. `https`, `http`, `file`, `chrome`.
    pub scheme: String,
    /// Host, lowercased, `www.` stripped (empty for non-network schemes).
    pub host: String,
    /// Path (including leading slash; empty if none).
    pub path: String,
    /// Query string without the `?` (empty if none).
    pub query: String,
}

impl ParsedUrl {
    /// Parse; returns `None` for strings without a `scheme:` prefix.
    pub fn parse(url: &str) -> Option<ParsedUrl> {
        let (scheme, rest) = url.split_once(':')?;
        if scheme.is_empty() || !scheme.chars().all(|c| c.is_ascii_alphanumeric() || c == '+') {
            return None;
        }
        let scheme = scheme.to_ascii_lowercase();
        let rest = rest.strip_prefix("//").unwrap_or(rest);
        let (host_path, query) = match rest.split_once('?') {
            Some((hp, q)) => (hp, q.to_owned()),
            None => (rest, String::new()),
        };
        let (host, path) = match host_path.find('/') {
            Some(i) => (&host_path[..i], host_path[i..].to_owned()),
            None => (host_path, String::new()),
        };
        let host = host.to_ascii_lowercase();
        let host = host.strip_prefix("www.").unwrap_or(&host).to_owned();
        Some(ParsedUrl { scheme, host, path, query })
    }

    /// The registrable domain: last two labels, or last three when the
    /// second-to-last is a common second-level registry label (`co.uk`,
    /// `com.au`, …).
    pub fn domain(&self) -> String {
        let labels: Vec<&str> = self.host.split('.').filter(|l| !l.is_empty()).collect();
        if labels.len() <= 2 {
            return self.host.clone();
        }
        let second = labels[labels.len() - 2];
        let take = if matches!(second, "co" | "com" | "org" | "net" | "ac" | "gov") { 3 } else { 2 };
        labels[labels.len().saturating_sub(take)..].join(".")
    }

    /// The top-level domain (last label), empty for non-network schemes.
    pub fn tld(&self) -> String {
        self.host.rsplit('.').next().unwrap_or("").to_owned()
    }
}

/// §4.2.1 anomaly counts over a URL population.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UrlCensus {
    /// Total URLs examined.
    pub total: usize,
    /// Count by scheme.
    pub by_scheme: Vec<(String, usize)>,
    /// URL pairs differing only in the scheme (http/https).
    pub protocol_dup_pairs: usize,
    /// URL pairs differing only by a trailing slash.
    pub trailing_slash_pairs: usize,
    /// URLs carrying more than one GET parameter (the over-counting
    /// mechanism: only the first key-value pair usually determines
    /// content).
    pub multi_param_urls: usize,
    /// `file:` URLs (local-filesystem leaks).
    pub file_urls: usize,
    /// Browser-internal URLs (`chrome:`, `about:`, …).
    pub browser_urls: usize,
}

/// Run the census.
pub fn census<'a>(urls: impl Iterator<Item = &'a str>) -> UrlCensus {
    let all: Vec<&str> = urls.collect();
    let mut by_scheme: HashMap<String, usize> = HashMap::new();
    let mut c = UrlCensus { total: all.len(), ..Default::default() };
    let set: HashSet<&str> = all.iter().copied().collect();
    let mut protocol_pairs = 0usize;
    let mut slash_pairs = 0usize;
    for &u in &all {
        let Some(p) = ParsedUrl::parse(u) else { continue };
        *by_scheme.entry(p.scheme.clone()).or_insert(0) += 1;
        match p.scheme.as_str() {
            "file" => c.file_urls += 1,
            "chrome" | "about" | "edge" | "brave" => c.browser_urls += 1,
            _ => {}
        }
        if p.query.contains('&') {
            c.multi_param_urls += 1;
        }
        // Count each pair once from the http side.
        if let Some(rest) = u.strip_prefix("http://") {
            if set.contains(format!("https://{rest}").as_str()) {
                protocol_pairs += 1;
            }
        }
        // Count each slash pair once from the slashless side.
        if !u.ends_with('/') && set.contains(format!("{u}/").as_str()) {
            slash_pairs += 1;
        }
    }
    c.protocol_dup_pairs = protocol_pairs;
    c.trailing_slash_pairs = slash_pairs;
    let mut schemes: Vec<(String, usize)> = by_scheme.into_iter().collect();
    schemes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    c.by_scheme = schemes;
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basics() {
        let p = ParsedUrl::parse("https://www.Example.COM/a/b?x=1&y=2").unwrap();
        assert_eq!(p.scheme, "https");
        assert_eq!(p.host, "example.com");
        assert_eq!(p.path, "/a/b");
        assert_eq!(p.query, "x=1&y=2");
        assert_eq!(p.domain(), "example.com");
        assert_eq!(p.tld(), "com");
    }

    #[test]
    fn parse_special_schemes() {
        let f = ParsedUrl::parse("file:///C:/Users/x/doc.pdf").unwrap();
        assert_eq!(f.scheme, "file");
        assert_eq!(f.host, "");
        let c = ParsedUrl::parse("chrome://startpage/").unwrap();
        assert_eq!(c.scheme, "chrome");
        assert_eq!(c.host, "startpage");
    }

    #[test]
    fn parse_rejects_schemeless() {
        assert!(ParsedUrl::parse("no-scheme-here").is_none());
        assert!(ParsedUrl::parse("").is_none());
    }

    #[test]
    fn co_uk_domains() {
        let p = ParsedUrl::parse("https://www.dailymail.co.uk/news/article-1.html").unwrap();
        assert_eq!(p.domain(), "dailymail.co.uk");
        assert_eq!(p.tld(), "uk");
        let b = ParsedUrl::parse("https://news.bbc.co.uk/x").unwrap();
        assert_eq!(b.domain(), "bbc.co.uk");
    }

    #[test]
    fn subdomains_collapse() {
        let p = ParsedUrl::parse("https://m.youtube.com/watch?v=1").unwrap();
        assert_eq!(p.domain(), "youtube.com");
    }

    #[test]
    fn census_counts_anomalies() {
        let urls = [
            "https://a.example/x",
            "http://a.example/x", // protocol pair
            "https://b.example/y",
            "https://b.example/y/", // slash pair
            "https://c.example/z?a=1&b=2&c=3",
            "file:///C:/doc.txt",
            "chrome://startpage/",
        ];
        let c = census(urls.iter().copied());
        assert_eq!(c.total, 7);
        assert_eq!(c.protocol_dup_pairs, 1);
        assert_eq!(c.trailing_slash_pairs, 1);
        assert_eq!(c.multi_param_urls, 1);
        assert_eq!(c.file_urls, 1);
        assert_eq!(c.browser_urls, 1);
        let https = c.by_scheme.iter().find(|(s, _)| s == "https").unwrap().1;
        assert_eq!(https, 4);
    }

    #[test]
    fn census_empty() {
        let c = census(std::iter::empty());
        assert_eq!(c.total, 0);
        assert!(c.by_scheme.is_empty());
    }
}

#[cfg(test)]
mod scheme_case_tests {
    use super::*;

    #[test]
    fn uppercase_scheme_and_host_normalize() {
        let p = ParsedUrl::parse("HTTPS://WWW.YouTube.COM/Watch?V=1").unwrap();
        assert_eq!(p.scheme, "https");
        assert_eq!(p.host, "youtube.com");
        // Path case is preserved (URLs are case-sensitive past the host).
        assert_eq!(p.path, "/Watch");
    }

    #[test]
    fn census_counts_mixed_case_https() {
        let urls = ["HTTPS://a.example/x", "https://b.example/y"];
        let c = census(urls.iter().copied());
        let https = c.by_scheme.iter().find(|(s, _)| s == "https").unwrap().1;
        assert_eq!(https, 2);
    }
}
