//! The worker-matrix harness: one fixed-seed study per worker count, and
//! every deterministic artifact — the rendered report (run statistics
//! excluded, they are wall-clock) and every exported CSV — must be
//! **byte-identical** across the whole matrix.
//!
//! The matrix defaults to workers ∈ {1, 2, 8}; CI overrides it via
//! `WORKER_MATRIX` (comma- or space-separated counts, e.g.
//! `WORKER_MATRIX=1` and `WORKER_MATRIX=8` on separate jobs, whose
//! printed fingerprints must then agree across jobs).

use dissenter_repro::analysis::export::export_csv;
use dissenter_repro::dissenter_core::{render, run_study, Study};
use dissenter_repro::synth::config::Scale;
use std::collections::BTreeMap;
use std::path::Path;

fn matrix() -> Vec<usize> {
    match std::env::var("WORKER_MATRIX") {
        Ok(v) => {
            let m: Vec<usize> = v
                .split(|c: char| c == ',' || c.is_whitespace())
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().expect("WORKER_MATRIX entries are worker counts"))
                .collect();
            assert!(!m.is_empty(), "WORKER_MATRIX set but empty");
            m
        }
        Err(_) => vec![1, 2, 8],
    }
}

fn study_at(workers: usize) -> Study {
    let cfg = Study::builder()
        .scale(Scale::Custom(0.002))
        .svm_corpus(400)
        .workers(workers)
        .build()
        .expect("matrix config is valid");
    run_study(&cfg)
}

/// FNV-1a fingerprint, printed so split CI jobs can be cross-checked.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn csv_bytes(study: &Study, dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let written = export_csv(&study.report, dir).expect("export CSVs");
    assert!(!written.is_empty(), "export produced no files");
    written
        .into_iter()
        .map(|name| {
            let bytes = std::fs::read(dir.join(&name)).expect("read exported CSV");
            (name, bytes)
        })
        .collect()
}

#[test]
fn report_and_csvs_byte_identical_across_worker_counts() {
    let matrix = matrix();
    let mut baseline: Option<(usize, String, BTreeMap<String, Vec<u8>>)> = None;

    for &workers in &matrix {
        let study = study_at(workers);
        // Report plus the counter-derived run-stats subset: shard
        // geometry is worker-invariant, so even the shard job/item
        // accounting must agree across the matrix.
        let rendered =
            [render::deterministic(&study), render::runstats_deterministic(&study)].join("\n");
        let dir = std::env::temp_dir().join(format!(
            "dissenter_worker_matrix_{}_{workers}",
            std::process::id()
        ));
        let csvs = csv_bytes(&study, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "workers={workers}: report fnv1a64={:016x}, {} csv files",
            fnv1a64(rendered.as_bytes()),
            csvs.len()
        );

        match &baseline {
            None => baseline = Some((workers, rendered, csvs)),
            Some((base_workers, base_render, base_csvs)) => {
                assert_eq!(
                    base_render, &rendered,
                    "rendered report diverged between workers={base_workers} and workers={workers}"
                );
                assert_eq!(
                    base_csvs.keys().collect::<Vec<_>>(),
                    csvs.keys().collect::<Vec<_>>(),
                    "exported file sets differ at workers={workers}"
                );
                for (name, bytes) in base_csvs {
                    assert_eq!(
                        bytes, &csvs[name],
                        "{name} diverged between workers={base_workers} and workers={workers}"
                    );
                }
            }
        }
    }

    // A study ran and produced real artifacts — not vacuously identical.
    let (_, rendered, csvs) = baseline.expect("matrix is non-empty");
    assert!(rendered.contains("== Overview"), "report rendered");
    assert!(rendered.contains("== §3.5.3: SVM classifier =="), "svm section present");
    assert!(csvs.len() >= 10, "every figure exported, got {}", csvs.len());
}
