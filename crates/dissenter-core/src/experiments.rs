//! The experiment index: one entry per paper artifact, mapping it to the
//! modules that implement it and the harness target that regenerates it.
//! `EXPERIMENTS.md` mirrors this table with measured results.

/// One reproducible artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Experiment {
    /// Stable id (also the `repro` subcommand).
    pub id: &'static str,
    /// The paper artifact.
    pub artifact: &'static str,
    /// What the paper reports.
    pub paper_result: &'static str,
    /// Implementing modules.
    pub modules: &'static str,
    /// Criterion bench target, when one exists.
    pub bench: Option<&'static str>,
}

/// The full index.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "overview",
        artifact: "§1/§4.1.1 headline statistics",
        paper_result: "101k users, 1.68M comments, 588k URLs; 47% active; 77% joined by Mar 2019; ~1,300 deleted-Gab commenters",
        modules: "synth::world, crawler::{gab_enum,probe,spider}, analysis::users",
        bench: Some("pipeline::stages/full_report_build"),
    },
    Experiment {
        id: "fig2",
        artifact: "Figure 2 — Gab IDs vs creation date",
        paper_result: "IDs generally monotone in time with two anomaly periods",
        modules: "ids::gabid, synth::world, crawler::gab_enum, analysis::users",
        bench: Some("network::crawl_ops/gab_account_fetch_parse + pipeline::artifacts/fig2_gab_growth"),
    },
    Experiment {
        id: "fig3",
        artifact: "Figure 3 — comments per active user CDF",
        paper_result: "~90% of comments from ~14% of active users",
        modules: "synth::world, analysis::users, stats::ecdf",
        bench: Some("pipeline::artifacts/fig3_activity_concentration"),
    },
    Experiment {
        id: "table1",
        artifact: "Table 1 — user flags & view filters (n=47,165)",
        paper_result: "2 admins, 8 banned, 0 moderators; nsfw filter 15.04%, offensive 7.33%",
        modules: "platform::model, crawler::spider (hidden metadata), analysis::users",
        bench: None,
    },
    Experiment {
        id: "table2",
        artifact: "Table 2 — top TLDs and domains",
        paper_result: ".com 77.6%; youtube.com 20.75%, twitter.com 6.87%; fringe domains top median volume",
        modules: "synth::names, analysis::{url,domains}",
        bench: Some("pipeline::artifacts/table2_domain_tables"),
    },
    Experiment {
        id: "urls",
        artifact: "§4.2.1 — URL anomaly census",
        paper_result: "97% HTTPS; ~400 protocol dups; ~60 trailing-slash dups; 13 file:// URLs; chrome:// URLs",
        modules: "analysis::url",
        bench: None,
    },
    Experiment {
        id: "youtube",
        artifact: "§4.2.2 — YouTube breakdown",
        paper_result: "128k URLs: 125k video/2k channel/1k user; 109k active vs 16k unavailable; ~400 hate-policy removals; >10% comments disabled; Fox 2.4% vs CNN 0.6%",
        modules: "platform::youtube, crawler::youtube, analysis::content",
        bench: None,
    },
    Experiment {
        id: "languages",
        artifact: "§4.2.3 — comment languages",
        paper_result: "94% English, 2% German, fr/es/it < 0.5% each",
        modules: "textkit::langid, analysis::content",
        bench: Some("pipeline::artifacts/languages_table + substrates::textkit/langid_detect"),
    },
    Experiment {
        id: "fig4",
        artifact: "Figure 4 — NSFW/offensive vs all comments",
        paper_result: "offensive ≫ NSFW ≫ all; 80% of offensive score >0.95 LTR vs 25% NSFW, <20% all",
        modules: "crawler::shadow, classify::perspective, analysis::toxicity",
        bench: None,
    },
    Experiment {
        id: "fig5",
        artifact: "Figure 5 — toxicity vs net votes",
        paper_result: "zero-vote URLs most toxic; toxicity falls with |net votes|; negative > positive",
        modules: "synth::world (vote model), analysis::votes",
        bench: None,
    },
    Experiment {
        id: "fig6",
        artifact: "Table 3 + Figure 6 — Reddit overlap",
        paper_result: "56% username match; >1/3 Dissenter-only, ~20% Reddit-only",
        modules: "platform::reddit, crawler::reddit, analysis::report",
        bench: None,
    },
    Experiment {
        id: "fig7",
        artifact: "Figure 7 — four-community Perspective CDFs",
        paper_result: "Dissenter: 75% ≥0.5 LTR, 50% ≥0.75; ~20% ≥0.5 severe (2× Reddit); NYT lowest",
        modules: "synth::baselines, classify::perspective, analysis::toxicity",
        bench: Some("pipeline::artifacts/fig7_score_all_comments + classify_bench::scoring/perspective_1k_comments"),
    },
    Experiment {
        id: "fig8",
        artifact: "Figure 8 — scores by Allsides bias",
        paper_result: "severe peaks at Center, lowest at Right; attack-on-author monotone Left→Right; all pairs KS p<0.01",
        modules: "analysis::allsides, analysis::toxicity, stats::ks",
        bench: None,
    },
    Experiment {
        id: "fig9",
        artifact: "Figure 9 + §4.5.1 — social network & hateful core",
        paper_result: "power-law degrees; 15,702 isolated; popular ∩ prolific = ∅; core = 42 users, 6 components, giant 32",
        modules: "crawler::social, graph::*, analysis::social",
        bench: Some("pipeline::artifacts/fig9_social_analysis + substrates::graph/*"),
    },
    Experiment {
        id: "covert",
        artifact: "§6 extension — covert-channel detection",
        paper_result: "left as future work: fictitious-URL threads as hidden conversations",
        modules: "analysis::covert (non-web anchors, closed conversations, shadow-only threads)",
        bench: None,
    },
    Experiment {
        id: "svm",
        artifact: "§3.5.3 — SVM training & application",
        paper_result: "ADASYN + grid search + 5-fold CV → F1 = 0.87; class probabilities for all comments",
        modules: "synth::labeled, classify::{svm,adasyn,cv,metrics}",
        bench: Some("classify_bench::training/svm_train_1k_x3class + ablations::ablation_adasyn/*"),
    },
    Experiment {
        id: "runstats",
        artifact: "run statistics — stage timings, crawl coverage, scorer throughput",
        paper_result: "not a paper artifact: the observability report for the run itself",
        modules: "obs::*, dissenter_core::runstats, render::runstats",
        bench: Some("scripts/bench.sh → BENCH_PR2.json"),
    },
    Experiment {
        id: "simcheck",
        artifact: "simulation testing — differential oracles, invariants, shrink-to-replay",
        paper_result: "not a paper artifact: randomized end-to-end correctness evidence for the pipeline",
        modules: "simcheck::{scenario,oracle,shrink,replay}, invariant hooks across platform/crawler/stats/classify/obs",
        bench: Some("scripts/simcheck.sh (seeded scenario sweep)"),
    },
];

/// Look up an experiment by id.
pub fn by_id(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique() {
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENTS.len());
    }

    #[test]
    fn lookup_works() {
        assert!(by_id("fig7").is_some());
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn covers_every_table_and_figure() {
        // Tables 1–3 and Figures 2–9 of the paper must all be indexed.
        for needle in ["Table 1", "Table 2", "Table 3", "Figure 2", "Figure 3", "Figure 4",
                       "Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9"] {
            assert!(
                EXPERIMENTS.iter().any(|e| e.artifact.contains(needle)),
                "{needle} missing from the experiment index"
            );
        }
    }
}
