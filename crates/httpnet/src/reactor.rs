//! The epoll readiness loop behind [`crate::server::Server`].
//!
//! One [`Reactor`] per worker thread. The accept thread hands fresh
//! `TcpStream`s to reactors round-robin through an [`Inbox`] (a locked
//! queue plus an eventfd wakeup); from then on the connection lives
//! entirely on its reactor:
//!
//! * **Reads** append into a per-connection reusable buffer;
//!   [`crate::http::parse_request`] parses complete requests straight off
//!   that buffer (no per-line allocations, pipelining falls out for
//!   free).
//! * **Handlers** run inline on the reactor thread — per-core workers,
//!   no cross-thread handoff per request.
//! * **Writes** go out as one vectored `[head, body]` write; partial
//!   writes arm `EPOLLOUT` and resume when the peer drains.
//! * **Fault delays** (base latency, stalls, `Retry-After` pauses) park
//!   the connection in a timer heap instead of sleeping a thread, so one
//!   stalled response never blocks the other connections on the core.
//!
//! Timeout enforcement is coarse: a periodic sweep closes connections
//! whose read/write deadline passed. That mirrors the old blocking
//! server's `SO_RCVTIMEO` behavior to within the sweep interval.

use crate::fault::{FaultAction, FaultInjector};
use crate::http::{parse_request, serialize_response_head, Request, Response, Status};
use crate::server::{Handler, ServerConfig};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the reactor sweeps for timed-out connections.
const SWEEP_INTERVAL: Duration = Duration::from_millis(200);
/// Read chunk size (stack scratch; bytes are appended to the conn buffer).
const READ_CHUNK: usize = 16 * 1024;
/// A connection's read buffer is shrunk back to this once it empties.
const BUF_RETAIN: usize = 16 * 1024;
/// Token reserved for the inbox eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

/// Hand-off queue from the accept thread to one reactor.
pub(crate) struct Inbox {
    queue: Mutex<VecDeque<TcpStream>>,
    wake: EventFd,
    capacity: usize,
}

impl Inbox {
    pub(crate) fn new(capacity: usize) -> std::io::Result<Arc<Inbox>> {
        Ok(Arc::new(Inbox {
            queue: Mutex::new(VecDeque::new()),
            wake: EventFd::new()?,
            capacity: capacity.max(1),
        }))
    }

    /// Push a fresh connection. When the inbox is full the stream is
    /// handed back so the accept loop can try another reactor.
    pub(crate) fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        {
            let mut q = self.queue.lock();
            if q.len() >= self.capacity {
                return Err(stream);
            }
            q.push_back(stream);
        }
        self.wake.wake();
        Ok(())
    }

    /// Wake the reactor without queueing anything (shutdown).
    pub(crate) fn wake(&self) {
        self.wake.wake();
    }
}

/// What a connection is currently waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for (more) request bytes.
    Reading,
    /// Response computed; parked until its fault delay elapses.
    Delayed,
    /// Flushing the response; waiting for the peer to drain.
    Writing,
}

/// Per-connection state machine with reusable buffers.
struct Conn {
    stream: TcpStream,
    state: State,
    /// Unparsed request bytes (reused across requests on the connection).
    read_buf: Vec<u8>,
    /// Serialized response head (status line + headers), reused.
    head: Vec<u8>,
    /// Response body (owned by the in-flight response).
    body: Vec<u8>,
    /// Bytes of `head + body` already written.
    written: usize,
    /// Requests served on this connection (keep-alive cap).
    served: usize,
    /// Close once the current write completes.
    close_after_write: bool,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// Read/write deadline enforced by the sweep (None while delayed —
    /// the timer heap owns the wakeup then).
    deadline: Option<Instant>,
    /// When the first byte of the in-flight request arrived. Unlike
    /// `deadline` (which is refreshed on every read), this is pinned
    /// until a complete request parses, so `header_read_timeout` bounds
    /// the *total* time a slowloris peer can trickle bytes.
    request_started: Option<Instant>,
    /// Access-log bookkeeping for the in-flight request.
    pending_log: Option<PendingLog>,
    /// Slot generation, so stale timer entries can be detected.
    gen: u64,
}

/// Deferred access-log entry: recorded when the response is released to
/// the wire (after any fault delay), like the old blocking server did.
struct PendingLog {
    method: String,
    target: String,
    status: u16,
    body_len: usize,
    started: Instant,
    /// Whether this response counts toward `requests_served` (fault
    /// actions that abandon the exchange do not).
    counted: bool,
}

/// Shared handles a reactor needs from the server.
pub(crate) struct ReactorShared {
    pub(crate) handler: Arc<dyn Handler>,
    pub(crate) injector: Arc<FaultInjector>,
    pub(crate) requests_served: Arc<AtomicU64>,
    pub(crate) access_log: Arc<crate::log::AccessLog>,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) config: ServerConfig,
    /// `pool.job_panics` — handler panics confined by the reactor (the
    /// metric name predates the reactor; kept for continuity).
    pub(crate) handler_panics: Option<obs::Counter>,
    /// `conn.read_timeouts` — sweep closes of connections stuck in
    /// `Reading` (idle keep-alive expiry and slowloris header trickles).
    pub(crate) read_timeouts: Option<obs::Counter>,
    /// `conn.write_timeouts` — sweep closes of peers that stop draining
    /// their response (slow-drain abuse).
    pub(crate) write_timeouts: Option<obs::Counter>,
    /// `conn.oversize` — closes of peers that shoveled more unparsed
    /// request bytes than `max_inflight_request_bytes` allows.
    pub(crate) oversize: Option<obs::Counter>,
}

fn bump(counter: &Option<obs::Counter>) {
    if let Some(c) = counter {
        c.inc();
    }
}

/// One event-loop worker.
pub(crate) struct Reactor {
    epoll: Epoll,
    inbox: Arc<Inbox>,
    shared: Arc<ReactorShared>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slot generations (parallel to `conns`, survives slot reuse).
    gens: Vec<u64>,
    /// (ready_at, token, gen) min-heap for delayed responses.
    timers: BinaryHeap<Reverse<(Instant, usize, u64)>>,
    next_sweep: Instant,
}

impl Reactor {
    pub(crate) fn new(inbox: Arc<Inbox>, shared: Arc<ReactorShared>) -> std::io::Result<Reactor> {
        let epoll = Epoll::new()?;
        epoll.add(inbox.wake.fd(), EPOLLIN, WAKE_TOKEN)?;
        Ok(Reactor {
            epoll,
            inbox,
            shared,
            conns: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
            timers: BinaryHeap::new(),
            next_sweep: Instant::now() + SWEEP_INTERVAL,
        })
    }

    /// Run until the server's stop flag is raised.
    pub(crate) fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 256];
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let timeout = self.next_timeout();
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => continue,
            };
            for ev in &events[..n] {
                let token = ev.token();
                if token == WAKE_TOKEN {
                    self.inbox.wake.drain();
                    self.drain_inbox();
                } else {
                    self.dispatch(token as usize, ev.mask());
                }
            }
            self.fire_timers();
            let now = Instant::now();
            if now >= self.next_sweep {
                self.sweep(now);
                self.next_sweep = now + SWEEP_INTERVAL;
            }
        }
    }

    /// Milliseconds until the next timer or sweep; -1 blocks when the
    /// reactor holds no connections and no timers.
    fn next_timeout(&self) -> i32 {
        let now = Instant::now();
        let mut next: Option<Instant> = self.timers.peek().map(|Reverse((t, _, _))| *t);
        if self.conns.iter().any(Option::is_some) {
            let sweep = self.next_sweep;
            next = Some(next.map_or(sweep, |t| t.min(sweep)));
        }
        match next {
            None => -1,
            Some(t) => {
                let dur = t.saturating_duration_since(now);
                // Round up so a due-in-200µs timer doesn't spin at 0ms.
                dur.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32
            }
        }
    }

    fn drain_inbox(&mut self) {
        loop {
            let stream = { self.inbox.queue.lock().pop_front() };
            let Some(stream) = stream else { return };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            });
            let conn = Conn {
                stream,
                state: State::Reading,
                read_buf: Vec::new(),
                head: Vec::new(),
                body: Vec::new(),
                written: 0,
                served: 0,
                close_after_write: false,
                interest: EPOLLIN | EPOLLRDHUP,
                deadline: Some(Instant::now() + self.shared.config.read_timeout),
                request_started: None,
                pending_log: None,
                gen: self.gens[token],
            };
            if self.epoll.add(conn.stream.as_raw_fd(), conn.interest, token as u64).is_err() {
                self.gens[token] += 1;
                self.free.push(token);
                continue;
            }
            self.conns[token] = Some(conn);
        }
    }

    fn dispatch(&mut self, token: usize, mask: u32) {
        let Some(conn) = self.conns.get(token).and_then(Option::as_ref) else { return };
        match conn.state {
            // Peer hangups during a fault delay are deliberately ignored:
            // the old server slept through them and still accounted the
            // response; the timer will fire and the write will fail.
            State::Delayed => {}
            State::Reading => {
                if mask & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
                    self.on_readable(token);
                }
            }
            State::Writing => {
                if mask & (EPOLLERR | EPOLLHUP) != 0 && mask & EPOLLOUT == 0 {
                    self.close(token);
                } else {
                    self.write_some(token);
                }
            }
        }
    }

    fn on_readable(&mut self, token: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer EOF. Matches the old server's treatment of EOF
                    // between requests: close silently.
                    self.close(token);
                    return;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if conn.read_buf.len() > self.shared.config.max_inflight_request_bytes {
                        // A peer shoveling unbounded bytes that never parse.
                        bump(&self.shared.oversize);
                        self.close(token);
                        return;
                    }
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.advance(token);
    }

    /// Try to parse and serve the next request off the read buffer.
    fn advance(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
        debug_assert_eq!(conn.state, State::Reading);
        if !conn.read_buf.is_empty() && conn.request_started.is_none() {
            conn.request_started = Some(Instant::now());
        }
        match parse_request(&conn.read_buf) {
            Ok(None) => {
                // Incomplete: wait for more bytes. The per-read deadline
                // refreshes, but `request_started` does not — a trickling
                // peer still runs out of `header_read_timeout`.
                conn.deadline = Some(Instant::now() + self.shared.config.read_timeout);
                self.set_interest(token, EPOLLIN | EPOLLRDHUP);
            }
            Err(_) => {
                // Same contract as the blocking server: one 400, then close.
                let conn = self.conns[token].as_mut().expect("checked");
                conn.read_buf.clear();
                conn.head.clear();
                serialize_response_head(&Response::status(Status(400)), &mut conn.head);
                conn.body.clear();
                conn.written = 0;
                conn.close_after_write = true;
                conn.pending_log = None;
                self.begin_write(token);
            }
            Ok(Some((req, consumed))) => {
                // A complete request arrived in time; pipelined leftovers
                // start a fresh header clock when they get parsed.
                conn.request_started = None;
                // Drop the consumed prefix, keeping pipelined leftovers.
                if consumed == conn.read_buf.len() {
                    conn.read_buf.clear();
                    if conn.read_buf.capacity() > 4 * BUF_RETAIN {
                        conn.read_buf.shrink_to(BUF_RETAIN);
                    }
                } else {
                    conn.read_buf.copy_within(consumed.., 0);
                    let rest = conn.read_buf.len() - consumed;
                    conn.read_buf.truncate(rest);
                }
                self.serve(token, req);
            }
        }
    }

    /// Decide the fault action, run the handler, stage the response, and
    /// either release it now or park it in the timer heap.
    fn serve(&mut self, token: usize, req: Request) {
        let shared = self.shared.clone();
        let started = Instant::now();
        let action = shared.injector.decide();
        let close_requested = req
            .headers
            .get("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);

        // (response-to-send, raw-bytes-instead, counted, kill-connection)
        let mut raw: Option<Vec<u8>> = None;
        let mut kill = false;
        let (delay, resp, counted) = match action {
            FaultAction::Proceed(d) | FaultAction::Stall(d) => {
                (d, self.run_handler(&req), true)
            }
            FaultAction::Error(d) => (d, Some(Response::status(Status::INTERNAL)), true),
            FaultAction::Drop(d) => {
                kill = true;
                (d, None, false)
            }
            FaultAction::Reset(d) => {
                kill = true;
                raw = Some(b"HTTP/1.1 2".to_vec());
                (d, None, false)
            }
            FaultAction::Malformed(d) => {
                kill = true;
                raw = Some(b"SMTP/0.9 GARBAGE NOISE\r\n\r\n".to_vec());
                (d, None, false)
            }
            FaultAction::Truncate(d) => {
                // Correct head promising the full Content-Length, then
                // only part of the body.
                kill = true;
                if let Some(resp) = self.run_handler(&req) {
                    let mut buf = Vec::new();
                    let _ = resp.write_to(&mut buf);
                    let cut = buf.len().saturating_sub(resp.body.len() / 2 + 1).max(1);
                    buf.truncate(cut);
                    raw = Some(buf);
                }
                (d, None, false)
            }
            FaultAction::RateLimit(d) => (
                d,
                Some(crate::server::retry_after_response(
                    Status::TOO_MANY,
                    shared.config.faults.retry_after,
                )),
                true,
            ),
            FaultAction::Unavailable(d) => (
                d,
                Some(crate::server::retry_after_response(
                    Status(503),
                    shared.config.faults.retry_after,
                )),
                true,
            ),
        };

        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
        conn.head.clear();
        conn.body.clear();
        conn.written = 0;
        conn.pending_log = None;
        match (&resp, &raw) {
            (Some(resp), _) => {
                serialize_response_head(resp, &mut conn.head);
                conn.body = resp.body.clone();
                conn.pending_log = Some(PendingLog {
                    method: req.method,
                    target: req.target,
                    status: resp.status.0,
                    body_len: resp.body.len(),
                    started,
                    counted,
                });
            }
            (None, Some(bytes)) => conn.head.extend_from_slice(bytes),
            (None, None) => {}
        }
        // A handler panic leaves no response and no raw bytes: confine it
        // by dropping the connection, like the old worker pool did.
        if resp.is_none() && raw.is_none() && !kill {
            self.close(token);
            return;
        }
        conn.served += 1;
        conn.close_after_write = kill
            || close_requested
            || conn.served >= shared.config.max_requests_per_conn;

        if delay.is_zero() {
            self.begin_write(token);
        } else {
            conn.state = State::Delayed;
            conn.deadline = None;
            let gen = conn.gen;
            self.timers.push(Reverse((started + delay, token, gen)));
            self.set_interest(token, 0);
        }
    }

    /// Run the handler, confining panics. `None` means it panicked.
    fn run_handler(&self, req: &Request) -> Option<Response> {
        let handler = &self.shared.handler;
        match std::panic::catch_unwind(AssertUnwindSafe(|| handler.handle(req))) {
            Ok(resp) => Some(resp),
            Err(_) => {
                if let Some(c) = &self.shared.handler_panics {
                    c.inc();
                }
                None
            }
        }
    }

    /// Release delayed responses whose time has come.
    fn fire_timers(&mut self) {
        let now = Instant::now();
        while let Some(Reverse((at, token, gen))) = self.timers.peek().copied() {
            if at > now {
                return;
            }
            self.timers.pop();
            let live = matches!(
                self.conns.get(token).and_then(Option::as_ref),
                Some(c) if c.gen == gen && c.state == State::Delayed
            );
            if live {
                self.begin_write(token);
            }
        }
    }

    /// Account the staged response and start flushing it.
    fn begin_write(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
        if let Some(log) = conn.pending_log.take() {
            if log.counted {
                self.shared.requests_served.fetch_add(1, Ordering::SeqCst);
                self.shared.access_log.record(crate::log::AccessEntry {
                    method: log.method,
                    target: log.target,
                    status: log.status,
                    body_len: log.body_len,
                    duration: log.started.elapsed(),
                });
            }
        }
        let conn = self.conns[token].as_mut().expect("checked");
        conn.state = State::Writing;
        conn.deadline = Some(Instant::now() + self.shared.config.write_timeout);
        self.write_some(token);
    }

    /// Push staged bytes to the socket; re-arm `EPOLLOUT` on a short write.
    fn write_some(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
            let total = conn.head.len() + conn.body.len();
            if conn.written >= total {
                break;
            }
            let hw = conn.written.min(conn.head.len());
            let bw = conn.written - hw;
            let head_rest = &conn.head[hw..];
            let body_rest = &conn.body[bw..];
            let result = if head_rest.is_empty() {
                conn.stream.write(body_rest)
            } else if body_rest.is_empty() {
                conn.stream.write(head_rest)
            } else {
                conn.stream
                    .write_vectored(&[IoSlice::new(head_rest), IoSlice::new(body_rest)])
            };
            match result {
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.set_interest(token, EPOLLOUT);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.finish_write(token);
    }

    /// The response is fully on the wire: close, serve the next pipelined
    /// request, or go back to waiting for bytes.
    fn finish_write(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
        if conn.close_after_write {
            self.close(token);
            return;
        }
        conn.head.clear();
        conn.body = Vec::new();
        conn.written = 0;
        conn.state = State::Reading;
        conn.deadline = Some(Instant::now() + self.shared.config.read_timeout);
        if conn.read_buf.is_empty() {
            self.set_interest(token, EPOLLIN | EPOLLRDHUP);
        } else {
            // Pipelined request already buffered.
            self.advance(token);
        }
    }

    fn set_interest(&mut self, token: usize, mask: u32) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
        if conn.interest != mask {
            conn.interest = mask;
            let _ = self.epoll.modify(conn.stream.as_raw_fd(), mask, token as u64);
        }
    }

    /// Close connections whose read/write deadline has passed. Two clocks
    /// apply while reading: the per-read deadline (refreshed on every
    /// byte) and the pinned `request_started + header_read_timeout`
    /// budget that a slowloris trickle cannot refresh.
    fn sweep(&mut self, now: Instant) {
        let header_budget = self.shared.config.header_read_timeout;
        let overdue: Vec<(usize, State)> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.as_ref()?;
                let deadline_passed = matches!(c.deadline, Some(d) if d <= now);
                let header_passed = c.state == State::Reading
                    && matches!(c.request_started, Some(s) if s + header_budget <= now);
                (deadline_passed || header_passed).then_some((i, c.state))
            })
            .collect();
        for (token, state) in overdue {
            match state {
                State::Reading => bump(&self.shared.read_timeouts),
                State::Writing => bump(&self.shared.write_timeouts),
                State::Delayed => {}
            }
            self.close(token);
        }
    }

    fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::take) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.gens[token] = self.gens[token].wrapping_add(1);
            self.free.push(token);
            // conn (and its TcpStream) drops here.
            drop(conn);
        }
    }
}
