//! Machine-readable run report: run one fixed-seed small-scale study and
//! emit its [`RunStats`](dissenter_core::RunStats) as JSON (the
//! `BENCH_PR2.json` artifact produced by `scripts/bench.sh`).
//!
//! ```text
//! runstats [--out FILE] [--scale <f64>] [--seed N] [--skip-svm]
//! ```
//!
//! The report splits along the obs determinism contract: everything under
//! `"counters"` (and the phase/scorer comment counts) replays identically
//! for the same seed; stage wall-clocks, rates, and latency quantiles are
//! timing-derived and vary run to run.

use dissenter_core::run_study;
use std::fmt::Write as _;

fn usage() -> ! {
    eprintln!("usage: runstats [--out FILE] [--scale <f64>] [--seed N] [--skip-svm]");
    std::process::exit(2);
}

fn main() {
    let mut out_path = std::path::PathBuf::from("BENCH_PR2.json");
    let mut builder = dissenter_core::Study::builder()
        .scale(synth::config::Scale::Custom(0.004))
        .svm_corpus(600);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| usage()).into(),
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder
                    .scale(synth::config::Scale::Custom(v.parse().unwrap_or_else(|_| usage())));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder.seed(v.parse().unwrap_or_else(|_| usage()));
            }
            "--skip-svm" => builder = builder.svm(false),
            _ => usage(),
        }
    }
    let cfg = builder.build().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let started = std::time::Instant::now();
    let study = run_study(&cfg);
    let wall = started.elapsed();
    let rs = &study.runstats;

    let mut s = String::from("{");
    let _ = write!(s, "\"bench\":\"run-stats\"");
    let _ = write!(s, ",\"seed\":{}", cfg.world.seed);
    let _ = write!(s, ",\"scale\":{}", study.scale_factor);
    let _ = write!(s, ",\"wall_ms\":{:.1}", wall.as_secs_f64() * 1e3);
    let _ = write!(s, ",\"comments\":{}", study.report.overview.comments);

    s.push_str(",\"stages_us\":{");
    for (i, st) in rs.stages.iter().enumerate() {
        let _ = write!(s, "{}\"{}\":{}", if i > 0 { "," } else { "" }, st.name, st.wall_us);
    }
    s.push('}');

    s.push_str(",\"phases\":{");
    for (i, p) in rs.phases.iter().enumerate() {
        let _ = write!(
            s,
            "{}\"{}\":{{\"attempted\":{},\"succeeded\":{},\"retried\":{},\"dead_lettered\":{}}}",
            if i > 0 { "," } else { "" },
            p.name,
            p.attempted,
            p.succeeded,
            p.retried,
            p.dead_lettered
        );
    }
    s.push('}');

    s.push_str(",\"scorers\":{");
    for (i, sc) in rs.scorers.iter().enumerate() {
        let _ = write!(
            s,
            "{}\"{}\":{{\"comments\":{},\"comments_per_sec\":{:.1}}}",
            if i > 0 { "," } else { "" },
            sc.name,
            sc.comments,
            sc.comments_per_sec
        );
    }
    s.push('}');

    let _ = write!(s, ",\"metrics\":{}", rs.snapshot.to_json());
    s.push('}');

    // Self-validate before writing: a malformed artifact should fail the
    // bench run, not a downstream consumer.
    jsonlite::parse(&s).expect("generated run report must be valid JSON");

    std::fs::write(&out_path, &s).expect("write run report");
    println!("wrote {} ({} bytes)", out_path.display(), s.len());
    println!(
        "stages: {}",
        rs.stages
            .iter()
            .map(|st| format!("{} {:.0}ms", st.name, st.wall_us as f64 / 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
