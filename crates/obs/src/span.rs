//! Scoped wall-clock spans.

use crate::Registry;
use std::time::{Duration, Instant};

/// A running stage timer. Created by [`Registry::span`]; on
/// [`Span::finish`] (or drop) the elapsed wall-clock lands in the
/// histogram named after the span and a `span` event is logged, so stage
/// timings show up both in the metric snapshot and the JSONL trace.
#[derive(Debug)]
pub struct Span {
    registry: Registry,
    name: String,
    started: Instant,
    finished: bool,
}

impl Span {
    pub(crate) fn start(registry: Registry, name: &str) -> Self {
        Self { registry, name: name.to_owned(), started: Instant::now(), finished: false }
    }

    /// The span's histogram/event name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Elapsed time so far without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// End the span, record it, and return the elapsed wall-clock.
    pub fn finish(mut self) -> Duration {
        self.record()
    }

    fn record(&mut self) -> Duration {
        let elapsed = self.started.elapsed();
        if !self.finished {
            self.finished = true;
            self.registry.histogram(&self.name).observe(elapsed);
            let us = format!("{}", elapsed.as_micros());
            self.registry.event("span", &[("name", self.name.as_str()), ("dur_us", &us)]);
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_once() {
        let r = Registry::new();
        let span = r.span("stage.test");
        std::thread::sleep(Duration::from_millis(2));
        let d = span.finish();
        assert!(d >= Duration::from_millis(2));
        let snap = r.snapshot();
        assert_eq!(snap.histogram("stage.test").unwrap().count, 1);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].name, "span");
    }

    #[test]
    fn drop_records_too() {
        let r = Registry::new();
        {
            let _span = r.span("stage.dropped");
        }
        assert_eq!(r.snapshot().histogram("stage.dropped").unwrap().count, 1);
    }
}
