//! The reddit.com / Pushshift front-end (§4.4.1).

use httpnet::{Handler, Params, Request, Response, Router, Status};
use platform::World;
use std::sync::Arc;

/// Pushshift page size.
pub const PAGE_SIZE: usize = 100;

/// Handler for Reddit account checks and Pushshift history pulls.
pub struct RedditFront {
    router: Router,
}

impl RedditFront {
    /// Build over a shared world.
    pub fn new(world: Arc<World>) -> Self {
        let mut router = Router::new();
        {
            let world = world.clone();
            router.route("GET", "/user/:username/about", move |_req, p| about(&world, p));
        }
        {
            let world = world.clone();
            router.route("GET", "/pushshift/comments", move |req, _| comments(&world, req));
        }
        Self { router }
    }
}

impl Handler for RedditFront {
    fn handle(&self, req: &Request) -> Response {
        self.router.dispatch(req)
    }
}

fn about(world: &World, p: &Params) -> Response {
    let name = p.get("username").unwrap_or("");
    if world.reddit.exists(name) {
        let v = jsonlite::Value::object()
            .with("name", name)
            .with("total_comments", world.reddit.declared_count(name).unwrap_or(0));
        Response::json(jsonlite::to_string(&v))
    } else {
        let mut r = Response::status(Status::NOT_FOUND);
        r.body = br#"{"error":404,"message":"Not Found"}"#.to_vec();
        r
    }
}

fn comments(world: &World, req: &Request) -> Response {
    let Some(author) = req.query("author") else {
        return Response::status(Status(400));
    };
    let page: usize = req.query("page").and_then(|s| s.parse().ok()).unwrap_or(0);
    let Some(all) = world.reddit.comments(&author) else {
        return Response::json("{\"data\":[],\"total\":0}".to_owned());
    };
    let start = (page * PAGE_SIZE).min(all.len());
    let end = (start + PAGE_SIZE).min(all.len());
    let items: Vec<jsonlite::Value> = all[start..end]
        .iter()
        .map(|t| jsonlite::Value::object().with("body", t.as_str()))
        .collect();
    let v = jsonlite::Value::object()
        .with("data", jsonlite::Value::Array(items))
        .with("total", world.reddit.declared_count(&author).unwrap_or(0))
        .with("materialized", all.len());
    Response::json(jsonlite::to_string(&v))
}
