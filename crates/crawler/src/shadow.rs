//! Phase 4 — shadow-label validation (§4.3.1).
//!
//! The diff labeling itself happens during the spider's four-pass thread
//! crawl ([`crate::spider::crawl_threads`]). This phase reproduces the
//! paper's verification step: select a sample of labeled comments and
//! confirm each one is invisible anonymously (404) yet visible to a
//! session with the matching filter enabled — the automated analogue of
//! the authors' manual 100-comment check.

use crate::resilience::{Phase, PhaseRun};
use crate::store::{CrawlStore, ShadowLabel};
use crate::Crawler;
use ids::ObjectId;

/// Validate a deterministic sample of shadow labels; records
/// `(sampled, confirmed)` into the store.
pub fn shadow_crawl(crawler: &Crawler, store: &mut CrawlStore) {
    let labeled: Vec<(ObjectId, ShadowLabel)> = {
        let mut v: Vec<(ObjectId, ShadowLabel)> = store
            .comments
            .values()
            .filter(|c| c.label != ShadowLabel::Standard)
            .map(|c| (c.id, c.label))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        let step = (v.len() / crawler.config.validation_sample.max(1)).max(1);
        v.into_iter().step_by(step).take(crawler.config.validation_sample).collect()
    };
    let run = PhaseRun::new(crawler, Phase::Shadow);
    let confirmations = crate::parallel::parallel_fetch(
        crawler.endpoints.dissenter,
        &labeled,
        crawler.config.workers,
        &store.stats,
        |c| run.setup_client(c),
        |client, &(id, label)| {
            client.clear_cookies();
            // A 404 here is a *delivered* answer (the comment is hidden),
            // not a failure — run.fetch only retries wire faults and 5xx.
            let anon = run.fetch(client, store, &format!("/comment/{id}"))?;
            let session = match label {
                ShadowLabel::Nsfw => "crawler:nsfw",
                ShadowLabel::Offensive => "crawler:offensive",
                ShadowLabel::Both => "crawler:both",
                ShadowLabel::Standard => unreachable!("sample is labeled-only"),
            };
            client.set_cookie("session", session);
            let authed = run.fetch(client, store, &format!("/comment/{id}"))?;
            Some(!anon.status.is_success() && authed.status.is_success())
        },
    );
    let confirmed = confirmations.iter().filter(|&&ok| ok).count();
    store.shadow_validation = (labeled.len(), confirmed);
}
