//! The §3.5.3 NLP experiment: train the three-class SVM on the synthetic
//! labeled corpus (Davidson-shaped imbalance) with ADASYN oversampling and
//! grid search, report 5-fold cross-validated F1, then compute class
//! probabilities for every crawled Dissenter comment.
//!
//! The experiment is sharded end to end: corpus synthesis and featurizing
//! run on per-shard seed streams, the (λ, fold) grid fans out onto the
//! shared study [`httpnet::ThreadPool`], and the application pass scores
//! id-ordered comment shards whose partial sums merge in canonical shard
//! order — so the report is byte-identical at any worker count.

use classify::adasyn::{adasyn_sharded, AdasynConfig};
use classify::cv::{fold_assignment, run_fold, CvResult};
use classify::shard;
use classify::svm::{Featurizer, LinearSvm, SparseVec, SvmConfig};
use classify::CommentClass;
use crawler::CrawlStore;
use std::sync::Arc;
use synth::labeled_corpus_sharded;

/// Outcome of the SVM experiment.
#[derive(Debug, Clone)]
pub struct SvmReport {
    /// Best 5-fold weighted F1 found by the grid search (paper: 0.87).
    pub cv_f1: f64,
    /// All grid points `(lambda, weighted F1)`.
    pub grid: Vec<(f64, f64)>,
    /// The winning λ.
    pub best_lambda: f64,
    /// Labeled corpus size used.
    pub corpus_size: usize,
    /// Mean class probability over all Dissenter comments
    /// `[hate, offensive, neither]`.
    pub mean_class_probs: [f64; 3],
    /// Fraction of Dissenter comments whose argmax class is each of
    /// `[hate, offensive, neither]`.
    pub class_shares: [f64; 3],
}

/// Run the full experiment against a crawl, serially.
pub fn run_svm_experiment(store: &CrawlStore, corpus_size: usize, seed: u64) -> SvmReport {
    run_svm_experiment_with_metrics(store, corpus_size, seed, None)
}

/// [`run_svm_experiment`] exporting scorer metrics; spins up a transient
/// single-worker pool (see [`run_svm_experiment_pooled`] for the metrics
/// exported).
pub fn run_svm_experiment_with_metrics(
    store: &CrawlStore,
    corpus_size: usize,
    seed: u64,
    metrics: Option<&obs::Registry>,
) -> SvmReport {
    let pool = httpnet::ThreadPool::new(1, 2);
    run_svm_experiment_pooled(store, corpus_size, seed, &pool, metrics)
}

/// [`run_svm_experiment`] with cross-validation folds and the comment
/// application pass scattered onto `pool`, exporting scorer metrics to
/// `metrics`: `classify.svm.comments` (comments the final model scored —
/// deterministic), `classify.svm.train` / `classify.svm.apply` busy-time
/// histograms, a `classify.svm.comments_per_sec` application-rate gauge,
/// plus the `shard.svm.cv.*` / `shard.svm.apply.*` scatter instrumentation
/// from [`httpnet::ThreadPool::scatter_labeled`].
pub fn run_svm_experiment_pooled(
    store: &CrawlStore,
    corpus_size: usize,
    seed: u64,
    pool: &httpnet::ThreadPool,
    metrics: Option<&obs::Registry>,
) -> SvmReport {
    let workers = pool.size();
    let train_started = std::time::Instant::now();
    let corpus = labeled_corpus_sharded(corpus_size, seed ^ 0x5717, workers);
    let featurizer = Featurizer::standard();
    let samples: Vec<(SparseVec, usize)> =
        shard::map_sharded(&corpus, shard::DEFAULT_SHARD_SIZE, workers, |_, sh| {
            sh.iter().map(|s| (featurizer.featurize(&s.text), s.class.index())).collect()
        });

    // Grid search over λ with the flattened (candidate, fold) jobs
    // scattered onto the shared pool. Mirrors
    // [`classify::cv::grid_search_sharded`]: one fold assignment shared
    // across candidates, per-fold confusions merged in fold order per λ,
    // final sort by F1 — independent of scheduling.
    let lambdas = [1e-5, 1e-4, 1e-3];
    let base = SvmConfig { epochs: 8, seed, ..SvmConfig::default() };
    let k = 5usize;
    let oversample = Some(AdasynConfig { k: 5, beta: 1.0, seed });
    let folds = Arc::new(fold_assignment(samples.len(), k, seed ^ 0xF0F0));
    let shared = Arc::new(samples);
    let jobs: Vec<_> = (0..lambdas.len())
        .flat_map(|c| (0..k).map(move |fold| (c, fold)))
        .map(|(c, fold)| {
            let samples = Arc::clone(&shared);
            let folds = Arc::clone(&folds);
            move || {
                let cfg = SvmConfig { lambda: lambdas[c], ..base };
                run_fold(&samples, &folds, fold, 3, cfg, oversample)
            }
        })
        .collect();
    let per_job = pool.scatter_labeled("svm.cv", metrics, jobs);
    let mut results: Vec<CvResult> = lambdas
        .iter()
        .enumerate()
        .map(|(c, &lambda)| {
            let mut confusion = classify::Confusion::new(3);
            for fold in 0..k {
                confusion.merge(&per_job[c * k + fold]);
            }
            // Every sample is validated exactly once across the k folds,
            // so the pooled matrix must account for the whole corpus.
            confusion
                .check_books(shared.len() as u64)
                .expect("pooled CV confusion accounts for every sample");
            CvResult { confusion, config: SvmConfig { lambda, ..base } }
        })
        .collect();
    results.sort_by(|a, b| b.weighted_f1().partial_cmp(&a.weighted_f1()).expect("finite F1"));
    let best = &results[0];
    let grid: Vec<(f64, f64)> =
        results.iter().map(|r| (r.config.lambda, r.weighted_f1())).collect();

    // Final model on the full (oversampled) corpus; apply to all comments.
    let oversampled =
        adasyn_sharded(&shared, 3, AdasynConfig { k: 5, beta: 1.0, seed }, workers);
    let model = Arc::new(LinearSvm::train(&oversampled, 3, best.config));
    let train_busy = train_started.elapsed();

    // Application pass: comments in id order (the store is a hash map),
    // sharded with fixed geometry so per-shard f64 partial sums merge
    // identically at any worker count.
    let apply_started = std::time::Instant::now();
    let mut items: Vec<(ids::ObjectId, String)> =
        store.comments.iter().map(|(id, c)| (*id, c.text.clone())).collect();
    items.sort_unstable_by_key(|&(id, _)| id);
    let texts: Vec<String> = items.into_iter().map(|(_, t)| t).collect();
    let n = texts.len().max(1);
    let apply_jobs: Vec<_> = shard::shard_bounds(texts.len(), shard::DEFAULT_SHARD_SIZE)
        .into_iter()
        .map(|r| {
            let chunk: Vec<String> = texts[r].to_vec();
            let model = Arc::clone(&model);
            move || {
                let mut sums = [0.0f64; 3];
                let mut counts = [0u64; 3];
                for t in &chunk {
                    let x = featurizer.featurize(t);
                    let p = model.probabilities(&x);
                    for k in 0..3 {
                        sums[k] += p[k];
                    }
                    counts[model.predict(&x)] += 1;
                }
                (sums, counts)
            }
        })
        .collect();
    let parts = pool.scatter_labeled("svm.apply", metrics, apply_jobs);
    let mut mean = [0.0f64; 3];
    let mut shares = [0.0f64; 3];
    for (sums, counts) in &parts {
        for k in 0..3 {
            mean[k] += sums[k];
            shares[k] += counts[k] as f64;
        }
    }
    for k in 0..3 {
        mean[k] /= n as f64;
        shares[k] /= n as f64;
    }

    if let Some(registry) = metrics {
        let apply_busy = apply_started.elapsed();
        registry.add("shard.svm.apply.items", texts.len() as u64);
        registry.add("classify.svm.comments", texts.len() as u64);
        registry.observe("classify.svm.train", train_busy);
        registry.observe("classify.svm.apply", apply_busy);
        if !apply_busy.is_zero() {
            registry.set_gauge(
                "classify.svm.comments_per_sec",
                texts.len() as f64 / apply_busy.as_secs_f64(),
            );
        }
    }

    SvmReport {
        cv_f1: best.weighted_f1(),
        best_lambda: best.config.lambda,
        grid,
        corpus_size: corpus.len(),
        mean_class_probs: mean,
        class_shares: shares,
    }
}

/// Class label order used in the report arrays.
pub const CLASS_ORDER: [CommentClass; 3] =
    [CommentClass::Hate, CommentClass::Offensive, CommentClass::Neither];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svm_experiment_reaches_paper_band_on_synthetic_corpus() {
        let store = CrawlStore::default();
        let r = run_svm_experiment(&store, 1_500, 42);
        assert!(r.cv_f1 > 0.8, "weighted F1 {}", r.cv_f1);
        assert!(r.grid.len() == 3);
        // Empty store → no comment application.
        assert_eq!(r.class_shares, [0.0; 3]);
    }

    #[test]
    fn pooled_experiment_identical_for_any_pool_size() {
        let store = CrawlStore::default();
        let serial = {
            let pool = httpnet::ThreadPool::new(1, 2);
            run_svm_experiment_pooled(&store, 600, 7, &pool, None)
        };
        for workers in [2, 8] {
            let pool = httpnet::ThreadPool::new(workers, workers * 2);
            let par = run_svm_experiment_pooled(&store, 600, 7, &pool, None);
            assert_eq!(par.cv_f1, serial.cv_f1, "workers={workers}");
            assert_eq!(par.grid, serial.grid, "workers={workers}");
            assert_eq!(par.best_lambda, serial.best_lambda, "workers={workers}");
        }
    }
}
