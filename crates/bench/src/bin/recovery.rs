//! Durable-crawl recovery bench: measure the WAL's journaling overhead
//! against a plain in-memory crawl, then kill a journaled crawl two WAL
//! ops before completion and time the recovery + resume path. Emits the
//! comparison as `BENCH_PR6.json` (produced in CI by
//! `scripts/bench_pr6.sh`).
//!
//! ```text
//! recovery [--out FILE] [--scale <f64>] [--seed N]
//! ```
//!
//! Self-validating: the run aborts unless (a) journaling keeps the crawl
//! within 25% of the WAL-off wall-clock (plain crawl + one final
//! `persist::save`), (b) the journaled store is
//! byte-identical to the plain one, (c) the resumed store is
//! byte-identical to the uninterrupted journaled one, (d) resume
//! replayed every completed phase from disk without a single re-fetch,
//! and (e) the interrupted phase's partial progress was revalidated via
//! `304 Not Modified` rather than re-downloaded.

use crawler::journal::is_kill_error;
use crawler::{Crawler, DurableConfig, Endpoints, Failpoint, Phase};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use synth::config::Scale;
use synth::WorldConfig;

fn usage() -> ! {
    eprintln!("usage: recovery [--out FILE] [--scale <f64>] [--seed N]");
    std::process::exit(2);
}

trait ParseOk {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T;
}

impl ParseOk for String {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T {
        self.parse().unwrap_or_else(|_| {
            eprintln!("recovery: invalid value {self:?} for {name}");
            usage()
        })
    }
}

/// Persist `store` under `dir` and read the canonical files back.
fn persist_bytes(store: &crawler::CrawlStore, dir: &Path) -> Vec<Vec<u8>> {
    crawler::persist::save(store, dir).expect("persist store");
    crawler::persist::FILES
        .iter()
        .map(|f| std::fs::read(dir.join(f)).expect("read persisted file"))
        .collect()
}

fn main() {
    let mut out_path = std::path::PathBuf::from("BENCH_PR6.json");
    let mut scale = 0.003f64;
    let mut seed = 0xD15C_BE6Cu64;
    let mut args = std::env::args().skip(1);
    fn next_arg(args: &mut impl Iterator<Item = String>) -> String {
        args.next().unwrap_or_else(|| usage())
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = next_arg(&mut args).into(),
            "--scale" => scale = next_arg(&mut args).parse_ok("--scale"),
            "--seed" => seed = next_arg(&mut args).parse_ok("--seed"),
            _ => usage(),
        }
    }

    let cfg = WorldConfig { seed, scale: Scale::Custom(scale), ..WorldConfig::small() };
    let (world, _) = synth::generate(&cfg);
    let world = Arc::new(world);
    // Serve Dissenter's per-URL fixed window with a short period so the
    // resume pass — which lands inside a window the killed run already
    // spent — sleeps milliseconds instead of the production 60 s.
    let mut fronts = webfront::SimFronts::new(world.clone());
    fronts.dissenter = Arc::new(webfront::dissenter::DissenterFront::with_rate_limit(
        world.clone(),
        10,
        2,
    ));
    let services = webfront::SimServices::start_with(fronts, crawler::default_server_config())
        .expect("failed to start simulated services");
    let crawler_for = || {
        let mut crawler = Crawler::new(Endpoints {
            dissenter: services.dissenter.addr(),
            gab: services.gab.addr(),
            reddit: services.reddit.addr(),
            youtube: services.youtube.addr(),
        });
        crawler.config.enum_gap_tolerance =
            crawler.config.enum_gap_tolerance.min((world.gab.max_id() / 4).max(512));
        crawler.enable_revalidation(1 << 16);
        crawler
    };

    let base = std::env::temp_dir().join(format!("bench-recovery-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // Warm the server-side render caches so the timed regimes see the
    // same steady state (the first crawl pays every render; neither
    // timed pass should).
    crawler_for().full_crawl();

    // Each regime runs twice and keeps the faster wall-clock: the
    // crawls are deterministic, so the spread is pure scheduler/fs
    // noise and the minimum is the honest cost.
    fn best_of<F: FnMut(usize) -> u64>(mut run: F) -> u64 {
        (0..2).map(&mut run).min().unwrap()
    }

    // Regime A: plain in-memory crawl plus the single final
    // `persist::save` any real run pays — the honest alternative to
    // journaling is durable-once-at-the-end, not never-durable.
    let mut store_off = None;
    let wal_off_ms = best_of(|_| {
        let started = Instant::now();
        let store = crawler_for().full_crawl();
        crawler::persist::save(&store, &base.join("persist-off")).expect("persist store");
        let elapsed = started.elapsed().as_millis() as u64;
        // Drop the output before its writeback can stall the next timed
        // run (an unlinked dirty page never reaches the disk).
        std::fs::remove_dir_all(base.join("persist-off")).ok();
        store_off = Some(store);
        elapsed
    });
    let store_off = store_off.unwrap();

    // Regime B: same crawl journaled through the segmented WAL.
    let mut on_result = None;
    let wal_on_ms = best_of(|i| {
        let on = crawler_for();
        let started = Instant::now();
        let store = on
            .full_crawl_durable(&base.join(format!("wal-{i}")), &DurableConfig::default())
            .expect("journaled crawl");
        let elapsed = started.elapsed().as_millis() as u64;
        std::fs::remove_dir_all(base.join(format!("wal-{i}"))).ok();
        on_result = Some((store, on));
        elapsed
    });
    let (store_on, on) = on_result.unwrap();
    let snap_on = on.metrics.snapshot();
    let on_counter = |name: &str| snap_on.counter(name).unwrap_or(0);
    let total_ops = on_counter("wal.appends");
    assert!(total_ops > 2, "too few WAL appends ({total_ops}) to place a late kill");
    let overhead_ratio = wal_on_ms as f64 / (wal_off_ms as f64).max(1.0);

    // Kill two ops short of a complete journal (mid final commit, torn
    // tail on) and time the recovery + resume path.
    let kill_at = total_ops - 2;
    let killed_dir = base.join("killed");
    let kill_cfg = DurableConfig {
        failpoint: Failpoint { kill_at_op: Some(kill_at), torn_tail: true },
        ..DurableConfig::default()
    };
    let err = crawler_for()
        .full_crawl_durable(&killed_dir, &kill_cfg)
        .expect_err("failpoint must kill the crawl");
    assert!(is_kill_error(&err), "kill surfaced a foreign error: {err}");

    let resumer = crawler_for();
    let started = Instant::now();
    let (resumed, info) =
        resumer.resume(&killed_dir, &DurableConfig::default()).expect("resume");
    let resume_ms = started.elapsed().as_millis() as u64;
    let snap_res = resumer.metrics.snapshot();
    let res_counter = |name: &str| snap_res.counter(name).unwrap_or(0);
    let replayed_records = res_counter("wal.replayed_records");
    let not_modified: u64 = ["dissenter", "gab", "reddit", "youtube"]
        .iter()
        .map(|s| res_counter(&format!("http.{s}.not_modified")))
        .sum();
    let refetched_completed: u64 = Phase::ALL[..info.completed]
        .iter()
        .map(|p| res_counter(&format!("crawl.{}.attempted", p.name())))
        .sum();

    let bytes_off = persist_bytes(&store_off, &base.join("persist-off"));
    let bytes_on = persist_bytes(&store_on, &base.join("persist-on"));
    let bytes_resumed = persist_bytes(&resumed, &base.join("persist-resumed"));
    let journal_invisible = bytes_on == bytes_off;
    let resume_identical = bytes_resumed == bytes_on;
    std::fs::remove_dir_all(&base).ok();

    let report = jsonlite::Value::object()
        .with("scale", scale)
        .with("seed", seed)
        .with(
            "wal_off",
            jsonlite::Value::object().with("wall_ms", wal_off_ms),
        )
        .with(
            "wal_on",
            jsonlite::Value::object()
                .with("wall_ms", wal_on_ms)
                .with("appends", on_counter("wal.appends"))
                .with("fsyncs", on_counter("wal.fsyncs"))
                .with("rotations", on_counter("wal.rotations"))
                .with("snapshots_written", on_counter("snapshot.written"))
                .with("snapshot_bytes", on_counter("snapshot.bytes")),
        )
        .with("overhead_ratio", overhead_ratio)
        .with("journal_invisible", journal_invisible)
        .with(
            "recovery",
            jsonlite::Value::object()
                .with("kill_at_op", kill_at)
                .with("total_ops", total_ops)
                .with("completed_phases", info.completed as u64)
                .with("uncheckpointed_reval", info.uncheckpointed_reval as u64)
                .with("torn_tail_recovered", info.torn_tail_recovered)
                .with("resume_ms", resume_ms)
                .with("replayed_records", replayed_records)
                .with("not_modified", not_modified)
                .with("refetched_completed_phase_pages", refetched_completed)
                .with("store_identical", resume_identical),
        );
    std::fs::write(&out_path, jsonlite::to_string_pretty(&report))
        .expect("failed to write bench artifact");
    println!(
        "recovery: crawl {wal_off_ms} ms plain vs {wal_on_ms} ms journaled \
         ({overhead_ratio:.3}x, {} appends, {} fsyncs); killed at op {kill_at}/{total_ops}, \
         resumed in {resume_ms} ms ({replayed_records} records replayed, {not_modified} \
         revalidations) -> {}",
        on_counter("wal.appends"),
        on_counter("wal.fsyncs"),
        out_path.display()
    );

    let mut ok = true;
    if overhead_ratio > 1.25 {
        eprintln!("recovery: FAIL — journaling overhead {overhead_ratio:.3}x exceeds 1.25x");
        ok = false;
    }
    if !journal_invisible {
        eprintln!("recovery: FAIL — journaled store differs from the plain crawl's");
        ok = false;
    }
    if !resume_identical {
        eprintln!("recovery: FAIL — resumed store differs from the uninterrupted run's");
        ok = false;
    }
    if refetched_completed > 0 {
        eprintln!(
            "recovery: FAIL — resume re-fetched {refetched_completed} pages from completed phases"
        );
        ok = false;
    }
    if not_modified == 0 {
        eprintln!("recovery: FAIL — resume never revalidated the interrupted phase's progress");
        ok = false;
    }
    if replayed_records == 0 {
        eprintln!("recovery: FAIL — resume replayed nothing from the journal");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
}
