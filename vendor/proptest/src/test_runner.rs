//! Deterministic per-test RNG. Each property seeds from a hash of its own
//! name, so runs are reproducible without any environment plumbing.

/// Number of random cases drawn per property.
pub const CASES: usize = 64;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary 64-bit value (expanded via SplitMix64).
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        Self {
            s: [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ],
        }
    }

    /// Seed from a test name (FNV-1a hash), giving each property its own
    /// stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)` via widening multiply; `n` must be > 0.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform length in `[lo, hi]` (inclusive).
    pub fn len_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("prop_x");
        let mut b = TestRng::deterministic("prop_x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::deterministic("prop_x");
        let mut b = TestRng::deterministic("prop_y");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = TestRng::from_seed(9);
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
