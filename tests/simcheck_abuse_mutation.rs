//! Mutation smoke for the abuse family: a deliberately injected
//! accounting bug in the rate limiter must be caught by the `abuse.*`
//! oracles, shrink to a minimal still-armed scenario, and reproduce
//! deterministically from its replay file.
//!
//! The mutation lives behind the `SIMCHECK_MUTATE` environment variable
//! in [`platform::RateLimiter`]: `skip_penalty_counter` skips the
//! `RateStats::penalized` increment while the 429 response still carries
//! the `X-RateLimit-Penalized` header, so the limiter's books diverge
//! from client-observed outcomes and `abuse.reconcile` must trip. The
//! variable is read once per process, which is why this test owns its
//! own integration-test binary (separate from `simcheck_mutation.rs`,
//! which arms a different mutation) and sets it before anything serves.

use dissenter_repro::simcheck::{check_scenario_family, replay, shrink, Family, Scenario};

#[test]
fn injected_penalty_undercount_is_caught_shrunk_and_replayed() {
    // Must happen before the first rate-limit check in this process.
    std::env::set_var("SIMCHECK_MUTATE", "skip_penalty_counter");

    // The greedy-scraper profile hammers the rate-limited route hardest,
    // but the oracle's unconditional greedy burst means any armed
    // profile would catch this; pin the profile for determinism.
    let sc = Scenario {
        scale: 0.001,
        workers: 2,
        svm: false,
        abuse_profile: 0,
        abuse_conns: 3,
        ..Scenario::from_seed(0xAB5E)
    };

    // 1. Detection.
    let failure = check_scenario_family(&sc, Family::Abuse)
        .expect_err("the mutated limiter must trip the abuse oracle");
    assert_eq!(failure.check, "abuse.reconcile", "caught by book reconciliation: {failure}");
    assert!(failure.detail.contains("penalized"), "{failure}");

    // 2. Shrinking preserves the failure and keeps the herd armed.
    let (min, min_failure) =
        shrink::shrink(sc, failure, |c| check_scenario_family(c, Family::Abuse).err());
    assert_eq!(min_failure.check, "abuse.reconcile", "{min_failure}");
    assert!(min.abuse_conns > 0, "the load-bearing herd survives shrinking");
    assert_eq!(min.abuse_conns, 1, "and thins to a single connection");
    assert_eq!(min.workers, 1, "irrelevant knobs still shrink");

    // 3. The replay file round-trips and still reproduces the failure.
    let dir =
        std::env::temp_dir().join(format!("simcheck-abuse-mutation-{}", std::process::id()));
    let path =
        replay::write(&dir, &replay::Replay::new(min, &min_failure)).expect("replay writes");
    let loaded = replay::read(&path).expect("replay reads");
    let replayed = check_scenario_family(&loaded.scenario, Family::Abuse)
        .expect_err("the replayed scenario must reproduce the failure deterministically");
    assert_eq!(replayed.check, "abuse.reconcile", "{replayed}");
    std::fs::remove_dir_all(&dir).ok();
}
