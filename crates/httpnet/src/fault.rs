//! Deterministic fault injection for the server.
//!
//! Mirrors the fault-injection philosophy of the smoltcp examples
//! (`--drop-chance` etc.): adverse network conditions are a first-class
//! test input. The crawler's §4.3.1 validation ("we monitor request
//! timeouts and re-request missed pages") is tested against these faults.
//!
//! The matrix covers the failure shapes a long-running crawl actually
//! meets: silent connection drops, 500s, truncated bodies, mid-line
//! resets, slow-loris stalls that outlive the client read timeout,
//! garbage status lines, and 429/503 throttling responses that advertise
//! a `Retry-After`. Every decision is drawn from one seeded generator, so
//! a `(seed, FaultConfig)` pair replays the identical fault sequence.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Fault-injection configuration. All probabilities in `[0, 1]` and
/// summing to at most 1; the leftover mass proceeds normally.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability of closing the connection without responding (the
    /// client observes EOF / reset).
    pub drop_prob: f64,
    /// Probability of replying `500 Internal Server Error`.
    pub error_prob: f64,
    /// Probability of sending correct headers but only part of the
    /// promised body, then closing.
    pub truncate_prob: f64,
    /// Probability of closing mid-status-line (a few raw bytes, then
    /// reset).
    pub reset_prob: f64,
    /// Probability of stalling for [`stall`](Self::stall) before the
    /// (otherwise normal) response — a slow-loris server.
    pub stall_prob: f64,
    /// Probability of replying with a garbage, non-HTTP status line.
    pub malformed_prob: f64,
    /// Probability of replying `429 Too Many Requests` with a
    /// `Retry-After` header.
    pub rate_limit_prob: f64,
    /// Probability of replying `503 Service Unavailable` with a
    /// `Retry-After` header.
    pub unavailable_prob: f64,
    /// How long a stalled response sleeps before completing.
    pub stall: Duration,
    /// `Retry-After` value advertised by 429/503 responses. Written in
    /// seconds; fractional values are allowed so tests stay fast.
    pub retry_after: Duration,
    /// Fixed extra latency added to every response.
    pub base_latency: Duration,
    /// Additional uniform random latency in `[0, jitter]`.
    pub jitter: Duration,
    /// RNG seed (faults are reproducible run-to-run).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            error_prob: 0.0,
            truncate_prob: 0.0,
            reset_prob: 0.0,
            stall_prob: 0.0,
            malformed_prob: 0.0,
            rate_limit_prob: 0.0,
            unavailable_prob: 0.0,
            stall: Duration::from_millis(200),
            retry_after: Duration::from_millis(50),
            base_latency: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// The combined "storm": every fault class at once, at rates a
    /// retrying crawler should still ride out.
    pub fn storm(seed: u64) -> Self {
        Self {
            drop_prob: 0.06,
            error_prob: 0.06,
            truncate_prob: 0.04,
            reset_prob: 0.04,
            stall_prob: 0.03,
            malformed_prob: 0.04,
            rate_limit_prob: 0.05,
            unavailable_prob: 0.04,
            seed,
            ..Self::default()
        }
    }

    /// Sum of all fault probabilities (the chance a request does *not*
    /// proceed cleanly).
    pub fn total_fault_prob(&self) -> f64 {
        self.drop_prob
            + self.error_prob
            + self.truncate_prob
            + self.reset_prob
            + self.stall_prob
            + self.malformed_prob
            + self.rate_limit_prob
            + self.unavailable_prob
    }

    /// Validate ranges.
    pub fn validate(&self) {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("error_prob", self.error_prob),
            ("truncate_prob", self.truncate_prob),
            ("reset_prob", self.reset_prob),
            ("stall_prob", self.stall_prob),
            ("malformed_prob", self.malformed_prob),
            ("rate_limit_prob", self.rate_limit_prob),
            ("unavailable_prob", self.unavailable_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of range");
        }
        assert!(
            self.total_fault_prob() <= 1.0 + 1e-9,
            "fault probabilities sum above 1"
        );
    }
}

/// Per-request fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Respond normally (after `delay`).
    Proceed(Duration),
    /// Close the connection without responding (after `delay`).
    Drop(Duration),
    /// Respond 500 (after `delay`).
    Error(Duration),
    /// Send correct headers, part of the body, then close (after `delay`).
    Truncate(Duration),
    /// Close mid-status-line (after `delay`).
    Reset(Duration),
    /// Respond normally, but only after the contained (stall-inflated)
    /// delay — long enough to outlive an impatient client's read timeout.
    Stall(Duration),
    /// Send a garbage, non-HTTP status line (after `delay`).
    Malformed(Duration),
    /// Respond `429 Too Many Requests` + `Retry-After` (after `delay`).
    RateLimit(Duration),
    /// Respond `503 Service Unavailable` + `Retry-After` (after `delay`).
    Unavailable(Duration),
}

/// Stateful fault injector (thread-safe).
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: Mutex<StdRng>,
}

impl FaultInjector {
    /// Build from config.
    pub fn new(config: FaultConfig) -> Self {
        config.validate();
        Self { config, rng: Mutex::new(StdRng::seed_from_u64(config.seed)) }
    }

    /// The configuration decisions are drawn from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decide the fate of the next request. Exactly one jitter draw (when
    /// jitter is configured) and one fault roll are consumed per call, so
    /// the decision sequence is a pure function of `(seed, config)`.
    pub fn decide(&self) -> FaultAction {
        let mut rng = self.rng.lock();
        let jitter_nanos = if self.config.jitter.is_zero() {
            0
        } else {
            rng.gen_range(0..=self.config.jitter.as_nanos() as u64)
        };
        let delay = self.config.base_latency + Duration::from_nanos(jitter_nanos);
        let roll: f64 = rng.gen();
        let c = &self.config;
        // Partition [0, 1): each fault class owns a contiguous band.
        let mut edge = 0.0;
        let mut band = |p: f64| {
            edge += p;
            roll < edge
        };
        if band(c.drop_prob) {
            FaultAction::Drop(delay)
        } else if band(c.error_prob) {
            FaultAction::Error(delay)
        } else if band(c.truncate_prob) {
            FaultAction::Truncate(delay)
        } else if band(c.reset_prob) {
            FaultAction::Reset(delay)
        } else if band(c.stall_prob) {
            FaultAction::Stall(delay + c.stall)
        } else if band(c.malformed_prob) {
            FaultAction::Malformed(delay)
        } else if band(c.rate_limit_prob) {
            FaultAction::RateLimit(delay)
        } else if band(c.unavailable_prob) {
            FaultAction::Unavailable(delay)
        } else {
            FaultAction::Proceed(delay)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_always_proceeds() {
        let f = FaultInjector::new(FaultConfig::none());
        for _ in 0..100 {
            assert_eq!(f.decide(), FaultAction::Proceed(Duration::ZERO));
        }
    }

    #[test]
    fn drop_rate_approximates_config() {
        let f = FaultInjector::new(FaultConfig { drop_prob: 0.3, ..Default::default() });
        let drops = (0..10_000)
            .filter(|_| matches!(f.decide(), FaultAction::Drop(_)))
            .count();
        assert!((2_500..3_500).contains(&drops), "{drops}");
    }

    #[test]
    fn error_and_drop_are_disjoint() {
        let f = FaultInjector::new(FaultConfig {
            drop_prob: 0.5,
            error_prob: 0.5,
            ..Default::default()
        });
        for _ in 0..1000 {
            assert!(!matches!(f.decide(), FaultAction::Proceed(_)));
        }
    }

    #[test]
    fn every_band_is_reachable() {
        let f = FaultInjector::new(FaultConfig {
            drop_prob: 0.1,
            error_prob: 0.1,
            truncate_prob: 0.1,
            reset_prob: 0.1,
            stall_prob: 0.1,
            malformed_prob: 0.1,
            rate_limit_prob: 0.1,
            unavailable_prob: 0.1,
            seed: 5,
            ..Default::default()
        });
        let mut seen = [false; 9];
        for _ in 0..2_000 {
            let idx = match f.decide() {
                FaultAction::Proceed(_) => 0,
                FaultAction::Drop(_) => 1,
                FaultAction::Error(_) => 2,
                FaultAction::Truncate(_) => 3,
                FaultAction::Reset(_) => 4,
                FaultAction::Stall(_) => 5,
                FaultAction::Malformed(_) => 6,
                FaultAction::RateLimit(_) => 7,
                FaultAction::Unavailable(_) => 8,
            };
            seen[idx] = true;
        }
        assert_eq!(seen, [true; 9]);
    }

    #[test]
    fn stall_delay_includes_stall_duration() {
        let f = FaultInjector::new(FaultConfig {
            stall_prob: 1.0,
            stall: Duration::from_millis(150),
            base_latency: Duration::from_millis(5),
            ..Default::default()
        });
        match f.decide() {
            FaultAction::Stall(d) => assert_eq!(d, Duration::from_millis(155)),
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn latency_within_bounds() {
        let f = FaultInjector::new(FaultConfig {
            base_latency: Duration::from_millis(5),
            jitter: Duration::from_millis(10),
            ..Default::default()
        });
        for _ in 0..100 {
            match f.decide() {
                FaultAction::Proceed(d) | FaultAction::Drop(d) | FaultAction::Error(d) => {
                    assert!(d >= Duration::from_millis(5) && d <= Duration::from_millis(15));
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FaultInjector::new(FaultConfig { drop_prob: 0.5, seed: 42, ..Default::default() });
        let b = FaultInjector::new(FaultConfig { drop_prob: 0.5, seed: 42, ..Default::default() });
        for _ in 0..100 {
            assert_eq!(a.decide(), b.decide());
        }
    }

    #[test]
    fn deterministic_across_full_matrix() {
        // Same (seed, config) must replay the identical decision sequence
        // even with every band and jitter active.
        let cfg = FaultConfig {
            jitter: Duration::from_micros(500),
            ..FaultConfig::storm(97)
        };
        let a = FaultInjector::new(cfg);
        let b = FaultInjector::new(cfg);
        let seq_a: Vec<FaultAction> = (0..5_000).map(|_| a.decide()).collect();
        let seq_b: Vec<FaultAction> = (0..5_000).map(|_| b.decide()).collect();
        assert_eq!(seq_a, seq_b);
        // And a different seed must diverge somewhere.
        let c = FaultInjector::new(FaultConfig {
            jitter: Duration::from_micros(500),
            ..FaultConfig::storm(98)
        });
        let seq_c: Vec<FaultAction> = (0..5_000).map(|_| c.decide()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn storm_sums_below_one() {
        let s = FaultConfig::storm(1);
        s.validate();
        assert!(s.total_fault_prob() < 0.5, "storm must leave a success majority");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_panics() {
        FaultInjector::new(FaultConfig { drop_prob: 1.5, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "sum above 1")]
    fn overfull_partition_panics() {
        FaultInjector::new(FaultConfig {
            drop_prob: 0.6,
            error_prob: 0.6,
            ..Default::default()
        });
    }
}
