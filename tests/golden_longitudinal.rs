//! Golden-file regression test for the longitudinal windowed outputs:
//! the growth-curve and per-window toxicity CSVs of a fixed-seed
//! composed sweep study are pinned byte-for-byte under `tests/golden/`,
//! and the same bytes must come out of the pipeline at `workers = 1`
//! and `workers = 8` — the worker-invariance contract extended to the
//! sweep engine (per-epoch seed streams, windowed scoring, and the
//! drift schedule are all keyed by stable ids, never by shard
//! geometry).
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_longitudinal
//! ```
//!
//! then review the CSV diffs under `tests/golden/` like any other code
//! change.

use dissenter_repro::dissenter_core::longitudinal::{run_composed, LongitudinalConfig};
use dissenter_repro::dissenter_core::Study as DissenterStudy;
use dissenter_repro::synth::config::Scale;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");

fn check_golden(name: &str, rendered: &str) {
    let path = format!("{GOLDEN_DIR}/{name}");
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, rendered).expect("write golden file");
        println!("regenerated {path} ({} bytes)", rendered.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path}: {e}\n\
             regenerate with: UPDATE_GOLDEN=1 cargo test --test golden_longitudinal"
        )
    });
    if golden != *rendered {
        let first_diff = golden
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: golden {a:?} vs rendered {b:?}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: {} vs {}",
                    golden.lines().count(),
                    rendered.lines().count()
                )
            });
        panic!(
            "windowed output drifted from {name}\n  first divergence: {first_diff}\n\
             if intentional, regenerate with: UPDATE_GOLDEN=1 cargo test --test golden_longitudinal\n\
             and review the diff under tests/golden/"
        );
    }
}

fn config(workers: usize) -> LongitudinalConfig {
    let study = DissenterStudy::builder()
        .seed(0x10_6601)
        .scale(Scale::Custom(0.002))
        .workers(workers)
        .svm(false)
        .build()
        .expect("golden config is valid");
    LongitudinalConfig {
        study,
        epochs: 2,
        drift: 0.0,
        drift_seed: 0x10_6601,
        calibration: 64,
        durable_root: None,
        kill_sweep: None,
    }
}

#[test]
fn windowed_csvs_match_golden_files_at_one_and_eight_workers() {
    use dissenter_repro::analysis::windowed::{growth_csv, window_toxicity_csv};

    let serial = run_composed(&config(1));
    let growth = growth_csv(&serial.growth);
    let windows = window_toxicity_csv(&serial.windows);
    check_golden("longitudinal_growth_small.csv", &growth);
    check_golden("longitudinal_windows_small.csv", &windows);

    let sharded = run_composed(&config(8));
    assert_eq!(
        growth,
        growth_csv(&sharded.growth),
        "growth curve differs between workers=1 and workers=8"
    );
    assert_eq!(
        windows,
        window_toxicity_csv(&sharded.windows),
        "per-window toxicity differs between workers=1 and workers=8"
    );
}
