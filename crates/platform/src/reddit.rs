//! The Reddit mirror used for the §4.4.1 baseline.
//!
//! The paper queries Reddit for accounts matching known Dissenter
//! usernames (finding 56k matches, with an acknowledged false-positive
//! rate) and pulls their comment histories from Pushshift. We model
//! exactly what that needs: a username-keyed account table with per-account
//! comment lists.

use std::collections::HashMap;

/// Reddit account store.
///
/// Besides materialized comment texts, each account carries a *declared*
/// total comment count: the generator materializes only a capped sample of
/// texts per account (memory), while Figure 6's comment-ratio analysis
/// needs the full count — exactly the split between Pushshift metadata and
/// body downloads.
#[derive(Debug, Default, Clone)]
pub struct RedditDb {
    accounts: HashMap<String, Vec<String>>,
    declared: HashMap<String, u64>,
}

impl RedditDb {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an account (case-preserving, lookup is exact like Reddit's
    /// username semantics). Returns false if it already existed.
    pub fn create_account(&mut self, username: &str) -> bool {
        if self.accounts.contains_key(username) {
            return false;
        }
        self.accounts.insert(username.to_owned(), Vec::new());
        true
    }

    /// Append a comment to an account (creating it if needed).
    pub fn add_comment(&mut self, username: &str, text: String) {
        self.accounts.entry(username.to_owned()).or_default().push(text);
    }

    /// Does the username exist?
    pub fn exists(&self, username: &str) -> bool {
        self.accounts.contains_key(username)
    }

    /// Comment history (Pushshift-style full history), `None` if no account.
    pub fn comments(&self, username: &str) -> Option<&[String]> {
        self.accounts.get(username).map(Vec::as_slice)
    }

    /// Number of accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Total comments across accounts.
    pub fn total_comments(&self) -> usize {
        self.accounts.values().map(Vec::len).sum()
    }

    /// All usernames (unordered).
    pub fn usernames(&self) -> impl Iterator<Item = &str> {
        self.accounts.keys().map(String::as_str)
    }

    /// Set the declared (full) comment count for an account.
    pub fn set_declared(&mut self, username: &str, count: u64) {
        self.declared.insert(username.to_owned(), count);
    }

    /// Declared total comment count: the explicit value if set, otherwise
    /// the number of materialized texts.
    pub fn declared_count(&self, username: &str) -> Option<u64> {
        if let Some(&c) = self.declared.get(username) {
            return Some(c);
        }
        self.accounts.get(username).map(|v| v.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_query() {
        let mut r = RedditDb::new();
        assert!(r.create_account("alice"));
        assert!(!r.create_account("alice"));
        assert!(r.exists("alice"));
        assert!(!r.exists("Alice"), "lookup is exact");
        assert_eq!(r.comments("alice").unwrap().len(), 0);
        assert!(r.comments("bob").is_none());
    }

    #[test]
    fn declared_counts_override_materialized() {
        let mut r = RedditDb::new();
        r.add_comment("whale", "one".into());
        assert_eq!(r.declared_count("whale"), Some(1));
        r.set_declared("whale", 50_000);
        assert_eq!(r.declared_count("whale"), Some(50_000));
        assert_eq!(r.declared_count("nobody"), None);
    }

    #[test]
    fn comments_accumulate() {
        let mut r = RedditDb::new();
        r.add_comment("bob", "first".into());
        r.add_comment("bob", "second".into());
        assert_eq!(r.comments("bob").unwrap(), &["first", "second"]);
        assert_eq!(r.account_count(), 1);
        assert_eq!(r.total_comments(), 2);
    }
}
