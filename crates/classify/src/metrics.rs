//! Classification metrics: confusion matrix, per-class precision/recall/F1,
//! macro/micro averages (the paper reports F1 = 0.87 under 5-fold CV).

/// A k×k confusion matrix; `m[true][pred]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Confusion {
    k: usize,
    m: Vec<u64>,
}

impl Confusion {
    /// An empty k-class matrix.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "need at least two classes");
        Self { k, m: vec![0; k * k] }
    }

    /// Record one prediction.
    pub fn add(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.k && pred < self.k, "class out of range");
        self.m[truth * self.k + pred] += 1;
    }

    /// Count at `(truth, pred)`.
    pub fn get(&self, truth: usize, pred: usize) -> u64 {
        self.m[truth * self.k + pred]
    }

    /// Accumulate another matrix cell-wise (pooling per-fold confusions;
    /// counts are commutative, so merge order cannot affect the result).
    pub fn merge(&mut self, other: &Confusion) {
        assert_eq!(self.k, other.k, "class count mismatch");
        for (a, b) in self.m.iter_mut().zip(&other.m) {
            *a += b;
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.m.iter().sum()
    }

    /// Per-class row sums (true-label supports).
    pub fn row_sums(&self) -> Vec<u64> {
        (0..self.k).map(|t| (0..self.k).map(|p| self.get(t, p)).sum()).collect()
    }

    /// Per-class column sums (prediction counts).
    pub fn col_sums(&self) -> Vec<u64> {
        (0..self.k).map(|p| (0..self.k).map(|t| self.get(t, p)).sum()).collect()
    }

    /// Audit the matrix against an expected observation count: the cells
    /// must sum to `expected`, and the row and column marginals must both
    /// re-sum to the same grand total. Under k-fold CV every sample is
    /// validated exactly once, so the pooled matrix must account for the
    /// whole corpus — a dropped or double-counted fold shows up here.
    pub fn check_books(&self, expected: u64) -> Result<(), String> {
        let total = self.total();
        if total != expected {
            return Err(format!("confusion holds {total} observations, expected {expected}"));
        }
        let rows: u64 = self.row_sums().iter().sum();
        let cols: u64 = self.col_sums().iter().sum();
        if rows != total || cols != total {
            return Err(format!(
                "marginals disagree: rows {rows}, cols {cols}, total {total}"
            ));
        }
        Ok(())
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.k).map(|i| self.get(i, i)).sum();
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            correct as f64 / t as f64
        }
    }

    /// Precision for one class (0 when the class is never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.get(class, class);
        let predicted: u64 = (0..self.k).map(|t| self.get(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for one class (0 when the class never occurs).
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.get(class, class);
        let actual: u64 = (0..self.k).map(|p| self.get(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// Per-class F1.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class F1.
    pub fn macro_f1(&self) -> f64 {
        (0..self.k).map(|c| self.f1(c)).sum::<f64>() / self.k as f64
    }

    /// Support-weighted mean of per-class F1 — scikit-learn's
    /// `f1_score(average="weighted")`, the convention behind the paper's
    /// 0.87 on a heavily imbalanced corpus.
    pub fn weighted_f1(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (0..self.k)
            .map(|c| {
                let support: u64 = (0..self.k).map(|p| self.get(c, p)).sum();
                self.f1(c) * support as f64 / total as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Confusion {
        // 3 classes; diagonal-heavy.
        let mut c = Confusion::new(3);
        for _ in 0..8 {
            c.add(0, 0);
        }
        c.add(0, 1);
        c.add(0, 2);
        for _ in 0..15 {
            c.add(1, 1);
        }
        for _ in 0..5 {
            c.add(1, 0);
        }
        for _ in 0..20 {
            c.add(2, 2);
        }
        c
    }

    #[test]
    fn accuracy_matches_hand_count() {
        let c = sample();
        assert!((c.accuracy() - 43.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_class0() {
        let c = sample();
        // class 0: tp=8, predicted 0 = 8+5 = 13, actual = 10.
        assert!((c.precision(0) - 8.0 / 13.0).abs() < 1e-12);
        assert!((c.recall(0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn f1_harmonic_mean() {
        let c = sample();
        let p = c.precision(0);
        let r = c.recall(0);
        assert!((c.f1(0) - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier() {
        let mut c = Confusion::new(2);
        c.add(0, 0);
        c.add(1, 1);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.macro_f1(), 1.0);
        assert_eq!(c.weighted_f1(), 1.0);
    }

    #[test]
    fn degenerate_class_scores_zero() {
        let mut c = Confusion::new(3);
        c.add(0, 0);
        // Class 2 never occurs and is never predicted.
        assert_eq!(c.f1(2), 0.0);
        assert_eq!(c.precision(2), 0.0);
        assert_eq!(c.recall(2), 0.0);
    }

    #[test]
    fn weighted_f1_leans_on_majority() {
        // Majority class perfect, minority class awful.
        let mut c = Confusion::new(2);
        for _ in 0..90 {
            c.add(0, 0);
        }
        for _ in 0..10 {
            c.add(1, 0);
        }
        assert!(c.weighted_f1() > c.macro_f1());
    }

    #[test]
    fn marginals_reconcile() {
        let c = sample();
        assert_eq!(c.row_sums(), vec![10, 20, 20]);
        assert_eq!(c.col_sums(), vec![13, 16, 21]);
        assert_eq!(c.row_sums().iter().sum::<u64>(), c.total());
        assert_eq!(c.check_books(50), Ok(()));
        let err = c.check_books(49).unwrap_err();
        assert!(err.contains("expected 49"), "{err}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_add_panics() {
        Confusion::new(2).add(0, 5);
    }
}
