//! Rate limiting as the measured services exposed it.
//!
//! * Dissenter: HTTP headers advertise a 10-requests-per-minute limit —
//!   but the counter is **per-URL**, so a crawler that never re-requests a
//!   URL is unimpeded (§3.2). We reproduce that quirk exactly.
//! * Gab: exposes `X-RateLimit-Remaining` and a reset time; the paper's
//!   crawler throttles to 1 req/s and sleeps until reset when exhausted
//!   (§3.4).
//!
//! The limiter is keyed (per-URL or per-client) and driven by an explicit
//! clock value, keeping simulations deterministic.
//!
//! ## Hostile-burst accounting contract
//!
//! Production fronts share one limiter behind a mutex across many
//! connections, and hostile clients hammer it with clock samples taken
//! *before* the lock is acquired — so `now` values arrive out of order.
//! The limiter guarantees, for any interleaving:
//!
//! * every `check` lands in **exactly one** bucket — `allowed + denied ==
//!   checks` (a denied request decrements nothing, and nothing twice);
//! * a deny never consumes window budget (`used` is untouched);
//! * at most `limit` requests are admitted per fixed window per key;
//! * in penalty mode, each deny extends the key's lockout **once**, from
//!   that deny's own clock sample — re-checking while locked out cannot
//!   compound a single request into multiple extensions.
//!
//! [`RateStats`] exposes the totals so oracles can reconcile them against
//! client-observed responses.

use std::collections::HashMap;

/// Outcome of asking the limiter for a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// Request admitted; `remaining` slots left in the window.
    Allow {
        /// Requests left in the current window after this one.
        remaining: u32,
        /// When the window resets (absolute seconds).
        reset_at: u64,
    },
    /// Request rejected until `reset_at`.
    Deny {
        /// When the window resets (absolute seconds).
        reset_at: u64,
        /// True when this deny extended a greedy-client penalty lockout
        /// (the limiter was constructed [`RateLimiter::with_penalty`] and
        /// the key was re-requested while already denied).
        penalized: bool,
    },
}

impl RateDecision {
    /// Was the request admitted?
    pub fn allowed(&self) -> bool {
        matches!(self, RateDecision::Allow { .. })
    }
}

/// Running totals of every decision a limiter has made. `allowed +
/// denied` equals the number of `check` calls; `penalized` counts the
/// subset of denies that extended a penalty lockout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateStats {
    /// Requests admitted.
    pub allowed: u64,
    /// Requests rejected (includes the penalized subset).
    pub denied: u64,
    /// Denies that extended a greedy-client penalty lockout.
    pub penalized: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    window_start: u64,
    used: u32,
    /// Absolute second until which every request is denied outright.
    penalty_until: u64,
}

/// A fixed-window, keyed rate limiter with optional greedy-client
/// penalties.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    limit: u32,
    window_secs: u64,
    /// 0 disables penalties (legacy behavior). When positive, a request
    /// that is denied while the key is already denied pushes the key's
    /// lockout to `now + penalty_secs` — a scraper that ignores
    /// Retry-After keeps its own window shut while polite clients (who
    /// sleep until `reset_at`) sail through.
    penalty_secs: u64,
    state: HashMap<String, Entry>,
    stats: RateStats,
}

/// Test-only mutation failpoint (see `SIMCHECK_MUTATE` in simcheck): read
/// once per process so the hot path never re-queries the environment.
fn mutation(name: &str) -> bool {
    static ACTIVE: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    ACTIVE.get_or_init(|| std::env::var("SIMCHECK_MUTATE").ok()).as_deref() == Some(name)
}

impl RateLimiter {
    /// `limit` requests per `window_secs` per key.
    pub fn new(limit: u32, window_secs: u64) -> Self {
        assert!(limit > 0 && window_secs > 0, "limit and window must be positive");
        Self { limit, window_secs, penalty_secs: 0, state: HashMap::new(), stats: RateStats::default() }
    }

    /// Enable greedy-client penalties: a key denied while already denied
    /// has its lockout extended to `now + penalty_secs`.
    pub fn with_penalty(mut self, penalty_secs: u64) -> Self {
        self.penalty_secs = penalty_secs;
        self
    }

    /// Dissenter's advertised per-URL limit: 10 requests per minute.
    pub fn dissenter_per_url() -> Self {
        Self::new(10, 60)
    }

    /// Admit or reject a request for `key` at time `now`.
    pub fn check(&mut self, key: &str, now: u64) -> RateDecision {
        let penalty_secs = self.penalty_secs;
        let entry = self
            .state
            .entry(key.to_owned())
            .or_insert(Entry { window_start: now, used: 0, penalty_until: 0 });

        // An active penalty lockout denies outright — and the offending
        // request itself extends it. The extension is monotone (`max`) so
        // a stale clock sample never *shortens* an existing lockout.
        if entry.penalty_until > now {
            if penalty_secs > 0 {
                entry.penalty_until = entry.penalty_until.max(now + penalty_secs);
                self.stats.denied += 1;
                if !mutation("skip_penalty_counter") {
                    self.stats.penalized += 1;
                }
                return RateDecision::Deny { reset_at: entry.penalty_until, penalized: true };
            }
            self.stats.denied += 1;
            return RateDecision::Deny { reset_at: entry.penalty_until, penalized: false };
        }

        // Window rollover. `window_start` only moves forward: a stale
        // `now` (sampled before the lock under a concurrent burst) can
        // never re-open a window someone else already rolled.
        if now >= entry.window_start + self.window_secs {
            entry.window_start = now;
            entry.used = 0;
        }
        let reset_at = entry.window_start + self.window_secs;
        if entry.used >= self.limit {
            // Exhausted: deny without touching `used`. In penalty mode
            // this first deny *starts* the lockout; it is not counted as
            // penalized (the client had no Retry-After to ignore yet).
            if penalty_secs > 0 {
                entry.penalty_until = entry.penalty_until.max(now + penalty_secs);
                self.stats.denied += 1;
                return RateDecision::Deny {
                    reset_at: reset_at.max(entry.penalty_until),
                    penalized: false,
                };
            }
            self.stats.denied += 1;
            RateDecision::Deny { reset_at, penalized: false }
        } else {
            entry.used += 1;
            self.stats.allowed += 1;
            RateDecision::Allow { remaining: self.limit - entry.used, reset_at }
        }
    }

    /// The configured per-window limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Number of keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.state.len()
    }

    /// Running decision totals (`allowed + denied == checks`).
    pub fn stats(&self) -> RateStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_up_to_limit_then_denies() {
        let mut rl = RateLimiter::new(3, 60);
        assert!(rl.check("k", 0).allowed());
        assert!(rl.check("k", 1).allowed());
        assert!(rl.check("k", 2).allowed());
        let d = rl.check("k", 3);
        assert!(!d.allowed());
        assert_eq!(d, RateDecision::Deny { reset_at: 60, penalized: false });
    }

    #[test]
    fn remaining_counts_down() {
        let mut rl = RateLimiter::new(2, 60);
        assert_eq!(rl.check("k", 0), RateDecision::Allow { remaining: 1, reset_at: 60 });
        assert_eq!(rl.check("k", 0), RateDecision::Allow { remaining: 0, reset_at: 60 });
    }

    #[test]
    fn window_resets() {
        let mut rl = RateLimiter::new(1, 60);
        assert!(rl.check("k", 0).allowed());
        assert!(!rl.check("k", 30).allowed());
        assert!(rl.check("k", 60).allowed(), "new window admits again");
    }

    #[test]
    fn keys_are_independent_like_dissenters_per_url_counter() {
        // The §3.2 quirk: exhausting one URL's budget leaves others open.
        let mut rl = RateLimiter::dissenter_per_url();
        for i in 0..10 {
            assert!(rl.check("https://a.example/x", i).allowed());
        }
        assert!(!rl.check("https://a.example/x", 11).allowed());
        assert!(rl.check("https://a.example/y", 11).allowed());
        assert_eq!(rl.tracked_keys(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_panics() {
        RateLimiter::new(0, 60);
    }

    #[test]
    fn stats_reconcile_exactly() {
        let mut rl = RateLimiter::new(2, 60);
        for t in 0..10u64 {
            rl.check("k", t);
        }
        let s = rl.stats();
        assert_eq!(s.allowed + s.denied, 10, "every check lands in exactly one bucket");
        assert_eq!(s.allowed, 2);
        assert_eq!(s.denied, 8);
        assert_eq!(s.penalized, 0, "no penalty mode, no penalized denies");
    }

    #[test]
    fn penalty_extends_once_per_offense_and_never_shortens() {
        let mut rl = RateLimiter::new(1, 10).with_penalty(30);
        assert!(rl.check("k", 0).allowed());
        // Exhausted → deny that starts the lockout (not penalized).
        let d1 = rl.check("k", 1);
        assert_eq!(d1, RateDecision::Deny { reset_at: 31, penalized: false });
        // Hammering while locked out: each check is one penalized deny
        // extending from its own clock sample.
        let d2 = rl.check("k", 2);
        assert_eq!(d2, RateDecision::Deny { reset_at: 32, penalized: true });
        // A stale sample (now=1 < 2) must not shorten the lockout.
        let d3 = rl.check("k", 1);
        assert_eq!(d3, RateDecision::Deny { reset_at: 32, penalized: true });
        let s = rl.stats();
        assert_eq!((s.allowed, s.denied, s.penalized), (1, 3, 2));
        // Window would have rolled at 10 — but the lockout holds past it
        // (and this probe, being itself an offense, extends it to 45).
        assert!(!rl.check("k", 15).allowed(), "rollover must not wipe an active lockout");
        // Once the lockout expires the key gets a fresh window.
        assert!(rl.check("k", 50).allowed());
    }

    #[test]
    fn stale_now_cannot_reopen_a_rolled_window() {
        let mut rl = RateLimiter::new(2, 60);
        assert!(rl.check("k", 0).allowed());
        assert!(rl.check("k", 0).allowed());
        // Roll the window at t=60, spend the fresh budget.
        assert!(rl.check("k", 60).allowed());
        assert!(rl.check("k", 60).allowed());
        // A racing check whose clock was sampled before the roll must be
        // denied against the *new* window, not re-roll to an old one.
        let d = rl.check("k", 59);
        assert!(!d.allowed());
        let s = rl.stats();
        assert_eq!(s.allowed + s.denied, 5);
    }

    /// Satellite-2 counter-reconciliation test: hostile concurrent bursts
    /// with out-of-order clock samples through a shared mutex. For every
    /// interleaving: `allowed + denied == checks`, per-window admissions
    /// never exceed the limit, and penalized is a subset of denied.
    #[test]
    fn concurrent_burst_accounting_reconciles() {
        use std::sync::{Arc, Mutex};
        let rl = Arc::new(Mutex::new(RateLimiter::new(5, 2).with_penalty(3)));
        let threads = 8;
        let per_thread = 200;
        let mut joins = Vec::new();
        for tid in 0..threads {
            let rl = Arc::clone(&rl);
            joins.push(std::thread::spawn(move || {
                let mut observed = RateStats::default();
                for i in 0..per_thread {
                    // Jittered, non-monotone clock: threads race between
                    // sampling and locking.
                    let now = (i / 20) as u64 + (tid % 3) as u64;
                    let key = format!("k{}", i % 4);
                    match rl.lock().unwrap().check(&key, now) {
                        RateDecision::Allow { .. } => observed.allowed += 1,
                        RateDecision::Deny { penalized, .. } => {
                            observed.denied += 1;
                            if penalized {
                                observed.penalized += 1;
                            }
                        }
                    }
                }
                observed
            }));
        }
        let mut client_side = RateStats::default();
        for j in joins {
            let o = j.join().unwrap();
            client_side.allowed += o.allowed;
            client_side.denied += o.denied;
            client_side.penalized += o.penalized;
        }
        let server_side = rl.lock().unwrap().stats();
        let total = (threads * per_thread) as u64;
        assert_eq!(server_side.allowed + server_side.denied, total, "{server_side:?}");
        assert_eq!(server_side, client_side, "server books must equal client-observed responses");
        assert!(server_side.penalized <= server_side.denied);
    }
}
