#!/usr/bin/env bash
# Worker-sharding speedup bench: run the same fixed-seed study at
# workers=1 and workers=8, prove the deterministic report renders
# byte-identical, and emit the timing comparison as BENCH_PR3.json in
# the repo root. The ≥1.5x speedup floor is enforced by the bench
# itself, gated on the recorded CPU count (single-core hosts only
# record the ratio).
#
# Usage: scripts/bench_pr3.sh [extra speedup args, e.g. --scale 0.002]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p bench --bin speedup -- --out BENCH_PR3.json "$@"

# The artifact must parse and carry the headline sections.
python3 - <<'EOF'
import json
with open("BENCH_PR3.json") as f:
    report = json.load(f)
for key in ("cpus", "workers", "wall_ms_serial", "wall_ms_parallel",
            "speedup", "deterministic", "report_fnv1a64", "shards",
            "stages_us"):
    assert key in report, f"BENCH_PR3.json missing {key!r}"
assert report["deterministic"] is True, "render diverged across worker counts"
assert report["shards"], "no sharded stages recorded"
if report["cpus"] >= 4:
    assert report["speedup"] >= 1.5, f"speedup {report['speedup']} < 1.5"
print("BENCH_PR3.json OK:",
      f"{report['speedup']:.2f}x on {report['cpus']} cpu(s),",
      f"{len(report['shards'])} sharded stages,",
      f"report fnv1a64 {report['report_fnv1a64']}")
EOF
