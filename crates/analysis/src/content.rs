//! §4.2.2–§4.2.3 — YouTube content breakdown and comment languages.

use crawler::store::CrawlStore;
use std::collections::HashMap;
use textkit::langid::Lang;

/// §4.2.2 YouTube summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct YoutubeBreakdown {
    /// Total YouTube URLs crawled.
    pub total: usize,
    /// Count per kind ("video" / "user" / "channel" / "unknown").
    pub by_kind: Vec<(String, usize)>,
    /// Active items.
    pub active: usize,
    /// Unavailable items.
    pub unavailable: usize,
    /// Unavailability reasons.
    pub reasons: Vec<(String, usize)>,
    /// Active items with comments disabled on YouTube.
    pub comments_disabled: usize,
    /// Top content owners among active items `(owner, count, share%)`.
    pub top_owners: Vec<(String, usize, f64)>,
}

/// Compute the YouTube breakdown.
pub fn youtube_breakdown(store: &CrawlStore) -> YoutubeBreakdown {
    let mut b = YoutubeBreakdown { total: store.youtube.len(), ..YoutubeBreakdown::default() };
    let mut kinds: HashMap<String, usize> = HashMap::new();
    let mut reasons: HashMap<String, usize> = HashMap::new();
    let mut owners: HashMap<String, usize> = HashMap::new();
    for y in &store.youtube {
        *kinds.entry(y.kind.clone()).or_insert(0) += 1;
        if y.available {
            b.active += 1;
            if y.comments_disabled {
                b.comments_disabled += 1;
            }
            if let Some(o) = &y.owner {
                *owners.entry(o.clone()).or_insert(0) += 1;
            }
        } else {
            b.unavailable += 1;
            *reasons.entry(y.reason.clone().unwrap_or_else(|| "unknown".into())).or_insert(0) += 1;
        }
    }
    let sort = |m: HashMap<String, usize>| {
        let mut v: Vec<(String, usize)> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    };
    b.by_kind = sort(kinds);
    b.reasons = sort(reasons);
    let active = b.active.max(1);
    b.top_owners = sort(owners)
        .into_iter()
        .take(10)
        .map(|(o, c)| (o, c, 100.0 * c as f64 / active as f64))
        .collect();
    b
}

/// §4.2.3 language table: `(language code, count, share%)`, descending.
pub fn language_table(store: &CrawlStore) -> Vec<(Lang, usize, f64)> {
    let mut counts: HashMap<Lang, usize> = HashMap::new();
    let mut total = 0usize;
    for c in store.comments.values() {
        *counts.entry(textkit::detect(&c.text)).or_insert(0) += 1;
        total += 1;
    }
    let mut rows: Vec<(Lang, usize, f64)> = counts
        .into_iter()
        .map(|(l, n)| (l, n, 100.0 * n as f64 / total.max(1) as f64))
        .collect();
    // Tie-break equal counts by language code: `counts` is a hash map, so
    // without it the order of 1-comment languages varies run to run and
    // breaks the byte-identical report contract.
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.code().cmp(b.0.code())));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::store::{CrawledComment, CrawledYoutube, ShadowLabel};
    use ids::{EntityKind, ObjectIdGen};

    fn yt(kind: &str, available: bool, reason: Option<&str>, owner: Option<&str>, disabled: bool) -> CrawledYoutube {
        CrawledYoutube {
            url: "https://youtube.com/watch?v=x".into(),
            kind: kind.into(),
            available,
            reason: reason.map(str::to_owned),
            owner: owner.map(str::to_owned),
            comments_disabled: disabled,
        }
    }

    #[test]
    fn breakdown_counts() {
        let mut store = CrawlStore::default();
        store.youtube = vec![
            yt("video", true, None, Some("Fox News"), false),
            yt("video", true, None, Some("Fox News"), true),
            yt("video", false, Some("This video is private"), None, false),
            yt("channel", true, None, Some("CNN"), false),
        ];
        let b = youtube_breakdown(&store);
        assert_eq!(b.total, 4);
        assert_eq!(b.active, 3);
        assert_eq!(b.unavailable, 1);
        assert_eq!(b.comments_disabled, 1);
        assert_eq!(b.by_kind[0], ("video".to_string(), 3));
        assert_eq!(b.reasons[0].0, "This video is private");
        let fox = b.top_owners.iter().find(|(o, _, _)| o == "Fox News").unwrap();
        assert_eq!(fox.1, 2);
        assert!((fox.2 - 66.666).abs() < 0.01);
    }

    #[test]
    fn languages_detected() {
        let mut store = CrawlStore::default();
        let mut cg = ObjectIdGen::new(EntityKind::Comment, 0);
        let texts = [
            "the truth about the media and the world right now",
            "people always believe what they read about this country",
            "die wahrheit \u{fc}ber die medien und die regierung in deutschland",
        ];
        for t in texts {
            let id = cg.next(1);
            store.comments.insert(
                id,
                CrawledComment {
                    id,
                    url_id: cg.next(1),
                    author_id: cg.next(1),
                    parent: None,
                    text: t.into(),
                    created_at: 1,
                    label: ShadowLabel::Standard,
                },
            );
        }
        let rows = language_table(&store);
        assert_eq!(rows[0].0, Lang::En);
        assert_eq!(rows[0].1, 2);
        assert!(rows.iter().any(|r| r.0 == Lang::De));
        let total: f64 = rows.iter().map(|r| r.2).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }
}
