//! The simulated YouTube used by the §3.3 content crawl.
//!
//! Dissenter itself can't parse YouTube pages (titles show as "/watch"),
//! so the paper crawled 128k YouTube URLs with Selenium and classified
//! them: 125k videos / 2k channels / 1k users; 109k active vs 16k
//! unavailable, with removal reasons including private videos, terminated
//! accounts, and hate-speech-policy strikes; >10% of active videos had
//! comments disabled (§4.2.2). This module models that state space.

use std::collections::HashMap;

/// The three content types the paper distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YtKind {
    /// A single video page.
    Video,
    /// A user home page.
    User,
    /// A channel (collection of videos under one banner).
    Channel,
}

/// Why an item is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YtUnavailableReason {
    /// Generic "Video Unavailable".
    Generic,
    /// Private, requires permission.
    Private,
    /// Uploader's account was terminated.
    AccountTerminated,
    /// Removed for violating the hate-speech policy.
    HateSpeechPolicy,
}

/// Availability state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YtState {
    /// Page renders.
    Active {
        /// Video/channel title (requires JavaScript on the real site —
        /// which is why Dissenter's own parser misses it).
        title: String,
        /// Uploader / content-owner name (e.g. "Fox News", "CNN").
        owner: String,
        /// Comment section disabled by the owner or platform.
        comments_disabled: bool,
    },
    /// Page is gone.
    Unavailable(YtUnavailableReason),
}

/// One YouTube item keyed by its URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YtContent {
    /// Content type.
    pub kind: YtKind,
    /// Availability.
    pub state: YtState,
}

/// The YouTube content store.
#[derive(Debug, Default, Clone)]
pub struct YouTubeDb {
    by_url: HashMap<String, YtContent>,
}

impl YouTubeDb {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register content at a URL (overwrites earlier state — takedowns).
    pub fn put(&mut self, url: &str, content: YtContent) {
        self.by_url.insert(url.to_owned(), content);
    }

    /// Fetch content; `None` for URLs YouTube never hosted.
    pub fn get(&self, url: &str) -> Option<&YtContent> {
        self.by_url.get(url)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.by_url.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.by_url.is_empty()
    }

    /// Iterate `(url, content)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &YtContent)> {
        self.by_url.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Is a URL YouTube content (youtube.com or the youtu.be domain hack)?
pub fn is_youtube_url(url: &str) -> bool {
    let host = url
        .trim_start_matches("https://")
        .trim_start_matches("http://")
        .split('/')
        .next()
        .unwrap_or("");
    let host = host.strip_prefix("www.").unwrap_or(host);
    host == "youtube.com" || host == "youtu.be" || host == "m.youtube.com"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let mut db = YouTubeDb::new();
        let url = "https://youtube.com/watch?v=abc";
        db.put(
            url,
            YtContent {
                kind: YtKind::Video,
                state: YtState::Active {
                    title: "A video".into(),
                    owner: "Fox News".into(),
                    comments_disabled: false,
                },
            },
        );
        assert_eq!(db.len(), 1);
        // Takedown.
        db.put(
            url,
            YtContent {
                kind: YtKind::Video,
                state: YtState::Unavailable(YtUnavailableReason::HateSpeechPolicy),
            },
        );
        assert_eq!(db.len(), 1);
        match &db.get(url).unwrap().state {
            YtState::Unavailable(r) => assert_eq!(*r, YtUnavailableReason::HateSpeechPolicy),
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn unknown_url_is_none() {
        assert!(YouTubeDb::new().get("https://youtube.com/watch?v=zzz").is_none());
    }

    #[test]
    fn youtube_url_detection() {
        assert!(is_youtube_url("https://youtube.com/watch?v=1"));
        assert!(is_youtube_url("https://www.youtube.com/channel/UC1"));
        assert!(is_youtube_url("https://youtu.be/abc"));
        assert!(is_youtube_url("http://m.youtube.com/watch?v=2"));
        assert!(!is_youtube_url("https://youtube.com.evil.example/x"));
        assert!(!is_youtube_url("https://bitchute.com/video/1"));
    }
}
