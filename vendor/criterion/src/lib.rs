//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses. Benchmarks compile and run under `cargo bench`,
//! printing a single mean time per benchmark to stdout. Statistical
//! machinery (outlier detection, HTML reports, comparisons) is out of
//! scope — the goal is keeping the bench targets buildable and giving a
//! rough per-iteration number in an offline container.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time budget for one benchmark.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);

/// Units for reporting throughput alongside timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration (reported in binary units).
    Bytes(u64),
    /// Bytes processed per iteration (reported in decimal units).
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output `iter_batched` should amortize per timing pass.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup values; large batches.
    SmallInput,
    /// Large setup values; one setup per measured call.
    LargeInput,
    /// Exactly one setup per iteration.
    PerIteration,
}

/// Collects and runs benchmarks.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group; benchmarks report as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), None, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Attach throughput units to subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this runner sizes samples by time
    /// budget rather than count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.throughput, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench: {id:<48} (no iterations recorded)");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" {:>12.0} elem/s", n as f64 / (ns * 1e-9)),
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(" {:>12.1} MB/s", n as f64 / (ns * 1e-9) / 1e6)
        }
    });
    println!(
        "bench: {id:<48} {:>14} ns/iter{}",
        format_ns(ns),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, auto-scaling the iteration count to the sample
    /// budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate with a single call, then fill the budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Time `routine` over fresh values from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }
}

/// Bundle benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn group_plumbing_works() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(2));
        g.sample_size(10);
        let mut n = 0u32;
        g.bench_function("inner", |b| {
            n += 1;
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        });
        g.finish();
        assert_eq!(n, 1);
    }
}
