//! Discrete power-law fitting.
//!
//! §4.5.1: "Both the in (followers) and out (following) degree
//! distributions fit a power law distribution." We fit the exponent with
//! the standard continuous-approximation maximum-likelihood estimator
//! (Clauset, Shalizi & Newman 2009, eq. 3.7) over observations ≥ x_min,
//! and report a goodness proxy (mean absolute log-log residual of the
//! empirical CCDF against the fitted line).

/// A fitted power law `P(X ≥ x) ∝ x^{-(alpha-1)}` for `x ≥ xmin`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// MLE exponent α.
    pub alpha: f64,
    /// Lower cutoff used in the fit.
    pub xmin: f64,
    /// Number of observations ≥ xmin.
    pub n_tail: usize,
    /// Mean absolute residual in log-log CCDF space (lower = better).
    pub loglog_residual: f64,
}

/// Fit a power law to positive observations with a fixed `xmin`.
///
/// Returns `None` if fewer than 10 observations fall at or above `xmin`
/// (no meaningful fit).
pub fn fit_power_law(xs: &[f64], xmin: f64) -> Option<PowerLawFit> {
    assert!(xmin > 0.0, "xmin must be positive");
    let tail: Vec<f64> = xs.iter().copied().filter(|&x| x >= xmin).collect();
    if tail.len() < 10 {
        return None;
    }
    let n = tail.len() as f64;
    // Continuous MLE (Clauset et al. eq. 3.1). For integer degree data this
    // is the standard continuous approximation; the bias is negligible at
    // the tail sizes we fit (thousands of nodes).
    let sum_log: f64 = tail.iter().map(|&x| (x / xmin).ln().max(0.0)).sum();
    if sum_log <= 0.0 {
        return None;
    }
    let alpha = 1.0 + n / sum_log;

    // Goodness proxy: compare empirical CCDF to fitted slope in log space.
    // The CCDF is evaluated once per *distinct* value as `count(≥x)/n`:
    // walking raw indices (`1 - i/n`) hands every duplicate of a tied
    // value a different CCDF — only one of which is right — biasing the
    // residual on integer degree data, where ties dominate.
    let mut sorted = tail.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mut resid = 0.0;
    let mut count = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let x = sorted[i];
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == x {
            j += 1;
        }
        if x > xmin {
            let ccdf = (sorted.len() - i) as f64 / n; // exact fraction ≥ x
            let predicted = -(alpha - 1.0) * (x / xmin).ln();
            resid += (ccdf.ln() - predicted).abs();
            count += 1;
        }
        i = j;
    }
    let loglog_residual = if count > 0 { resid / count as f64 } else { 0.0 };
    Some(PowerLawFit { alpha, xmin, n_tail: tail.len(), loglog_residual })
}

/// Degree-frequency pairs `(degree, count)` for a log-log scatter like
/// Figure 9a's axes. Zero degrees are collected separately (log undefined).
pub fn degree_frequencies(degrees: &[u64]) -> (Vec<(u64, usize)>, usize) {
    use std::collections::BTreeMap;
    let mut freq: BTreeMap<u64, usize> = BTreeMap::new();
    let mut zeros = 0usize;
    for &d in degrees {
        if d == 0 {
            zeros += 1;
        } else {
            *freq.entry(d).or_insert(0) += 1;
        }
    }
    (freq.into_iter().collect(), zeros)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic power-law sample via inverse-CDF over a uniform grid.
    fn power_sample(alpha: f64, xmin: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                xmin * (1.0 - u).powf(-1.0 / (alpha - 1.0))
            })
            .collect()
    }

    #[test]
    fn recovers_known_exponent() {
        for &alpha in &[1.8, 2.2, 3.0] {
            let xs = power_sample(alpha, 1.0, 20_000);
            let fit = fit_power_law(&xs, 1.0).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.15,
                "alpha {alpha} fitted {}",
                fit.alpha
            );
        }
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(fit_power_law(&[1.0, 2.0, 3.0], 1.0).is_none());
    }

    #[test]
    fn xmin_filters_tail() {
        let mut xs = power_sample(2.5, 1.0, 5_000);
        xs.extend(vec![0.1; 5_000]); // sub-xmin mass ignored
        let fit = fit_power_law(&xs, 1.0).unwrap();
        assert_eq!(fit.n_tail, 5_000);
        assert!((fit.alpha - 2.5).abs() < 0.2);
    }

    #[test]
    fn power_law_data_has_low_residual() {
        let xs = power_sample(2.2, 1.0, 10_000);
        let fit = fit_power_law(&xs, 1.0).unwrap();
        assert!(fit.loglog_residual < 0.2, "residual {}", fit.loglog_residual);
    }

    #[test]
    fn uniform_data_has_high_residual() {
        let xs: Vec<f64> = (1..=10_000).map(|i| 1.0 + i as f64 / 10_000.0).collect();
        let fit = fit_power_law(&xs, 1.0).unwrap();
        let pl = fit_power_law(&power_sample(2.2, 1.0, 10_000), 1.0).unwrap();
        assert!(
            fit.loglog_residual > pl.loglog_residual,
            "uniform {} vs power {}",
            fit.loglog_residual,
            pl.loglog_residual
        );
    }

    #[test]
    fn tied_observations_share_one_ccdf_point() {
        // Integer degrees with heavy ties. CCDF at each distinct value is
        // count(≥x)/n: for [1×6, 2×3, 4×1], P(X≥2) = 4/10 and
        // P(X≥4) = 1/10, regardless of how the ties are indexed.
        let xs: Vec<f64> = [vec![1.0; 6], vec![2.0; 3], vec![4.0; 1]].concat();
        let fit = fit_power_law(&xs, 1.0).expect("n == 10 tail");
        let alpha = fit.alpha;
        let expect = |x: f64, ccdf: f64| (ccdf.ln() - (-(alpha - 1.0) * x.ln())).abs();
        let want = (expect(2.0, 0.4) + expect(4.0, 0.1)) / 2.0;
        assert!(
            (fit.loglog_residual - want).abs() < 1e-12,
            "residual {} want {want}",
            fit.loglog_residual
        );
    }

    #[test]
    fn residual_is_invariant_under_duplication() {
        // Repeating every observation k times changes neither the distinct
        // values nor their CCDF fractions, so the residual must not move.
        // The old per-index CCDF walked duplicates to different heights
        // and failed this.
        let base = power_sample(2.3, 1.0, 500).iter().map(|x| x.round()).collect::<Vec<_>>();
        let tripled: Vec<f64> = base.iter().flat_map(|&x| [x, x, x]).collect();
        let f1 = fit_power_law(&base, 1.0).unwrap();
        let f3 = fit_power_law(&tripled, 1.0).unwrap();
        assert!((f1.alpha - f3.alpha).abs() < 1e-12);
        assert!(
            (f1.loglog_residual - f3.loglog_residual).abs() < 1e-9,
            "{} vs {}",
            f1.loglog_residual,
            f3.loglog_residual
        );
    }

    #[test]
    fn degree_frequencies_counts() {
        let (freq, zeros) = degree_frequencies(&[0, 0, 1, 1, 1, 5]);
        assert_eq!(zeros, 2);
        assert_eq!(freq, vec![(1, 3), (5, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_xmin_panics() {
        fit_power_law(&[1.0], 0.0);
    }
}
