#!/usr/bin/env bash
# Longitudinal sweep bench: run the same evolving-world study as
# composed incremental sweeps and as a one-shot retrospective crawl,
# emitted as BENCH_PR9.json in the repo root. The sweepbench binary
# self-validates: it exits nonzero unless every artifact (render,
# windowed CSVs, figure CSVs, persisted JSONL mirror) is byte-identical
# between the two modes at nonzero scorer drift, every incremental
# sweep finishes within 1.5x the one-shot crawl wall-clock despite
# covering a strictly larger world, every post-base sweep answers more
# requests with 304s than the base sweep (and at least a quarter of its
# requests from cache), and the drift boundary is detected, rescored on
# a nonempty calibration sample, and flagged.
#
# Usage: scripts/bench_pr9.sh [extra sweepbench args, e.g. --epochs 3]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p bench --bin sweepbench -- --out BENCH_PR9.json "$@"

# The artifact must parse and carry the headline sections.
python3 - <<'EOF'
import json
with open("BENCH_PR9.json") as f:
    report = json.load(f)
for key in ("config", "one_shot", "composed", "oracle", "drift"):
    assert key in report, f"BENCH_PR9.json missing {key!r}"
one_shot = report["one_shot"]
assert one_shot["crawl_wall_ms"] > 0, "one-shot crawl wall missing"
composed = report["composed"]
sweeps = composed["sweeps"]
assert len(sweeps) == report["config"]["epochs"] + 1, "one sweep per window"
gate = one_shot["crawl_wall_ms"] * composed["sweep_gate_ratio"] + 250.0
base = sweeps[0]
for s in sweeps[1:]:
    assert s["wall_ms"] <= gate, \
        f"sweep {s['sweep']}: {s['wall_ms']:.0f} ms over gate {gate:.0f} ms"
    assert s["not_modified"] > base["not_modified"], \
        f"sweep {s['sweep']}: no revalidation reuse over the base sweep"
    assert s["not_modified_fraction"] >= 0.25, \
        f"sweep {s['sweep']}: 304 fraction {s['not_modified_fraction']:.2f} < 0.25"
oracle = report["oracle"]
assert oracle["equal"] is True, "composed and one-shot artifacts differ"
assert oracle["artifacts"] > 0 and oracle["bytes_compared"] > 0, "empty oracle"
drift = report["drift"]
assert drift["boundaries"] == 1, f"expected 1 version boundary, got {drift['boundaries']}"
assert drift["calibration_n"] > 0, "empty calibration sample"
assert drift["max_abs_comment_delta"] > 0, "drift moved no calibration comment"
assert drift["flagged"] is True, "drift boundary not flagged"
worst = max(s["ratio_to_one_shot"] for s in sweeps[1:])
print("BENCH_PR9.json OK:",
      f"one-shot {one_shot['crawl_wall_ms']:.0f} ms,",
      f"worst incremental sweep {worst:.2f}x,",
      f"best 304 fraction {max(s['not_modified_fraction'] for s in sweeps[1:]):.0%},",
      f"{oracle['artifacts']} artifacts equal ({oracle['bytes_compared']} bytes),",
      f"drift |delta| {drift['max_abs_comment_delta']:.4f} flagged in window {drift['window']}")
EOF
