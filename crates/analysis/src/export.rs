//! CSV export of every figure's plot series.
//!
//! `repro --export <dir>` writes one file per artifact so the paper's
//! plots can be regenerated with any plotting tool. All series are plain
//! `x,y`-style CSV with a header row; files are deterministic for a fixed
//! world seed.

use crate::report::StudyReport;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Write every figure's series into `dir` (created if missing).
/// Returns the list of files written.
pub fn export_csv(report: &StudyReport, dir: &Path) -> io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut emit = |name: &str, contents: String| -> io::Result<()> {
        std::fs::write(dir.join(name), contents)?;
        written.push(name.to_owned());
        Ok(())
    };

    // Fig. 2: Gab ID vs creation epoch.
    {
        let mut s = String::from("gab_id,created_epoch\n");
        for &(id, t) in &report.gab_growth.series {
            let _ = writeln!(s, "{id},{t}");
        }
        emit("fig2_gab_growth.csv", s)?;
    }

    // Fig. 3: activity concentration curve.
    {
        let mut s = String::from("user_fraction,comment_fraction\n");
        for &(uf, cf) in &report.activity.curve {
            let _ = writeln!(s, "{uf:.6},{cf:.6}");
        }
        emit("fig3_concentration.csv", s)?;
    }

    // Table 1.
    {
        let mut s = String::from("flag,count,percent\n");
        for r in &report.table1.1 {
            let _ = writeln!(s, "{},{},{:.4}", r.name, r.count, r.percent);
        }
        emit("table1_flags.csv", s)?;
    }

    // Table 2.
    {
        let mut s = String::from("kind,key,count,percent\n");
        for r in &report.tlds {
            let _ = writeln!(s, "tld,{},{},{:.4}", r.key, r.count, r.percent);
        }
        for r in &report.domains {
            let _ = writeln!(s, "domain,{},{},{:.4}", r.key, r.count, r.percent);
        }
        emit("table2_domains.csv", s)?;
    }

    // Fig. 4: three models × three populations, CDF curves.
    {
        let mut s = String::from("model,population,x,cdf\n");
        let mut rows = |model: &str, pop: &str, e: &stats::EcdfSketch| {
            for (x, y) in e.curve(101) {
                let _ = writeln!(s, "{model},{pop},{x:.4},{y:.6}");
            }
        };
        for (pop, c) in [
            ("all", &report.figure4.all),
            ("nsfw", &report.figure4.nsfw),
            ("offensive", &report.figure4.offensive),
        ] {
            rows("likely_to_reject", pop, &c.likely_to_reject);
            rows("obscene", pop, &c.obscene);
            rows("severe_toxicity", pop, &c.severe_toxicity);
        }
        emit("fig4_shadow_cdfs.csv", s)?;
    }

    // Fig. 5: per-URL vote/toxicity points.
    {
        let mut s = String::from("net_votes,mean_severe,median_severe,comments\n");
        for p in &report.figure5.points {
            let _ = writeln!(
                s,
                "{},{:.6},{:.6},{}",
                p.net_votes, p.mean_severe, p.median_severe, p.comments
            );
        }
        emit("fig5_votes.csv", s)?;
    }

    // Fig. 6: comment ratios.
    {
        let mut s = String::from("rank,ratio\n");
        for (i, r) in report.comment_ratio.ratios.iter().enumerate() {
            let _ = writeln!(s, "{i},{r:.6}");
        }
        emit("fig6_comment_ratios.csv", s)?;
    }

    // Fig. 7: per-dataset CDFs for the three models.
    {
        let mut s = String::from("model,dataset,x,cdf\n");
        for d in &report.figure7 {
            for (model, e) in [
                ("likely_to_reject", &d.likely_to_reject),
                ("severe_toxicity", &d.severe_toxicity),
                ("attack_on_author", &d.attack_on_author),
            ] {
                for (x, y) in e.curve(101) {
                    let _ = writeln!(s, "{model},{},{x:.4},{y:.6}", d.name);
                }
            }
        }
        emit("fig7_communities.csv", s)?;
    }

    // Fig. 8a summary + 8b curves.
    {
        let mut s = String::from("bias,n,mean,median\n");
        for (b, d) in &report.figure8.severe_by_bias {
            let _ = writeln!(s, "{},{},{:.6},{:.6}", b.label(), d.n(), d.mean(), d.median());
        }
        emit("fig8a_severe_by_bias.csv", s)?;
        let mut s = String::from("bias,x,cdf\n");
        for (b, e) in &report.figure8.attack_by_bias {
            for (x, y) in e.curve(101) {
                let _ = writeln!(s, "{},{x:.4},{y:.6}", b.label());
            }
        }
        emit("fig8b_attack_by_bias.csv", s)?;
    }

    // Fig. 9a scatter + 9b/9c toxicity-by-degree.
    {
        let mut s = String::from("in_degree,out_degree\n");
        for &(i, o) in &report.social.degree_scatter {
            let _ = writeln!(s, "{i},{o}");
        }
        emit("fig9a_degrees.csv", s)?;
        let mut s = String::from("axis,degree_decade,mean,median\n");
        for (bin, mean, median) in &report.social.toxicity_by_followers {
            let label = bin.map(|b| format!("1e{b}")).unwrap_or_else(|| "0".into());
            let _ = writeln!(s, "followers,{label},{mean:.6},{median:.6}");
        }
        for (bin, mean, median) in &report.social.toxicity_by_following {
            let label = bin.map(|b| format!("1e{b}")).unwrap_or_else(|| "0".into());
            let _ = writeln!(s, "following,{label},{mean:.6},{median:.6}");
        }
        emit("fig9bc_toxicity_by_degree.csv", s)?;
    }

    Ok(written)
}

#[cfg(test)]
mod tests {
    // Exercised via the workspace integration test `tests/export_csv.rs`,
    // which runs a full study and checks every emitted file.
}
