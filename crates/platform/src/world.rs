//! The composed world: one user table, four services, baseline corpora.

use crate::dissenter::DissenterDb;
use crate::gab::GabDb;
use crate::model::{BaselineCorpus, User};
use crate::reddit::RedditDb;
use crate::youtube::YouTubeDb;
use ids::ObjectId;
use std::collections::HashMap;

/// The complete simulated universe the crawler measures.
///
/// Invariants:
/// * every user with `author_id = Some(..)` is a Dissenter user and appears
///   in `by_author_id`;
/// * every user is registered in [`GabDb`] under their `gab_id` **unless**
///   `gab_deleted` is set (deleted accounts vanish from the Gab API but
///   their Dissenter comments persist — §4.1.1 found ~1,300 such users);
/// * usernames are unique.
#[derive(Debug, Default, Clone)]
pub struct World {
    /// All users (Gab superset; some have Dissenter accounts).
    pub users: Vec<User>,
    /// Dissenter comment store.
    pub dissenter: DissenterDb,
    /// Gab ID space and social graph.
    pub gab: GabDb,
    /// Reddit accounts for the intersection baseline.
    pub reddit: RedditDb,
    /// YouTube content states.
    pub youtube: YouTubeDb,
    /// Table 3 baseline corpora (NY Times, Daily Mail).
    pub baselines: Vec<BaselineCorpus>,
    by_username: HashMap<String, u32>,
    by_author_id: HashMap<ObjectId, u32>,
}

impl World {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a user, maintaining indexes. Returns the user's index.
    /// Panics on duplicate usernames or author-ids.
    pub fn add_user(&mut self, user: User) -> u32 {
        let idx = self.users.len() as u32;
        assert!(
            self.by_username.insert(user.username.clone(), idx).is_none(),
            "duplicate username {}",
            user.username
        );
        if let Some(aid) = user.author_id {
            assert!(
                self.by_author_id.insert(aid, idx).is_none(),
                "duplicate author-id"
            );
        }
        if !user.gab_deleted {
            self.gab.register(user.gab_id, idx);
        }
        self.users.push(user);
        idx
    }

    /// Look up a user index by username.
    pub fn user_by_username(&self, username: &str) -> Option<u32> {
        self.by_username.get(username).copied()
    }

    /// Look up a user index by Dissenter author-id.
    pub fn user_by_author_id(&self, author_id: ObjectId) -> Option<u32> {
        self.by_author_id.get(&author_id).copied()
    }

    /// The user record at an index.
    pub fn user(&self, idx: u32) -> &User {
        &self.users[idx as usize]
    }

    /// Number of users (Gab universe, including deleted).
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of Dissenter users.
    pub fn dissenter_user_count(&self) -> usize {
        self.by_author_id.len()
    }

    /// Indexes of all Dissenter users.
    pub fn dissenter_users(&self) -> impl Iterator<Item = u32> + '_ {
        self.by_author_id.values().copied()
    }

    /// A 64-bit FNV-1a digest of every field the four services can
    /// render: users (identity, profile, flags, filters), the Dissenter
    /// URL/comment store, the Gab social graph, Reddit histories, YouTube
    /// content states, and baseline corpora. Two worlds with equal
    /// digests serve byte-identical pages, so the webfronts derive
    /// strong ETags from this value. Unordered collections are hashed in
    /// sorted order, making the digest independent of map iteration.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        for u in &self.users {
            hash_user_core(&mut h, u);
        }
        for url in self.dissenter.urls() {
            h.str(&url.id.to_hex()).str(&url.url).str(&url.title).str(&url.description);
            h.u64(url.created_at).u64(url.upvotes as u64).u64(url.downvotes as u64);
        }
        for c in self.dissenter.comments() {
            h.str(&c.id.to_hex()).str(&c.url_id.to_hex()).str(&c.author_id.to_hex());
            match c.parent {
                Some(p) => h.str(&p.to_hex()),
                None => h.bit(false),
            };
            h.str(&c.text).u64(c.created_at).bit(c.nsfw).bit(c.offensive);
        }
        for idx in 0..self.users.len() as u32 {
            for &f in self.gab.following(idx) {
                h.u64(idx as u64).u64(f as u64);
            }
        }
        let mut reddit: Vec<&str> = self.reddit.usernames().collect();
        reddit.sort_unstable();
        for name in reddit {
            h.str(name);
            if let Some(comments) = self.reddit.comments(name) {
                for c in comments {
                    h.str(c);
                }
            }
            h.u64(self.reddit.declared_count(name).unwrap_or(0));
        }
        let mut yt: Vec<(&str, &crate::youtube::YtContent)> = self.youtube.iter().collect();
        yt.sort_unstable_by_key(|(url, _)| *url);
        for (url, content) in yt {
            h.str(url).u64(content.kind as u64);
            match &content.state {
                crate::youtube::YtState::Active { title, owner, comments_disabled } => {
                    h.bit(true).str(title).str(owner).bit(*comments_disabled);
                }
                crate::youtube::YtState::Unavailable(reason) => {
                    h.bit(false).u64(*reason as u64);
                }
            }
        }
        for b in &self.baselines {
            h.str(&b.name).u64(b.comments.len() as u64);
        }
        h.finish()
    }

    // ── Per-target page stamps ─────────────────────────────────────────
    //
    // `content_hash` digests the whole world, so deriving validators
    // from it invalidates every cached page on any mutation. The
    // longitudinal engine evolves the world *between* sweeps and then
    // re-crawls it; for incremental sweeps to actually serve 304s on
    // untouched entities, each front derives its ETags from these
    // narrower digests instead. A page's stamp folds exactly the records
    // that page can render (plus a leading tag byte so digests of
    // different page kinds never alias). Over-inclusion is safe — a
    // stamp that moves without a byte change only costs a re-download —
    // but under-inclusion is a correctness bug the `longitudinal.oracle`
    // simcheck family catches as byte divergence from a fresh crawl.

    /// Stamp for the Dissenter `/user/:username` profile page: the user
    /// record plus the list of URLs they have commented on.
    pub fn hash_user_page(&self, idx: u32) -> u64 {
        let u = &self.users[idx as usize];
        let mut h = Fnv::new();
        h.byte(1);
        hash_user_core(&mut h, u);
        if let Some(aid) = u.author_id {
            for url in self.dissenter.urls_for_author(aid) {
                h.str(&url.id.to_hex()).str(&url.url).str(&url.title);
            }
        }
        h.finish()
    }

    /// Stamp for the Dissenter `/url/:cuid` comment page: the URL record
    /// (votes included) and the full thread, shadow overlay included —
    /// the visibility class is folded into the ETag separately.
    pub fn hash_url_page(&self, url_id: ObjectId) -> u64 {
        let mut h = Fnv::new();
        h.byte(2);
        if let Some(url) = self.dissenter.url_by_id(url_id) {
            h.str(&url.id.to_hex()).str(&url.url).str(&url.title).str(&url.description);
            h.u64(url.created_at).u64(url.upvotes as u64).u64(url.downvotes as u64);
            for c in self.dissenter.comments_for_url(url_id) {
                h.str(&c.id.to_hex()).str(&c.author_id.to_hex());
                match c.parent {
                    Some(p) => h.str(&p.to_hex()),
                    None => h.bit(false),
                };
                h.str(&c.text).u64(c.created_at).bit(c.nsfw).bit(c.offensive);
            }
        }
        h.finish()
    }

    /// Stamp for the Dissenter `/comment/:cid` page: the comment plus its
    /// author's full record — the hidden `commentAuthor` block leaks the
    /// author's permissions and view filters, so a mid-study ban must
    /// rotate this stamp.
    pub fn hash_comment_page(&self, comment_id: ObjectId) -> u64 {
        let mut h = Fnv::new();
        h.byte(3);
        if let Some(c) = self.dissenter.comment_by_id(comment_id) {
            h.str(&c.id.to_hex()).str(&c.url_id.to_hex()).str(&c.author_id.to_hex());
            match c.parent {
                Some(p) => h.str(&p.to_hex()),
                None => h.bit(false),
            };
            h.str(&c.text).u64(c.created_at).bit(c.nsfw).bit(c.offensive);
            if let Some(idx) = self.user_by_author_id(c.author_id) {
                hash_user_core(&mut h, &self.users[idx as usize]);
            }
        }
        h.finish()
    }

    /// Stamp for the Gab `/api/v1/accounts/:id` page: the account record
    /// plus both relationship lists (the rendered counts filter deleted
    /// accounts, so a follower's deletion must rotate this stamp too).
    pub fn hash_gab_account(&self, idx: u32) -> u64 {
        let mut h = Fnv::new();
        h.byte(4);
        hash_user_core(&mut h, &self.users[idx as usize]);
        self.hash_gab_lists(&mut h, idx);
        h.finish()
    }

    /// Stamp for the Gab followers/following pages of one account. One
    /// stamp covers every page of both lists: an edge or deletion
    /// anywhere in either list re-downloads all pages — over-invalidation,
    /// never staleness.
    pub fn hash_gab_relationships(&self, idx: u32) -> u64 {
        let mut h = Fnv::new();
        h.byte(5);
        self.hash_gab_lists(&mut h, idx);
        h.finish()
    }

    fn hash_gab_lists(&self, h: &mut Fnv, idx: u32) {
        for (tag, list) in [(6u8, self.gab.following(idx)), (7u8, self.gab.followers(idx))] {
            h.byte(tag);
            for &f in list {
                let u = &self.users[f as usize];
                h.u64(u.gab_id).str(&u.username).str(&u.display_name).bit(u.gab_deleted);
            }
        }
    }

    /// Stamp for both Reddit endpoints (`/user/:name/about` and the
    /// pushshift comment pages) of one username.
    pub fn hash_reddit(&self, username: &str) -> u64 {
        let mut h = Fnv::new();
        h.byte(8);
        h.str(username);
        match self.reddit.comments(username) {
            Some(comments) => {
                h.bit(true);
                for c in comments {
                    h.str(c);
                }
                h.u64(self.reddit.declared_count(username).unwrap_or(0));
            }
            None => {
                h.bit(false);
            }
        }
        h.finish()
    }

    /// Stamp for the YouTube `/render?url=` page of one URL.
    pub fn hash_youtube(&self, url: &str) -> u64 {
        let mut h = Fnv::new();
        h.byte(9);
        h.str(url);
        match self.youtube.get(url) {
            Some(content) => {
                h.bit(true).u64(content.kind as u64);
                match &content.state {
                    crate::youtube::YtState::Active { title, owner, comments_disabled } => {
                        h.bit(true).str(title).str(owner).bit(*comments_disabled);
                    }
                    crate::youtube::YtState::Unavailable(reason) => {
                        h.bit(false).u64(*reason as u64);
                    }
                }
            }
            None => {
                h.bit(false);
            }
        }
        h.finish()
    }
}

/// Fold one user record — identity, profile, flags, filters — exactly as
/// `content_hash` always has, so the whole-world digest is unchanged.
fn hash_user_core(h: &mut Fnv, u: &User) {
    h.str(&u.username).str(&u.display_name).str(&u.bio).str(&u.language);
    h.u64(u.gab_id).u64(u.created_at).bit(u.gab_deleted);
    match u.author_id {
        Some(id) => h.str(&id.to_hex()),
        None => h.bit(false),
    };
    let f = &u.flags;
    for b in [
        f.can_login, f.can_post, f.can_report, f.can_chat, f.can_vote, f.is_banned,
        f.is_admin, f.is_moderator, f.is_pro, f.is_donor, f.is_investor, f.is_premium,
        f.is_tippable, f.is_private, f.verified,
    ] {
        h.bit(b);
    }
    let v = &u.filters;
    for b in [v.pro, v.verified, v.standard, v.nsfw, v.offensive] {
        h.bit(b);
    }
}

/// FNV-1a accumulator with field separators (so adjacent fields cannot
/// alias into each other).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn str(&mut self, s: &str) -> &mut Self {
        for b in s.bytes() {
            self.byte(b);
        }
        self.byte(0x1f);
        self
    }

    fn u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    fn bit(&mut self, b: bool) -> &mut Self {
        self.byte(b as u8 + 1);
        self
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{UserFlags, ViewFilters};
    use ids::{EntityKind, ObjectIdGen};

    fn user(name: &str, gab_id: u64, dissenter: bool, deleted: bool, g: &mut ObjectIdGen) -> User {
        User {
            author_id: if dissenter { Some(g.next(100)) } else { None },
            gab_id,
            username: name.into(),
            display_name: name.to_uppercase(),
            bio: String::new(),
            created_at: 100,
            flags: UserFlags::default(),
            filters: ViewFilters::default(),
            language: "en".into(),
            gab_deleted: deleted,
        }
    }

    #[test]
    fn indexes_stay_consistent() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 1);
        let a = w.add_user(user("a", 1, true, false, &mut g));
        let b = w.add_user(user("quiet", 2, false, false, &mut g));
        assert_eq!(w.user_by_username("a"), Some(a));
        assert_eq!(w.user_by_username("quiet"), Some(b));
        assert_eq!(w.user_count(), 2);
        assert_eq!(w.dissenter_user_count(), 1);
        let aid = w.user(a).author_id.unwrap();
        assert_eq!(w.user_by_author_id(aid), Some(a));
    }

    #[test]
    fn deleted_gab_accounts_not_in_gab_api() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 2);
        w.add_user(user("ghost", 7, true, true, &mut g));
        // Dissenter side still knows them…
        assert_eq!(w.dissenter_user_count(), 1);
        // …but the Gab API does not.
        assert_eq!(w.gab.user_by_gab_id(7), None);
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let build = |bio: &str| {
            let mut w = World::new();
            let mut g = ObjectIdGen::new(EntityKind::Author, 9);
            let mut u = user("a", 1, true, false, &mut g);
            u.bio = bio.into();
            w.add_user(u);
            w
        };
        let w1 = build("hello");
        assert_eq!(w1.content_hash(), build("hello").content_hash(), "same content, same hash");
        assert_ne!(w1.content_hash(), build("changed").content_hash(), "content change must show");
        // A vote is a world-visible mutation: the digest must move.
        let mut w2 = build("hello");
        let url_id = {
            let mut g = ObjectIdGen::new(EntityKind::CommentUrl, 9);
            let id = g.next(50);
            let author = w2.users[0].author_id.unwrap();
            w2.dissenter
                .add_url(crate::model::CommentUrl {
                    id,
                    url: "https://example.com".into(),
                    title: "t".into(),
                    description: String::new(),
                    created_at: 10,
                    upvotes: 0,
                    downvotes: 0,
                })
                .unwrap_or(id);
            let _ = author;
            id
        };
        let before = w2.content_hash();
        w2.dissenter.vote(url_id, crate::model::Vote::Up);
        assert_ne!(before, w2.content_hash(), "vote must change the digest");
    }

    #[test]
    fn page_stamps_track_their_entities() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 11);
        let a = w.add_user(user("alice", 1, true, false, &mut g));
        let b = w.add_user(user("bob", 2, true, false, &mut g));
        let aid = w.user(a).author_id.unwrap();
        let url_id = {
            let mut ug = ObjectIdGen::new(EntityKind::CommentUrl, 11);
            let id = ug.next(50);
            w.dissenter
                .add_url(crate::model::CommentUrl {
                    id,
                    url: "https://example.com".into(),
                    title: "t".into(),
                    description: String::new(),
                    created_at: 50,
                    upvotes: 0,
                    downvotes: 0,
                })
                .unwrap();
            id
        };
        let cid = {
            let mut cg = ObjectIdGen::new(EntityKind::Comment, 11);
            let id = cg.next(60);
            w.dissenter.add_comment(crate::model::Comment {
                id,
                url_id,
                author_id: aid,
                parent: None,
                text: "hi".into(),
                created_at: 60,
                nsfw: false,
                offensive: false,
            });
            id
        };

        // A vote moves the url-page stamp but not bob's profile stamp.
        let url_before = w.hash_url_page(url_id);
        let bob_before = w.hash_user_page(b);
        w.dissenter.vote(url_id, crate::model::Vote::Up);
        assert_ne!(url_before, w.hash_url_page(url_id), "vote must rotate the thread stamp");
        assert_eq!(bob_before, w.hash_user_page(b), "unrelated profile stamp must hold");

        // A ban rotates the author's comment-page stamp (hidden
        // commentAuthor permissions leak) but not the thread list itself.
        let comment_before = w.hash_comment_page(cid);
        w.users[a as usize].flags.is_banned = true;
        w.users[a as usize].flags.can_login = false;
        assert_ne!(comment_before, w.hash_comment_page(cid), "ban must rotate the comment stamp");

        // Stamps of different page kinds never alias even for one entity.
        assert_ne!(w.hash_user_page(a), w.hash_gab_account(a));
    }

    #[test]
    #[should_panic(expected = "duplicate username")]
    fn duplicate_username_panics() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 3);
        w.add_user(user("dup", 1, false, false, &mut g));
        w.add_user(user("dup", 2, false, false, &mut g));
    }
}
