#!/usr/bin/env bash
# Conditional-request serving bench: drive the Dissenter front with a
# closed-loop load in both regimes (every-request-rendered vs ETag/304
# revalidation) and emit the comparison as BENCH_PR5.json in the repo
# root. The loadgen binary self-validates — it exits nonzero unless the
# cached regime strictly beats uncached throughput, the cached pass
# actually revalidated, no request failed, and the shadow-visibility
# isolation probe holds.
#
# Usage: scripts/bench_pr5.sh [extra loadgen args, e.g. --requests 100]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p bench --bin loadgen -- --out BENCH_PR5.json "$@"

# The artifact must parse and carry the headline sections.
python3 - <<'EOF'
import json
with open("BENCH_PR5.json") as f:
    report = json.load(f)
for key in ("threads", "requests_per_thread", "targets", "scale",
            "uncached", "cached", "speedup", "cache_hits",
            "cache_misses", "cache_evictions", "shadow_isolated"):
    assert key in report, f"BENCH_PR5.json missing {key!r}"
for regime in ("uncached", "cached"):
    for key in ("requests", "failures", "wall_ms", "req_per_sec",
                "p50_us", "p99_us", "not_modified"):
        assert key in report[regime], f"BENCH_PR5.json missing {regime}.{key}"
    assert report[regime]["failures"] == 0, f"{regime} regime had failures"
assert report["shadow_isolated"] is True, "shadow-visibility isolation violated"
assert report["cached"]["not_modified"] > 0, "cached regime never revalidated"
assert report["uncached"]["not_modified"] == 0, "uncached regime revalidated"
assert report["speedup"] > 1.0, f"speedup {report['speedup']} <= 1.0"
print("BENCH_PR5.json OK:",
      f"{report['speedup']:.2f}x cached over uncached,",
      f"{report['cached']['not_modified']} revalidations,",
      f"p99 {report['uncached']['p99_us']} -> {report['cached']['p99_us']} us")
EOF
