//! JSON serialization (compact and pretty forms).

use crate::value::Value;

/// Serialize compactly (no insignificant whitespace).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

/// Serialize with two-space indentation, for human-facing artifacts.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_float(x: f64, out: &mut String) {
    if x.is_nan() || x.is_infinite() {
        // JSON has no NaN/Inf; emit null like most lenient encoders.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a fractional marker so the value re-parses as Float.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn compact_object() {
        let v = Value::object().with("a", 1i64).with("b", "x");
        assert_eq!(to_string(&v), r#"{"a":1,"b":"x"}"#);
    }

    #[test]
    fn floats_keep_float_form() {
        assert_eq!(to_string(&Value::Float(3.0)), "3.0");
        assert_eq!(to_string(&Value::Float(0.25)), "0.25");
        let re = parse(&to_string(&Value::Float(3.0))).unwrap();
        assert!(matches!(re, Value::Float(_)));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn strings_escape_controls() {
        let v = Value::Str("a\"b\\c\n\u{1}".into());
        assert_eq!(to_string(&v), concat!(r#""a\"b\\c\n"#, r#"\u0001""#));
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn pretty_round_trips() {
        let v = parse(r#"{"a":[1,2,{"b":true}],"c":{},"d":[]}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n"));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn empty_containers_compact_even_in_pretty_mode() {
        assert_eq!(to_string_pretty(&Value::object()), "{}");
        assert_eq!(to_string_pretty(&Value::Array(vec![])), "[]");
    }
}
