//! Connected components over undirected adjacency lists.
//!
//! The hateful-core analysis (§4.5.1) reports its result as connected
//! components of a mutual-follow subgraph: "six connected components …
//! one large connected component, with 32 interconnected users".

/// Summary of a component decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSummary {
    /// Component membership: `labels[v]` is the component id of node v,
    /// or `u32::MAX` if the node was not in the node set.
    pub labels: Vec<u32>,
    /// Component sizes in descending order.
    pub sizes: Vec<usize>,
}

impl ComponentSummary {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 if there are none).
    pub fn giant(&self) -> usize {
        self.sizes.first().copied().unwrap_or(0)
    }
}

/// Connected components of the subgraph induced on `nodes`, using
/// undirected adjacency `adj` (restricted to members of `nodes`).
///
/// Runs an iterative BFS (no recursion — component sizes are unbounded).
pub fn connected_components(adj: &[Vec<u32>], nodes: &[u32]) -> ComponentSummary {
    let n = adj.len();
    let mut in_set = vec![false; n];
    for &v in nodes {
        in_set[v as usize] = true;
    }
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    let mut next_label = 0u32;
    for &start in nodes {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        let mut size = 0usize;
        labels[start as usize] = next_label;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &w in &adj[v as usize] {
                if in_set[w as usize] && labels[w as usize] == u32::MAX {
                    labels[w as usize] = next_label;
                    queue.push_back(w);
                }
            }
        }
        sizes.push(size);
        next_label += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    ComponentSummary { labels, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        adj
    }

    #[test]
    fn single_component() {
        let adj = undirected(3, &[(0, 1), (1, 2)]);
        let c = connected_components(&adj, &[0, 1, 2]);
        assert_eq!(c.count(), 1);
        assert_eq!(c.giant(), 3);
    }

    #[test]
    fn multiple_components_sorted_by_size() {
        let adj = undirected(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = connected_components(&adj, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(c.sizes, vec![3, 2, 1]);
    }

    #[test]
    fn induced_subgraph_respects_node_set() {
        // 0-1-2 chain, but 1 excluded: 0 and 2 end up separate.
        let adj = undirected(3, &[(0, 1), (1, 2)]);
        let c = connected_components(&adj, &[0, 2]);
        assert_eq!(c.sizes, vec![1, 1]);
        assert_eq!(c.labels[1], u32::MAX);
    }

    #[test]
    fn empty_node_set() {
        let adj = undirected(3, &[(0, 1)]);
        let c = connected_components(&adj, &[]);
        assert_eq!(c.count(), 0);
        assert_eq!(c.giant(), 0);
    }

    #[test]
    fn labels_consistent_within_component() {
        let adj = undirected(5, &[(0, 1), (1, 2), (3, 4)]);
        let c = connected_components(&adj, &[0, 1, 2, 3, 4]);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[1], c.labels[2]);
        assert_eq!(c.labels[3], c.labels[4]);
        assert_ne!(c.labels[0], c.labels[3]);
    }

    #[test]
    fn large_path_no_stack_overflow() {
        // 100k-node path: recursion would overflow; BFS must not.
        let n = 100_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let adj = undirected(n, &edges);
        let nodes: Vec<u32> = (0..n as u32).collect();
        let c = connected_components(&adj, &nodes);
        assert_eq!(c.count(), 1);
        assert_eq!(c.giant(), n);
    }
}
