//! Two-sample Kolmogorov–Smirnov test.
//!
//! §4.4.4 confirms that Perspective-score distributions differ across
//! Allsides bias classes "via two-sample Kolmogorov-Smirnov; all pairs
//! p < 0.01". This module implements the test: the D statistic as the
//! supremum distance between the two ECDFs, and the asymptotic
//! Kolmogorov distribution for the p-value.

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic D = sup |F1(x) − F2(x)|.
    pub statistic: f64,
    /// Asymptotic two-sided p-value.
    pub p_value: f64,
    /// Sizes of the two samples.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl KsResult {
    /// Convenience: is the difference significant at `alpha`?
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test. Panics if either sample is empty or contains NaN.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS test requires non-empty samples");
    assert!(
        a.iter().chain(b.iter()).all(|x| !x.is_nan()),
        "NaN in KS input"
    );
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));

    let (n1, n2) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let x = sa[i].min(sb[j]);
        while i < n1 && sa[i] <= x {
            i += 1;
        }
        while j < n2 && sb[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let en = ((n1 * n2) as f64 / (n1 + n2) as f64).sqrt();
    // Asymptotic p-value with the standard small-sample correction
    // (Stephens 1970), as used by scipy's `ks_2samp(mode="asymp")`.
    let lambda = (en + 0.12 + 0.11 / en) * d;
    KsResult { statistic: d, p_value: kolmogorov_sf(lambda), n1, n2 }
}

/// Survival function of the Kolmogorov distribution:
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²)`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let r = ks_two_sample(&xs, &xs);
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (100..150).map(|i| i as f64).collect();
        let r = ks_two_sample(&a, &b);
        assert_eq!(r.statistic, 1.0);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn shifted_distributions_detected() {
        // Deterministic "uniform" grids shifted by 0.3.
        let a: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let b: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0 + 0.3).collect();
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 0.3).abs() < 0.01, "D={}", r.statistic);
        assert!(r.significant_at(0.01));
    }

    #[test]
    fn same_distribution_not_significant() {
        // Interleaved halves of the same grid.
        let a: Vec<f64> = (0..500).map(|i| (2 * i) as f64 / 1000.0).collect();
        let b: Vec<f64> = (0..500).map(|i| (2 * i + 1) as f64 / 1000.0).collect();
        let r = ks_two_sample(&a, &b);
        assert!(!r.significant_at(0.01), "p={}", r.p_value);
    }

    #[test]
    fn kolmogorov_sf_known_values() {
        // Q(λ) at standard critical values.
        assert!((kolmogorov_sf(1.3581) - 0.05).abs() < 0.002);
        assert!((kolmogorov_sf(1.6276) - 0.01).abs() < 0.001);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(5.0) < 1e-9);
    }

    #[test]
    fn unequal_sample_sizes_work() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let r = ks_two_sample(&a, &b);
        assert_eq!((r.n1, r.n2), (10, 1000));
        assert!(r.statistic < 0.2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        ks_two_sample(&[], &[1.0]);
    }
}
