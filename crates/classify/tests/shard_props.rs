//! Property tests for the sharding substrate (`classify::shard`): the
//! split/merge round-trip must preserve order and count for *arbitrary*
//! input sizes (empty, one-element, and ragged final shards included),
//! execution must be worker-count-invariant, and per-shard seed streams
//! must stay disjoint for distinct shard ids.

use classify::shard::{map_sharded, merge_shards, shard_bounds, stream_seed};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #[test]
    fn shard_bounds_partition_any_input(n in 0usize..5_000, shard_size in 1usize..600) {
        let bounds = shard_bounds(n, shard_size);
        // Contiguous, in-order, complete.
        let mut next = 0usize;
        for b in &bounds {
            prop_assert_eq!(b.start, next, "contiguous from the left");
            prop_assert!(b.end > b.start, "no empty shards");
            prop_assert!(b.end - b.start <= shard_size, "shard size bound");
            next = b.end;
        }
        prop_assert_eq!(next, n, "bounds cover the input exactly");
        if n == 0 {
            prop_assert!(bounds.is_empty());
        }
    }

    #[test]
    fn split_merge_round_trips(
        items in prop::collection::vec(any::<u32>(), 0..800),
        shard_size in 1usize..97,
    ) {
        let shards: Vec<Vec<u32>> = shard_bounds(items.len(), shard_size)
            .into_iter()
            .map(|r| items[r].to_vec())
            .collect();
        prop_assert_eq!(merge_shards(shards), items, "split → merge is the identity");
    }

    #[test]
    fn map_sharded_is_worker_invariant_and_order_preserving(
        items in prop::collection::vec(any::<u16>(), 0..400),
        shard_size in 1usize..64,
        workers in 1usize..9,
    ) {
        let f = |_shard: usize, sh: &[u16]| -> Vec<u32> {
            sh.iter().map(|&x| x as u32 + 1).collect()
        };
        let serial = map_sharded(&items, shard_size, 1, f);
        let sharded = map_sharded(&items, shard_size, workers, f);
        prop_assert_eq!(&sharded, &serial, "workers={} differs from serial", workers);
        prop_assert_eq!(sharded.len(), items.len(), "count preserved");
        for (x, y) in items.iter().zip(&sharded) {
            prop_assert_eq!(*x as u32 + 1, *y, "order preserved");
        }
    }

    #[test]
    fn stream_seeds_disjoint_for_distinct_ids(
        parent in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        // (no prop_assume in the vendored stand-in: skip the a == b draw)
        if a != b {
            // The SplitMix64 finalizer is a bijection of (parent ^ id·φ64),
            // so distinct ids can never collide under one parent…
            prop_assert!(
                stream_seed(parent, a) != stream_seed(parent, b),
                "seed collision for ids {} and {} under parent {}", a, b, parent
            );
            // …and the derived RNG streams start apart, not just the seeds.
            let mut ra = StdRng::seed_from_u64(stream_seed(parent, a));
            let mut rb = StdRng::seed_from_u64(stream_seed(parent, b));
            let first_a: [u64; 2] = [ra.gen(), ra.gen()];
            let first_b: [u64; 2] = [rb.gen(), rb.gen()];
            prop_assert!(first_a != first_b, "streams for ids {} and {} overlap", a, b);
        }
    }
}
