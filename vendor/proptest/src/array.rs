//! Fixed-size array strategies (`prop::array::uniform12`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `[S::Value; N]` from `N` independent draws.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_ctor {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        /// Array of independent draws from `element`.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_ctor! {
    uniform4 => 4,
    uniform8 => 8,
    uniform12 => 12,
    uniform16 => 16,
    uniform32 => 32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn uniform12_fills_all_slots() {
        let mut rng = TestRng::from_seed(31);
        let s = uniform12(any::<u8>());
        let a: [u8; 12] = s.generate(&mut rng);
        assert_eq!(a.len(), 12);
        // Independent draws: 12 identical bytes would be astronomically
        // unlikely across 100 samples.
        let mut varied = false;
        for _ in 0..100 {
            let a = s.generate(&mut rng);
            varied |= a.iter().any(|&b| b != a[0]);
        }
        assert!(varied);
    }
}
