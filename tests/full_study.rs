//! Cross-crate integration: run the entire pipeline once at a small scale
//! and assert the paper's qualitative results hold in the assembled
//! report — who wins, by roughly what factor, where the crossovers fall.

use dissenter_repro::dissenter_core::{run_study, Study};
use dissenter_repro::synth::config::Scale;
use std::sync::OnceLock;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        let cfg = Study::builder()
            .scale(Scale::Custom(0.006))
            .svm_corpus(1_200)
            .build()
            .expect("full-study config is valid");
        run_study(&cfg)
    })
}

#[test]
fn overview_is_internally_consistent() {
    let o = &study().report.overview;
    assert!(o.gab_accounts > o.dissenter_users, "Dissenter is a strict subset of Gab");
    assert!(o.active_users <= o.dissenter_users);
    assert!(o.ghost_users > 0);
    let active_frac = o.active_users as f64 / o.dissenter_users as f64;
    assert!((active_frac - 0.47).abs() < 0.06, "active fraction {active_frac}");
    assert!((o.joined_by_march_2019 - 0.77).abs() < 0.06);
    assert_eq!(o.shadow_validation.0, o.shadow_validation.1, "all labels validate");
}

#[test]
fn figure7_orderings_match_paper() {
    let f7 = &study().report.figure7;
    let get = |name: &str| f7.iter().find(|d| d.name == name).expect("dataset present");
    let (d, r, n, m) = (get("Dissenter"), get("Reddit"), get("NY Times"), get("Daily Mail"));

    // 7a LIKELY_TO_REJECT: Dissenter > Daily Mail > Reddit > NY Times.
    let ltr = |x: &analysis::toxicity::Figure7Dataset| x.likely_to_reject.survival(0.5);
    assert!(ltr(d) > ltr(m) && ltr(m) > ltr(r) && ltr(r) > ltr(n), "{} {} {} {}", ltr(d), ltr(m), ltr(r), ltr(n));
    assert!((0.6..0.9).contains(&ltr(d)), "Dissenter LTR@0.5 {}", ltr(d));
    assert!((0.35..0.65).contains(&d.likely_to_reject.survival(0.75)));

    // 7b SEVERE_TOXICITY: Dissenter highest, roughly 2× Reddit at 0.5.
    let sev = |x: &analysis::toxicity::Figure7Dataset| x.severe_toxicity.survival(0.5);
    assert!(sev(d) > sev(r) && sev(r) > sev(m) && sev(m) > sev(n));
    assert!((0.1..0.3).contains(&sev(d)), "Dissenter severe@0.5 {}", sev(d));
    let ratio = sev(d) / sev(r).max(1e-9);
    assert!((1.3..3.5).contains(&ratio), "Dissenter/Reddit severe ratio {ratio}");

    // 7c ATTACK_ON_AUTHOR: no drastic separation (all within a loose band).
    let atk = |x: &analysis::toxicity::Figure7Dataset| x.attack_on_author.survival(0.5);
    assert!(atk(d) < 0.35 && atk(n) < atk(d));
}

#[test]
fn figure4_shadow_content_is_more_extreme() {
    let f4 = &study().report.figure4;
    let all = f4.all.likely_to_reject.survival(0.95);
    let nsfw = f4.nsfw.likely_to_reject.survival(0.95);
    let off = f4.offensive.likely_to_reject.survival(0.95);
    assert!(off > nsfw && nsfw > all, "off={off} nsfw={nsfw} all={all}");
    assert!(off > 0.6, "offensive captures the most extreme content: {off}");
    assert!(all < 0.2, "all={all}");
    // Severe toxicity ordering too.
    assert!(
        f4.offensive.severe_toxicity.survival(0.5) > f4.all.severe_toxicity.survival(0.5)
    );
}

#[test]
fn figure5_votes_anticorrelate_with_toxicity() {
    let f5 = &study().report.figure5;
    assert!(f5.zero > f5.positive && f5.zero > f5.negative, "most URLs unvoted");
    assert!(f5.mean_severe_zero > f5.mean_severe_voted);
    assert!(f5.mean_severe_negative > f5.mean_severe_positive);
    assert!(f5.within_ten > 0.97);
}

#[test]
fn figure8_bias_conditioning() {
    let f8 = &study().report.figure8;
    let sev = |b: analysis::Bias| {
        f8.severe_by_bias
            .iter()
            .find(|(x, _)| *x == b)
            .map(|(_, d)| d.mean())
            .expect("bias present")
    };
    use analysis::Bias::*;
    assert!(sev(Center) > sev(Left), "center most toxic");
    assert!(sev(Center) > sev(RightCenter));
    assert!(sev(Right) < sev(Left) && sev(Right) < sev(RightCenter), "right lowest");
    // Attack on author monotone Left → Right.
    let atk = |b: analysis::Bias| {
        f8.attack_by_bias
            .iter()
            .find(|(x, _)| *x == b)
            .map(|(_, e)| e.survival(0.5))
            .expect("bias present")
    };
    assert!(atk(Left) > atk(LeftCenter));
    assert!(atk(LeftCenter) > atk(Center));
    assert!(atk(Center) > atk(Right));
    // Unranked URLs dominate (YouTube + social), as in the paper.
    assert!(f8.unranked_comments as f64 > 0.3 * (f8.ranked_comments + f8.unranked_comments) as f64);
}

#[test]
fn figure9_social_structure() {
    let s = &study().report.social;
    let iso_frac = s.isolated as f64 / s.users.max(1) as f64;
    assert!((iso_frac - 0.345).abs() < 0.08, "isolated fraction {iso_frac}");
    assert!(s.in_fit.is_some() && s.out_fit.is_some());
    // The hateful core: present, several components, dominant giant.
    assert!(s.core.size() >= 4);
    assert!(s.core.components.count() >= 2);
    assert!(s.core.components.giant() * 2 >= s.core.size(), "giant dominates");
    assert!(s.popular_prolific_overlap <= 2);
}

#[test]
fn table2_composition() {
    let r = &study().report;
    assert_eq!(r.domains[0].key, "youtube.com");
    assert!((r.domains[0].percent - 20.75).abs() < 3.0);
    let com = r.tlds.iter().find(|t| t.key == ".com").expect(".com row");
    assert!(com.percent > 60.0);
    // Fringe domains lead per-URL comment volume.
    assert!(
        r.domain_medians[0].2 >= 8.0,
        "top median volume {} on {}",
        r.domain_medians[0].2,
        r.domain_medians[0].0
    );
}

#[test]
fn languages_mostly_english() {
    let langs = &study().report.languages;
    assert_eq!(langs[0].0, textkit::Lang::En);
    assert!(langs[0].2 > 85.0, "English share {}", langs[0].2);
    assert!(langs.iter().any(|(l, _, _)| *l == textkit::Lang::De));
}

#[test]
fn svm_reaches_paper_band() {
    let svm = study().svm.as_ref().expect("svm ran");
    assert!(svm.cv_f1 > 0.8, "F1 {}", svm.cv_f1);
    assert!((svm.mean_class_probs.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    // Dissenter comments: 'neither' still the most common argmax class,
    // but hate+offensive shares are substantial.
    assert!(svm.class_shares[2] > svm.class_shares[0]);
}

#[test]
fn render_covers_every_section() {
    let text = dissenter_repro::dissenter_core::render::full(study());
    for needle in [
        "Overview", "Figure 2", "Figure 3", "Table 1", "Table 2", "URL anomaly", "YouTube",
        "languages", "Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9",
        "SVM",
    ] {
        assert!(text.contains(needle), "render missing {needle}");
    }
}
