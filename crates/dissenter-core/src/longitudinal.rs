//! The longitudinal study engine: repeated incremental sweeps over a
//! time-evolving world, with scorer-version tracking and drift
//! detection.
//!
//! The paper's measurement is a 14-month *longitudinal* effort; this
//! module replays that shape. A study is a base window (everything up
//! to `STUDY_END`) plus `epochs` fixed-length epochs of seeded platform
//! evolution ([`synth::apply_epoch`]): user growth along the calibrated
//! curve, fresh comments and votes, mid-study bans, and account
//! deletions. Two ways to measure it:
//!
//! * [`run_composed`] — the longitudinal crawler: one **sweep** per
//!   epoch state, all sweeps sharing one [`platform::SimClock`] (so
//!   rate windows persist across sweeps) and one
//!   [`httpnet::RevalidationCache`] (so unchanged pages revalidate to
//!   `304`s against the per-target ETag stamps of
//!   [`webfront::SimFronts::for_sweep`]).
//! * [`run_one_shot`] — the retrospective crawler: a single crawl of
//!   the final epoch state.
//!
//! Both modes window the **final** mirror retrospectively: window `w`'s
//! comments (by embedded creation time) scored under the revision the
//! timeline declares for `w`. A row frozen from sweep `w`'s *own* store
//! would not be oracle-comparable — §3.2 spidering reaches a thread
//! only through some user's home page, so a thread none of sweep `w`'s
//! users had touched can enter coverage when a later epoch's comment
//! links it. That is growing reachability, not a crawler bug, and the
//! retrospective windowing is also what the paper itself does with its
//! final dataset.
//!
//! **The differential oracle:** at drift 0 the two must agree
//! byte-for-byte on every artifact ([`artifacts`]): the world is
//! append-only in timestamp order, revalidation is transparent, and
//! windowed outputs are pure functions of the store and the timeline.
//! The `longitudinal.oracle` simcheck family enforces this across
//! seeds. The composed sweeps are not decorative — every intermediate
//! sweep feeds the shared revalidation cache and clock, so a stale
//! cached representation, a stamp that failed to rotate, or a
//! mis-resumed journal poisons the final store and breaks the byte
//! equality. (Both modes apply the same timeline per window, so a
//! crawl-, clock-, stamp-, or revalidation-layer bug can never hide
//! behind scorer drift.) What a *real* retrospective study loses — old
//! scorer revisions are gone once a closed service retrains — is
//! exactly what the [`DriftReport`] quantifies: it detects every
//! version boundary, rescores a fixed calibration sample under both
//! neighbors, and flags deltas large enough to silently change a
//! longitudinal conclusion.

use crate::runstats;
use crate::{Study, StudyConfig};
use analysis::report::build_report_pooled;
use analysis::windowed::{
    crossover_window, drift_csv, drift_report, epoch_end, growth_csv, growth_curve,
    window_toxicity, window_toxicity_csv, DriftReport, GrowthRow, WindowToxicity,
    DRIFT_FLAG_THRESHOLD,
};
use classify::ScorerVersion;
use crawler::{CrawlStore, Crawler, DurableConfig, Endpoints, Failpoint};
use platform::{SimClock, World};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use webfront::{SimFronts, SimServices};

/// Longitudinal study configuration.
#[derive(Debug, Clone)]
pub struct LongitudinalConfig {
    /// The underlying study (world seed/scale, crawl tuning, workers).
    /// The SVM experiment is never run by the longitudinal engine.
    pub study: StudyConfig,
    /// Epochs of evolution past the base window; the composed run
    /// performs `epochs + 1` sweeps (one per window 0..=epochs).
    pub epochs: u32,
    /// Scorer drift magnitude for the mid-study revision (0.0 = the
    /// revision is a bit-identical re-deploy; see [`ScorerVersion`]).
    pub drift: f64,
    /// Seed for the drift perturbation stream.
    pub drift_seed: u64,
    /// Calibration sample size for the drift report.
    pub calibration: usize,
    /// When set, every sweep journals into `root/sweep-<n>` (the
    /// one-shot run uses `root/one-shot`), making each sweep a
    /// resumable delta crawl.
    pub durable_root: Option<PathBuf>,
    /// Kill sweep `.0`'s durable crawl at journal op `.1`, then resume
    /// it in place — the `longitudinal.resume` oracle's crash leg.
    /// Requires `durable_root`.
    pub kill_sweep: Option<(u32, u64)>,
}

impl LongitudinalConfig {
    /// Test-sized configuration: 2 epochs, no drift, no journaling.
    pub fn small() -> Self {
        let study = crate::Study::builder().svm(false).build().expect("default config is valid");
        Self {
            drift_seed: study.world.seed,
            study,
            epochs: 2,
            drift: 0.0,
            calibration: 64,
            durable_root: None,
            kill_sweep: None,
        }
    }
}

/// The scorer-revision timeline: one entry per window. Revision 1
/// deploys mid-study (first window `epochs / 2 + 1`), so any study with
/// at least one epoch crosses exactly one version boundary; a
/// zero-epoch study never leaves revision 0. With `drift == 0` the two
/// revisions score bit-identically (the deploy was a no-op), which is
/// what lets the sweep≡one-shot oracle hold over the *same* schedule.
pub fn version_schedule(epochs: u32, drift: f64, seed: u64) -> Vec<ScorerVersion> {
    let upgrade_at = epochs / 2 + 1;
    (0..=epochs)
        .map(|w| ScorerVersion::at(if w >= upgrade_at { 1 } else { 0 }, drift, seed))
        .collect()
}

/// Everything a longitudinal run produces.
#[derive(Debug)]
pub struct LongitudinalStudy {
    /// The full §4 study of the final-state store.
    pub study: Study,
    /// Per-window growth curve.
    pub growth: Vec<GrowthRow>,
    /// Per-window toxicity rows, computed retrospectively from the
    /// final-state store, each scored under the revision the timeline
    /// declares for its window.
    pub windows: Vec<WindowToxicity>,
    /// First window whose mean severe toxicity exceeds the base
    /// window's.
    pub crossover: Option<u32>,
    /// Version boundaries with calibration rescoring deltas.
    pub drift: DriftReport,
    /// The revision timeline the run measured under.
    pub versions: Vec<ScorerVersion>,
    /// Per-sweep `304 Not Modified` totals across all four services
    /// (diagnostics — deliberately *not* rendered, so composed and
    /// one-shot artifacts can be compared byte-for-byte).
    pub sweep_not_modified: Vec<u64>,
    /// Per-sweep HTTP request totals across all four services (the
    /// denominator for the bench's 304-served fraction; diagnostics).
    pub sweep_requests: Vec<u64>,
    /// Per-sweep crawl wall-clock (diagnostics, for the bench gate).
    pub sweep_wall: Vec<Duration>,
}

fn endpoints(services: &SimServices) -> Endpoints {
    Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    }
}

/// Total (`http.<service>.not_modified`, `http.<service>.requests`)
/// across the four services.
fn http_totals(metrics: &obs::Registry) -> (u64, u64) {
    let snap = metrics.snapshot();
    let sum = |suffix: &str| {
        ["dissenter", "gab", "reddit", "youtube"]
            .iter()
            .map(|s| snap.counter(&format!("http.{s}.{suffix}")).unwrap_or(0))
            .sum()
    };
    (sum("not_modified"), sum("requests"))
}

/// One sweep: front the world at `clock` time, crawl it (optionally
/// journaled / killed+resumed), and return the reconstructed store plus
/// the sweep's crawl wall-clock and (`304`, request) totals. `hint`
/// carries the previous sweep's enumeration knowledge (incremental
/// sweeps only — the one-shot baseline crawls hint-free).
#[allow(clippy::too_many_arguments)]
fn sweep(
    cfg: &LongitudinalConfig,
    world: &Arc<World>,
    clock: &SimClock,
    reval: &httpnet::RevalidationCache,
    hint: Option<crawler::SweepHint>,
    sweep_no: u32,
    dir_name: &str,
) -> (CrawlStore, Duration, u64, u64) {
    let metrics = obs::Registry::new();
    let fronts = SimFronts::for_sweep(world.clone(), &metrics, clock.clone());
    let server_config = httpnet::ServerConfig {
        faults: cfg.study.faults,
        metrics: Some(metrics.clone()),
        ..crawler::default_server_config()
    };
    let services = SimServices::start_with(fronts, server_config)
        .expect("failed to start simulated services");
    let mut crawler = Crawler::new(endpoints(&services));
    crawler.config = cfg.study.crawl.clone();
    crawler.metrics = metrics.clone();
    crawler.config.enum_gap_tolerance =
        crawler.config.enum_gap_tolerance.min((world.gab.max_id() / 4).max(512));
    crawler.set_revalidation(reval.clone());
    crawler.set_clock(clock.clone());
    if let Some(hint) = hint {
        crawler.set_sweep_hint(hint);
    }

    let started = std::time::Instant::now();
    let store = match &cfg.durable_root {
        Some(root) => {
            let dir = root.join(dir_name);
            match cfg.kill_sweep {
                Some((kill_at_sweep, kill_at_op)) if kill_at_sweep == sweep_no => {
                    let dcfg = DurableConfig {
                        failpoint: Failpoint { kill_at_op: Some(kill_at_op), torn_tail: false },
                        ..DurableConfig::default()
                    };
                    let err = crawler
                        .full_crawl_durable(&dir, &dcfg)
                        .expect_err("failpoint must kill the sweep");
                    assert!(
                        crawler::journal::is_kill_error(&err),
                        "sweep died of something other than the failpoint: {err}"
                    );
                    let (store, _info) =
                        crawler.resume(&dir, &DurableConfig::default()).expect("resume sweep");
                    store
                }
                _ => crawler
                    .full_crawl_durable(&dir, &DurableConfig::default())
                    .expect("durable sweep"),
            }
        }
        None => crawler.full_crawl(),
    };
    let (not_modified, requests) = http_totals(&metrics);
    (store, started.elapsed(), not_modified, requests)
}

/// Assemble the windowed outputs and final-state study shared by both
/// run modes: growth curve, retrospective per-window toxicity under the
/// revision timeline, drift report, and the full §4 report.
fn finish(
    cfg: &LongitudinalConfig,
    world: &World,
    store: CrawlStore,
    versions: Vec<ScorerVersion>,
    sweep_not_modified: Vec<u64>,
    sweep_requests: Vec<u64>,
    sweep_wall: Vec<Duration>,
) -> LongitudinalStudy {
    let metrics = obs::Registry::new();
    let workers = cfg.study.workers.max(1);
    let pool = httpnet::ThreadPool::with_metrics(workers, workers * 2, Some(&metrics));
    let growth = growth_curve(&store, cfg.epochs);
    let windows: Vec<WindowToxicity> = (0..=cfg.epochs)
        .map(|w| window_toxicity(&store, w, &versions[w as usize], &pool, Some(&metrics)))
        .collect();
    let crossover = crossover_window(&windows);
    let drift = drift_report(
        &store,
        &versions,
        cfg.calibration,
        DRIFT_FLAG_THRESHOLD,
        &pool,
        Some(&metrics),
    );
    let report = build_report_pooled(&store, &world.baselines, &pool, Some(&metrics));
    let runstats = runstats::collect(&metrics);
    let study = Study {
        report,
        svm: None,
        store,
        scale_factor: cfg.study.world.scale.factor(),
        runstats,
    };
    LongitudinalStudy {
        study,
        growth,
        windows,
        crossover,
        drift,
        versions,
        sweep_not_modified,
        sweep_requests,
        sweep_wall,
    }
}

/// The longitudinal crawler: `epochs + 1` incremental sweeps over the
/// evolving world, composed into one study. Every sweep recrawls the
/// current state through the shared clock and revalidation cache; the
/// final sweep's store is the study mirror (windowed retrospectively —
/// see the module docs for why frozen per-sweep rows would not be
/// oracle-comparable).
pub fn run_composed(cfg: &LongitudinalConfig) -> LongitudinalStudy {
    let workers = cfg.study.workers.max(1);
    let versions = version_schedule(cfg.epochs, cfg.drift, cfg.drift_seed);
    let clock = SimClock::new(epoch_end(0));
    let reval = httpnet::RevalidationCache::new(1 << 18);

    let mut sweep_not_modified = Vec::new();
    let mut sweep_requests = Vec::new();
    let mut sweep_wall = Vec::new();
    let mut last: Option<(Arc<World>, CrawlStore)> = None;
    for e in 0..=cfg.epochs {
        // The sweep happens "when" epoch e has just closed.
        clock.advance_to(epoch_end(e));
        let (world, _) = synth::world_at_epoch(&cfg.study.world, e, workers);
        let world = Arc::new(world);
        // Later sweeps crawl incrementally off the previous sweep's
        // enumeration knowledge (the store stays byte-identical — see
        // `crawler::SweepHint` for the contract).
        let hint = last.as_ref().and_then(|(_, store)| crawler::SweepHint::from_store(store));
        let (store, wall, not_modified, requests) =
            sweep(cfg, &world, &clock, &reval, hint, e, &format!("sweep-{e}"));
        sweep_wall.push(wall);
        sweep_not_modified.push(not_modified);
        sweep_requests.push(requests);
        last = Some((world, store));
    }
    let (world, store) = last.expect("at least one sweep");
    finish(cfg, &world, store, versions, sweep_not_modified, sweep_requests, sweep_wall)
}

/// The retrospective crawler: one sweep of the final epoch state, the
/// same windowing applied to that single store. The comparison baseline
/// for the sweep≡one-shot oracle.
pub fn run_one_shot(cfg: &LongitudinalConfig) -> LongitudinalStudy {
    let workers = cfg.study.workers.max(1);
    let versions = version_schedule(cfg.epochs, cfg.drift, cfg.drift_seed);
    let clock = SimClock::new(epoch_end(cfg.epochs));
    let reval = httpnet::RevalidationCache::new(1 << 18);

    let (world, _) = synth::world_at_epoch(&cfg.study.world, cfg.epochs, workers);
    let world = Arc::new(world);
    let (store, wall, not_modified, requests) =
        sweep(cfg, &world, &clock, &reval, None, 0, "one-shot");
    finish(cfg, &world, store, versions, vec![not_modified], vec![requests], vec![wall])
}

/// Every artifact the differential oracle compares, as named byte
/// blobs: the deterministic render, the longitudinal render section,
/// the three windowed CSVs, every figure CSV, and the persisted JSONL
/// mirror. Excludes diagnostics (`sweep_not_modified`, wall-clocks,
/// runstats) by construction.
pub fn artifacts(ls: &LongitudinalStudy) -> Vec<(String, Vec<u8>)> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let mut out: Vec<(String, Vec<u8>)> = vec![
        ("render.txt".into(), crate::render::deterministic(&ls.study).into_bytes()),
        ("longitudinal.txt".into(), crate::render::longitudinal(ls).into_bytes()),
        ("growth_curve.csv".into(), growth_csv(&ls.growth).into_bytes()),
        ("window_toxicity.csv".into(), window_toxicity_csv(&ls.windows).into_bytes()),
        ("drift_report.csv".into(), drift_csv(&ls.drift).into_bytes()),
    ];
    let dir = std::env::temp_dir().join(format!(
        "longitudinal-artifacts-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let csvs = analysis::export::export_csv(&ls.study.report, &dir).expect("export csv");
    for name in csvs {
        out.push((name.clone(), std::fs::read(dir.join(&name)).expect("read csv")));
    }
    crawler::persist::save(&ls.study.store, &dir).expect("persist");
    for name in crawler::persist::FILES {
        out.push(((*name).to_owned(), std::fs::read(dir.join(name)).expect("read jsonl")));
    }
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// Write the three windowed CSVs into `dir`, returning the file names.
pub fn export_windowed(ls: &LongitudinalStudy, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let files = [
        ("growth_curve.csv", growth_csv(&ls.growth)),
        ("window_toxicity.csv", window_toxicity_csv(&ls.windows)),
        ("drift_report.csv", drift_csv(&ls.drift)),
    ];
    let mut names = Vec::new();
    for (name, body) in files {
        std::fs::write(dir.join(name), body)?;
        names.push(name.to_owned());
    }
    Ok(names)
}
