//! A bounded worker thread pool for connection handling.

use crossbeam::channel::{bounded, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size thread pool. Jobs queue on a bounded channel (backpressure:
/// `execute` blocks when the queue is full). Dropping the pool joins all
/// workers after draining queued jobs.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool of `size` workers with a queue of `queue` jobs.
    pub fn new(size: usize, queue: usize) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        let (tx, rx) = bounded::<Job>(queue.max(1));
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("httpnet-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Self { tx: Some(tx), workers }
    }

    /// Submit a job; blocks if the queue is full.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(f))
            .expect("workers alive");
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4, 16);
            for _ in 0..100 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins after draining.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn parallelism_actually_happens() {
        use std::sync::Barrier;
        let barrier = Arc::new(Barrier::new(4));
        let pool = ThreadPool::new(4, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let b = barrier.clone();
            let d = done.clone();
            pool.execute(move || {
                // All four must rendezvous — impossible without 4 threads.
                b.wait();
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        ThreadPool::new(0, 1);
    }
}
