//! HTML scraping helpers for the simulated Dissenter pages.
//!
//! The real study reverse-engineered undocumented HTML; these helpers do
//! the same against our front-end's markup: attribute extraction from
//! tagged elements, entity unescaping, and the commented-out
//! `commentAuthor` JSON blob.

use crate::store::HiddenMeta;
use ids::ObjectId;

/// Extract every occurrence of `attr="…"` in `html`, in document order.
pub fn extract_attr_all(html: &str, attr: &str) -> Vec<String> {
    let needle = format!("{attr}=\"");
    let mut out = Vec::new();
    let mut rest = html;
    while let Some(pos) = rest.find(&needle) {
        let after = &rest[pos + needle.len()..];
        if let Some(end) = after.find('"') {
            out.push(after[..end].to_owned());
            rest = &after[end..];
        } else {
            break;
        }
    }
    out
}

/// First occurrence of `attr="…"`.
pub fn extract_attr(html: &str, attr: &str) -> Option<String> {
    extract_attr_all(html, attr).into_iter().next()
}

/// Undo the front-end's HTML escaping.
pub fn html_unescape(s: &str) -> String {
    s.replace("&quot;", "\"").replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
}

/// One `<li class="comment" …>` block parsed from a comment page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapedComment {
    /// data-comment-id
    pub id: ObjectId,
    /// data-author-id
    pub author_id: ObjectId,
    /// data-parent (empty for top-level comments)
    pub parent: Option<ObjectId>,
    /// data-created
    pub created_at: u64,
    /// Inner text.
    pub text: String,
}

/// Parse all comments out of a comment page.
pub fn scrape_comments(html: &str) -> Vec<ScrapedComment> {
    let mut out = Vec::new();
    for block in html.split("<li class=\"comment\"").skip(1) {
        let end = block.find("</li>").unwrap_or(block.len());
        let block = &block[..end];
        let Some(id) = extract_attr(block, "data-comment-id").and_then(|s| s.parse().ok()) else {
            continue;
        };
        let Some(author_id) = extract_attr(block, "data-author-id").and_then(|s| s.parse().ok())
        else {
            continue;
        };
        let parent = extract_attr(block, "data-parent")
            .filter(|s| !s.is_empty())
            .and_then(|s| s.parse().ok());
        let created_at = extract_attr(block, "data-created")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let text = block
            .find("<p>")
            .and_then(|s| block[s + 3..].find("</p>").map(|e| &block[s + 3..s + 3 + e]))
            .map(html_unescape)
            .unwrap_or_default();
        out.push(ScrapedComment { id, author_id, parent, created_at, text });
    }
    out
}

/// Parse the commented-out `commentAuthor` JSON blob into [`HiddenMeta`].
pub fn scrape_hidden_meta(html: &str) -> Option<HiddenMeta> {
    let marker = "// var commentAuthor = [";
    let start = html.find(marker)? + marker.len();
    let rest = &html[start..];
    let end = rest.find("];")?;
    let v = jsonlite::parse(&rest[..end]).ok()?;
    let b = |path: &jsonlite::Value, k: &str| path.get(k).and_then(|x| x.as_bool()).unwrap_or(false);
    let perms = v.get("permissions")?;
    let filters = v.get("viewFilters")?;
    Some(HiddenMeta {
        language: v.get("language")?.as_str()?.to_owned(),
        can_login: b(perms, "canLogin"),
        can_post: b(perms, "canPost"),
        can_report: b(perms, "canReport"),
        can_chat: b(perms, "canChat"),
        can_vote: b(perms, "canVote"),
        is_banned: b(perms, "isBanned"),
        is_admin: b(perms, "isAdmin"),
        is_moderator: b(perms, "isModerator"),
        is_pro: b(perms, "isPro"),
        is_donor: b(perms, "isDonor"),
        is_investor: b(perms, "isInvestor"),
        is_premium: b(perms, "isPremium"),
        is_tippable: b(perms, "isTippable"),
        is_private: b(perms, "isPrivate"),
        verified: b(perms, "verified"),
        filter_pro: b(filters, "pro"),
        filter_verified: b(filters, "verified"),
        filter_standard: b(filters, "standard"),
        filter_nsfw: b(filters, "nsfw"),
        filter_offensive: b(filters, "offensive"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_extraction() {
        let html = r#"<a data-x="1"></a><b data-x="two"></b>"#;
        assert_eq!(extract_attr_all(html, "data-x"), vec!["1", "two"]);
        assert_eq!(extract_attr(html, "data-x").as_deref(), Some("1"));
        assert!(extract_attr(html, "data-y").is_none());
    }

    #[test]
    fn unescape_round_trip() {
        assert_eq!(html_unescape("a&amp;b&lt;c&gt;d&quot;e"), "a&b<c>d\"e");
    }

    #[test]
    fn comment_scrape() {
        let html = concat!(
            r#"<ol><li class="comment" data-comment-id="5c780b19aabbccddeeff0011" "#,
            r#"data-author-id="5c780b19aabbccddeeff0022" data-parent="" data-created="1551000000">"#,
            r#"<p>hello &amp; bye</p></li>"#,
            r#"<li class="comment" data-comment-id="5c780b19aabbccddeeff0033" "#,
            r#"data-author-id="5c780b19aabbccddeeff0022" data-parent="5c780b19aabbccddeeff0011" data-created="1551000001">"#,
            r#"<p>reply</p></li></ol>"#
        );
        let comments = scrape_comments(html);
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].text, "hello & bye");
        assert!(comments[0].parent.is_none());
        assert_eq!(comments[1].parent, Some(comments[0].id));
        assert_eq!(comments[1].created_at, 1551000001);
    }

    #[test]
    fn malformed_blocks_skipped() {
        let html = r#"<li class="comment" data-comment-id="nothex"><p>x</p></li>"#;
        assert!(scrape_comments(html).is_empty());
    }

    #[test]
    fn hidden_meta_scrape() {
        let html = r#"<script>
// var commentAuthor = [{"author_id":"5c780b19aabbccddeeff0022","username":"a","language":"de","permissions":{"canLogin":true,"isAdmin":true,"isBanned":false,"canPost":true,"canReport":true,"canChat":true,"canVote":true,"isModerator":false,"isPro":true,"isDonor":false,"isInvestor":false,"isPremium":false,"isTippable":false,"isPrivate":false,"verified":true},"viewFilters":{"pro":true,"verified":true,"standard":true,"nsfw":true,"offensive":false}}];
</script>"#;
        let meta = scrape_hidden_meta(html).expect("parses");
        assert_eq!(meta.language, "de");
        assert!(meta.is_admin);
        assert!(meta.filter_nsfw);
        assert!(!meta.filter_offensive);
    }

    #[test]
    fn missing_meta_is_none() {
        assert!(scrape_hidden_meta("<html>no script here</html>").is_none());
    }
}
