//! A bounded worker thread pool for connection handling, generalized
//! with an ordered scatter-gather work queue ([`ThreadPool::scatter`])
//! so CPU-bound pipeline stages can reuse the same pool.

use crossbeam::channel::{bounded, Sender};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size thread pool. Jobs queue on a bounded channel (backpressure:
/// `execute` blocks when the queue is full). Dropping the pool joins all
/// workers after draining queued jobs.
///
/// A panicking job is confined to that job: the worker catches the
/// unwind, counts it (when the pool is instrumented), and keeps
/// draining. Before this guard a panic killed the worker thread, so
/// `size` panicking jobs silently serialized the pool and the next
/// `execute` after all workers died panicked on a dead channel.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool of `size` workers with a queue of `queue` jobs.
    pub fn new(size: usize, queue: usize) -> Self {
        Self::with_metrics(size, queue, None)
    }

    /// [`ThreadPool::new`], counting caught job panics on
    /// `metrics` under `pool.job_panics`.
    pub fn with_metrics(size: usize, queue: usize, metrics: Option<&obs::Registry>) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        let panics = metrics.map(|r| r.counter("pool.job_panics"));
        let (tx, rx) = bounded::<Job>(queue.max(1));
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                let panics = panics.clone();
                std::thread::Builder::new()
                    .name(format!("httpnet-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                if let Some(c) = &panics {
                                    c.inc();
                                }
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Self { tx: Some(tx), workers }
    }

    /// Submit a job; blocks if the queue is full.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(f))
            .expect("workers alive");
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Ordered scatter-gather: run every job on the pool and return their
    /// results **in submission order**, regardless of completion order.
    /// This is the determinism contract of the sharded study pipeline —
    /// `scatter(jobs)` is observably identical to running the jobs in a
    /// serial loop, for any pool size.
    ///
    /// If a job panics, the panic is re-raised on the calling thread —
    /// but only after all remaining jobs have been gathered, so the pool
    /// is never left with orphaned senders. Must not be called from
    /// inside a pool job (the job would block on its own pool's queue).
    pub fn scatter<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.scatter_labeled("", None, jobs)
    }

    /// [`ThreadPool::scatter`], instrumented: records shard counts and
    /// timing under `shard.<label>.*` on `metrics`. The counters
    /// (`jobs`, plus `items` recorded by callers) depend only on the
    /// input, never on the worker count; the histograms (`busy` per job,
    /// `gather` for the scatter-to-last-result wall, i.e. merge wait)
    /// are wall-clock.
    pub fn scatter_labeled<T, F>(
        &self,
        label: &str,
        metrics: Option<&obs::Registry>,
        jobs: Vec<F>,
    ) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let busy = metrics.map(|r| r.histogram(&format!("shard.{label}.busy")));
        if let Some(r) = metrics {
            r.counter(&format!("shard.{label}.jobs")).add(n as u64);
        }
        let gather_started = std::time::Instant::now();
        let (done_tx, done_rx) = bounded::<(usize, std::thread::Result<T>)>(n);
        for (idx, job) in jobs.into_iter().enumerate() {
            let done_tx = done_tx.clone();
            let busy = busy.clone();
            self.execute(move || {
                let started = std::time::Instant::now();
                let result = catch_unwind(AssertUnwindSafe(job));
                if let Some(h) = &busy {
                    h.observe(started.elapsed());
                }
                // Gatherer holds `done_rx` until all n results arrive, so
                // the only send failure is a caller that itself panicked.
                let _ = done_tx.send((idx, result));
            });
        }
        drop(done_tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..n {
            let (idx, result) = done_rx.recv().expect("scatter workers alive");
            match result {
                Ok(v) => slots[idx] = Some(v),
                Err(p) => {
                    first_panic.get_or_insert(p);
                }
            }
        }
        if let Some(r) = metrics {
            r.histogram(&format!("shard.{label}.gather"))
                .observe(gather_started.elapsed());
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every scattered job reported"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4, 16);
            for _ in 0..100 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins after draining.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn parallelism_actually_happens() {
        use std::sync::Barrier;
        let barrier = Arc::new(Barrier::new(4));
        let pool = ThreadPool::new(4, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let b = barrier.clone();
            let d = done.clone();
            pool.execute(move || {
                // All four must rendezvous — impossible without 4 threads.
                b.wait();
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        ThreadPool::new(0, 1);
    }

    #[test]
    fn panicking_jobs_do_not_shrink_the_pool() {
        // Regression: a job panic used to kill its worker thread. With a
        // 2-worker pool, two panicking jobs left zero workers, the queue
        // backed up, and `execute` itself panicked on the dead channel.
        let registry = obs::Registry::new();
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::with_metrics(2, 4, Some(&registry));
            // More panics than workers, interleaved with real jobs.
            for round in 0..10 {
                pool.execute(move || panic!("poisoned job {round}"));
                for _ in 0..10 {
                    let d = done.clone();
                    pool.execute(move || {
                        d.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }
        }
        assert_eq!(done.load(Ordering::SeqCst), 100, "jobs after panics must still run");
        assert_eq!(
            registry.snapshot().counter("pool.job_panics"),
            Some(10),
            "every confined panic is visible in the metrics registry"
        );
    }

    #[test]
    fn scatter_returns_results_in_submission_order() {
        let pool = ThreadPool::new(4, 8);
        // Reverse sleep times so later jobs finish first.
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
                    i * i
                }
            })
            .collect();
        let out = pool.scatter(jobs);
        assert_eq!(out, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_identical_for_any_pool_size() {
        let make_jobs = || (0..100u64).map(|i| move || i.wrapping_mul(0x9e3779b9)).collect::<Vec<_>>();
        let serial = ThreadPool::new(1, 4).scatter(make_jobs());
        for size in [2, 3, 8] {
            assert_eq!(ThreadPool::new(size, 4).scatter(make_jobs()), serial, "size={size}");
        }
    }

    #[test]
    fn scatter_empty_is_empty() {
        let pool = ThreadPool::new(2, 4);
        let out: Vec<u32> = pool.scatter(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn scatter_propagates_job_panic_and_pool_survives() {
        let pool = ThreadPool::new(2, 4);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("shard blew up")),
            Box::new(|| 3),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| pool.scatter(jobs)))
            .expect_err("panic must propagate to the caller");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "shard blew up");
        // The pool is still usable after the failed scatter.
        assert_eq!(pool.scatter(vec![|| 7u32, || 8u32]), vec![7, 8]);
    }

    #[test]
    fn scatter_labeled_records_deterministic_job_counter() {
        let registry = obs::Registry::new();
        let pool = ThreadPool::with_metrics(3, 8, Some(&registry));
        let jobs: Vec<_> = (0..10u32).map(|i| move || i).collect();
        let out = pool.scatter_labeled("test", Some(&registry), jobs);
        assert_eq!(out.len(), 10);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("shard.test.jobs"), Some(10));
        assert!(snap.histogram("shard.test.busy").is_some());
        assert!(snap.histogram("shard.test.gather").is_some());
    }

    #[test]
    fn parallelism_survives_panics() {
        // All four workers must still rendezvous *after* each has had a
        // panicking job — proof no worker thread died.
        use std::sync::Barrier;
        let pool = ThreadPool::new(4, 8);
        for _ in 0..4 {
            pool.execute(|| panic!("one per worker, probabilistically"));
        }
        let barrier = Arc::new(Barrier::new(4));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let b = barrier.clone();
            let d = done.clone();
            pool.execute(move || {
                b.wait();
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
