//! Phase 3 — home-page and comment spidering (§3.2), including the
//! NSFW/offensive diff passes and ghost-account recovery.
//!
//! The spider visits every known user's home page for metadata and
//! commented-URL lists, then crawls every comment page **four times**:
//! anonymously (the baseline), with the NSFW filter, with the "offensive"
//! filter, and with both — labeling shadow comments by which authenticated
//! crawls reveal them (§2.2's visibility rules make dual-labeled comments
//! invisible to single-filter sessions).
//!
//! Discovery runs to a fixpoint: scraping the hidden `commentAuthor`
//! metadata surfaces "ghost" authors whose Gab accounts were deleted
//! (§4.1.1); their home pages list URLs no live user may have commented
//! on, which are then crawled in the next round, possibly surfacing more
//! ghosts, and so on.

use crate::resilience::{Phase, PhaseRun};
use crate::scrape;
use crate::store::{CrawlStore, CrawledComment, CrawledUrl, CrawledUser, ShadowLabel};
use crate::Crawler;
use ids::ObjectId;
use std::collections::{HashMap, HashSet};

/// Crawl one user home page into a [`CrawledUser`] (no hidden meta yet).
fn parse_user_page(username: &str, html: &str) -> Option<CrawledUser> {
    let author_id: ObjectId = scrape::extract_attr(html, "data-author-id")?.parse().ok()?;
    let display_name = html
        .find("<h2>")
        .and_then(|s| html[s + 4..].find("</h2>").map(|e| html[s + 4..s + 4 + e].to_owned()))
        .map(|s| scrape::html_unescape(&s))
        .unwrap_or_default();
    let bio = html
        .find("<p class=\"bio\">")
        .and_then(|s| {
            let s = s + "<p class=\"bio\">".len();
            html[s..].find("</p>").map(|e| html[s..s + e].to_owned())
        })
        .map(|s| scrape::html_unescape(&s))
        .unwrap_or_default();
    let url_ids: Vec<ObjectId> = scrape::extract_attr_all(html, "data-commenturl-id")
        .into_iter()
        .filter_map(|s| s.parse().ok())
        .collect();
    Some(CrawledUser {
        username: username.to_owned(),
        author_id,
        display_name,
        bio,
        url_ids,
        meta: None,
    })
}

fn crawl_users(
    crawler: &Crawler,
    store: &CrawlStore,
    run: &PhaseRun<'_>,
    names: &[String],
) -> Vec<CrawledUser> {
    crate::parallel::parallel_fetch(
        crawler.endpoints.dissenter,
        names,
        crawler.config.workers,
        &store.stats,
        |c| run.setup_client(c),
        |client, name| {
            let resp = run.fetch(client, store, &format!("/user/{name}"))?;
            if !resp.status.is_success() {
                return None;
            }
            parse_user_page(name, &resp.text())
        },
    )
}

/// Parse a comment page body into the thread record plus its comments.
pub fn parse_comment_page(html: &str) -> Option<(CrawledUrl, Vec<scrape::ScrapedComment>)> {
    let id: ObjectId = scrape::extract_attr(html, "data-commenturl-id")?.parse().ok()?;
    let url = scrape::html_unescape(&scrape::extract_attr(html, "data-url")?);
    let title = html
        .find("<title>")
        .and_then(|s| html[s + 7..].find("</title>").map(|e| html[s + 7..s + 7 + e].to_owned()))
        .map(|s| scrape::html_unescape(&s))
        .unwrap_or_default();
    let description = html
        .find("<p class=\"description\">")
        .and_then(|s| {
            let s = s + "<p class=\"description\">".len();
            html[s..].find("</p>").map(|e| html[s..s + e].to_owned())
        })
        .map(|s| scrape::html_unescape(&s))
        .unwrap_or_default();
    let upvotes = scrape::extract_attr(html, "data-upvotes")?.parse().ok()?;
    let downvotes = scrape::extract_attr(html, "data-downvotes")?.parse().ok()?;
    let declared_comment_count =
        scrape::extract_attr(html, "data-comment-count")?.parse().ok()?;
    let comments = scrape::scrape_comments(html);
    Some((
        CrawledUrl { id, url, title, description, upvotes, downvotes, declared_comment_count },
        comments,
    ))
}

/// One authenticated (or anonymous) pass over a set of comment pages.
fn crawl_pass(
    crawler: &Crawler,
    store: &CrawlStore,
    run: &PhaseRun<'_>,
    url_ids: &[ObjectId],
    session: Option<&str>,
) -> Vec<(CrawledUrl, Vec<scrape::ScrapedComment>)> {
    crate::parallel::parallel_fetch(
        crawler.endpoints.dissenter,
        url_ids,
        crawler.config.workers,
        &store.stats,
        |client| {
            run.setup_client(client);
            if let Some(s) = session {
                client.set_cookie("session", s);
            }
        },
        |client, id| {
            let resp = run.fetch(client, store, &format!("/url/{id}"))?;
            if !resp.status.is_success() {
                return None;
            }
            parse_comment_page(&resp.text())
        },
    )
}

/// Crawl `url_ids` with all four visibility contexts, inserting threads
/// and labeled comments into the store (§3.2's diff inference).
pub fn crawl_threads(
    crawler: &Crawler,
    store: &mut CrawlStore,
    run: &PhaseRun<'_>,
    url_ids: &[ObjectId],
) {
    if url_ids.is_empty() {
        return;
    }
    let anon = crawl_pass(crawler, store, run, url_ids, None);
    let mut baseline: HashSet<ObjectId> = HashSet::new();
    for (url, comments) in anon {
        let url_id = url.id;
        store.urls.insert(url.id, url);
        for c in comments {
            baseline.insert(c.id);
            store.comments.entry(c.id).or_insert(CrawledComment {
                id: c.id,
                url_id,
                author_id: c.author_id,
                parent: c.parent,
                text: c.text,
                created_at: c.created_at,
                label: ShadowLabel::Standard,
            });
        }
    }
    let collect_new = |pass: Vec<(CrawledUrl, Vec<scrape::ScrapedComment>)>| {
        let mut out: Vec<(ObjectId, scrape::ScrapedComment)> = Vec::new();
        for (url, comments) in pass {
            for c in comments {
                if !baseline.contains(&c.id) {
                    out.push((url.id, c));
                }
            }
        }
        out
    };
    let nsfw_new = collect_new(crawl_pass(crawler, store, run, url_ids, Some("crawler:nsfw")));
    let off_new = collect_new(crawl_pass(crawler, store, run, url_ids, Some("crawler:offensive")));
    let both_new = collect_new(crawl_pass(crawler, store, run, url_ids, Some("crawler:both")));
    let nsfw_ids: HashSet<ObjectId> = nsfw_new.iter().map(|(_, c)| c.id).collect();
    let off_ids: HashSet<ObjectId> = off_new.iter().map(|(_, c)| c.id).collect();
    for (url_id, c) in nsfw_new.into_iter().chain(off_new).chain(both_new) {
        let label = match (nsfw_ids.contains(&c.id), off_ids.contains(&c.id)) {
            (true, true) | (false, false) => ShadowLabel::Both,
            (true, false) => ShadowLabel::Nsfw,
            (false, true) => ShadowLabel::Offensive,
        };
        store.comments.entry(c.id).or_insert(CrawledComment {
            id: c.id,
            url_id,
            author_id: c.author_id,
            parent: c.parent,
            text: c.text,
            created_at: c.created_at,
            label,
        });
    }
}

/// Run the spider phase to fixpoint.
pub fn spider(crawler: &Crawler, store: &mut CrawlStore) {
    // One budget and breaker context for the whole phase, fixpoint
    // rounds included.
    let run = PhaseRun::new(crawler, Phase::Spider);

    // 1. Home pages for every probed username.
    let names = store.dissenter_usernames.clone();
    for u in crawl_users(crawler, store, &run, &names) {
        store.users.insert(u.username.clone(), u);
    }

    // 2. Crawl comment pages, discover ghosts, repeat until no new URLs.
    // Each URL is attempted once: a thread whose every fetch attempt
    // failed permanently is recorded in the failure counters rather than
    // retried forever (liveness under pathological fault rates).
    let mut attempted: HashSet<ObjectId> = HashSet::new();
    loop {
        let missing: Vec<ObjectId> = {
            let crawled: HashSet<ObjectId> = store.urls.keys().copied().collect();
            let mut v: Vec<ObjectId> = store
                .users
                .values()
                .flat_map(|u| u.url_ids.iter().copied())
                .filter(|id| !crawled.contains(id) && !attempted.contains(id))
                .collect();
            v.sort();
            v.dedup();
            v
        };
        if missing.is_empty() {
            break;
        }
        attempted.extend(missing.iter().copied());
        crawl_threads(crawler, store, &run, &missing);
        discover_metadata_and_ghosts(crawler, store, &run, Some("crawler:both"));
    }
}

/// Scrape hidden `commentAuthor` metadata for every comment author that
/// does not have it yet, discovering (and home-page-crawling) "ghost"
/// users along the way. `session` matters when the author's only comments
/// are shadow content (their comment pages 404 anonymously).
pub fn discover_metadata_and_ghosts(
    crawler: &Crawler,
    store: &mut CrawlStore,
    run: &PhaseRun<'_>,
    session: Option<&str>,
) {
    let have_meta: HashSet<ObjectId> = store
        .users
        .values()
        .filter(|u| u.meta.is_some())
        .map(|u| u.author_id)
        .collect();
    let by_author: HashMap<ObjectId, ObjectId> = {
        let mut m: HashMap<ObjectId, ObjectId> = HashMap::new();
        for c in store.comments.values() {
            if !have_meta.contains(&c.author_id) {
                // Sample the *lowest* comment id per author, not the first
                // seen: the HashMap walk order varies per instance, and the
                // chosen target must not.
                m.entry(c.author_id).and_modify(|id| *id = (*id).min(c.id)).or_insert(c.id);
            }
        }
        m
    };
    // Sorted so the request order (and thus any fault-injection
    // sequence) is reproducible run-to-run despite the HashMap walk.
    let author_samples: Vec<(ObjectId, ObjectId)> = {
        let mut v: Vec<(ObjectId, ObjectId)> = by_author.iter().map(|(&a, &c)| (a, c)).collect();
        v.sort();
        v
    };
    let metas = crate::parallel::parallel_fetch(
        crawler.endpoints.dissenter,
        &author_samples,
        crawler.config.workers,
        &store.stats,
        |client| {
            run.setup_client(client);
            if let Some(s) = session {
                client.set_cookie("session", s);
            }
        },
        |client, &(author, cid)| {
            let resp = run.fetch(client, store, &format!("/comment/{cid}"))?;
            if !resp.status.is_success() {
                return None;
            }
            let html = resp.text();
            let meta = scrape::scrape_hidden_meta(&html)?;
            // The blob also names the author — the hook for ghost-account
            // discovery below.
            let username = html
                .find("\"username\":\"")
                .and_then(|s| {
                    let s = s + "\"username\":\"".len();
                    html[s..].find('"').map(|e| html[s..s + e].to_owned())
                })?;
            Some((author, username, meta))
        },
    );

    let known: HashSet<ObjectId> = store.users.values().map(|u| u.author_id).collect();
    let mut ghost_usernames: Vec<String> = Vec::new();
    let mut meta_by_username: HashMap<String, crate::store::HiddenMeta> = HashMap::new();
    for (author, username, meta) in metas {
        if !known.contains(&author) {
            // Ghost author: commented, but absent from the Gab
            // enumeration — their Gab account was deleted (§4.1.1).
            ghost_usernames.push(username.clone());
        }
        meta_by_username.insert(username, meta);
    }
    ghost_usernames.sort();
    ghost_usernames.dedup();
    let ghosts = crawl_users(crawler, store, run, &ghost_usernames);
    for g in ghosts {
        store.users.insert(g.username.clone(), g);
    }
    // Attach hidden metadata to every user we have it for.
    for user in store.users.values_mut() {
        if let Some(meta) = meta_by_username.get(&user.username) {
            user.meta = Some(meta.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_page_parse() {
        let html = concat!(
            r#"<html><body><div class="profile" data-author-id="5c780b19aabbccddeeff0022">"#,
            r#"<h1>@bob</h1><h2>Bob &amp; Co</h2><p class="bio">free speech fan</p></div>"#,
            r#"<ul><li><a href="/url/x" data-commenturl-id="5c780b19aabbccddeeff0033">u</a></li>"#,
            r#"<li><a href="/url/y" data-commenturl-id="5c780b19aabbccddeeff0044">v</a></li></ul>"#,
            r#"</body></html>"#
        );
        let u = parse_user_page("bob", html).expect("parses");
        assert_eq!(u.display_name, "Bob & Co");
        assert_eq!(u.bio, "free speech fan");
        assert_eq!(u.url_ids.len(), 2);
    }

    #[test]
    fn comment_page_parse() {
        let html = concat!(
            r#"<html><head><title>A &amp; B</title></head><body>"#,
            r#"<div class="thread" data-commenturl-id="5c780b19aabbccddeeff0055" "#,
            r#"data-url="https://example.com/a?x=1" data-upvotes="3" data-downvotes="7" "#,
            r#"data-comment-count="2"><p class="description">desc</p></div>"#,
            r#"<ol><li class="comment" data-comment-id="5c780b19aabbccddeeff0066" "#,
            r#"data-author-id="5c780b19aabbccddeeff0077" data-parent="" data-created="7"><p>hey</p></li></ol>"#,
            r#"</body></html>"#
        );
        let (url, comments) = parse_comment_page(html).expect("parses");
        assert_eq!(url.title, "A & B");
        assert_eq!(url.url, "https://example.com/a?x=1");
        assert_eq!(url.upvotes, 3);
        assert_eq!(url.downvotes, 7);
        assert_eq!(url.declared_comment_count, 2);
        assert_eq!(comments.len(), 1);
    }

    #[test]
    fn garbage_pages_yield_none() {
        assert!(parse_user_page("x", "<html></html>").is_none());
        assert!(parse_comment_page("<html></html>").is_none());
    }
}
