//! The end-to-end world generator (materializing convenience wrappers).
//!
//! [`generate`] builds a complete [`platform::World`] from a
//! [`WorldConfig`]: Gab users (with the ID-counter anomalies of Fig. 2),
//! the Dissenter subset (77% joining by March 2019), Table-1 flag priors,
//! Table-2 URL/domain composition, calibrated comment text (Figs. 4, 7, 8),
//! votes conditioned on toxicity (Fig. 5), the follower graph with the
//! planted hateful core (Fig. 9, §4.5.1), the Reddit mirror (Fig. 6), the
//! YouTube state space (§4.2.2), and the Table-3 baseline corpora.
//!
//! Both entry points are thin wrappers that drain a streaming
//! [`crate::source::WorldSource`] into one `World`; use the source
//! directly to process batches without materializing everything at once.
//! This module keeps the phenomenon knobs ([`bias_severity_mult`],
//! [`bias_attack_mult`]) and the [`GroundTruth`] the source reports.

use crate::config::WorldConfig;
use crate::source::WorldSource;
use ids::ObjectId;
use platform::World;

/// Generation-time ground truth, kept out of the [`World`] the crawler
/// sees; used by tests and the experiment harness for validation only.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Author-ids of the planted hateful-core members.
    pub core_author_ids: Vec<ObjectId>,
    /// World user indexes of Dissenter users.
    pub dissenter_indices: Vec<u32>,
    /// World user indexes of *active* (≥1 comment) Dissenter users.
    pub active_indices: Vec<u32>,
    /// Per-active-user latent toxicity heat (parallel to
    /// `active_indices`).
    pub user_heat: Vec<f64>,
}

/// Allsides-style bias classes — re-exported from the analysis crate so
/// the phenomenon generator and the measurement share one public mapping.
pub use analysis::allsides::Bias;

/// Bias of a domain (the shared Allsides mapping).
pub fn domain_bias(domain: &str) -> Bias {
    analysis::allsides::bias_of_domain(domain)
}

/// SEVERE_TOXICITY heat multiplier per bias class (Fig. 8a: center peaks,
/// right lowest).
pub fn bias_severity_mult(b: Bias) -> f64 {
    match b {
        Bias::Left => 0.95,
        Bias::LeftCenter => 1.08,
        Bias::Center => 1.30,
        Bias::RightCenter => 0.82,
        Bias::Right => 0.55,
        Bias::NotRanked => 1.0,
    }
}

/// ATTACK_ON_AUTHOR multiplier per bias class (Fig. 8b: monotone from
/// left to right).
pub fn bias_attack_mult(b: Bias) -> f64 {
    match b {
        Bias::Left => 1.8,
        Bias::LeftCenter => 1.45,
        Bias::Center => 1.15,
        Bias::RightCenter => 0.9,
        Bias::Right => 0.65,
        Bias::NotRanked => 1.0,
    }
}

/// Generate a complete world (serial; identical to [`generate_sharded`]
/// at any worker count).
///
/// Convenience wrapper over [`WorldSource`]: materializes every batch
/// into one `World`. Prefer the source for batch-at-a-time processing.
///
/// ```no_run
/// let (world, truth) = synth::generate(&synth::WorldConfig::small());
/// assert_eq!(truth.dissenter_indices.is_empty(), false);
/// assert!(world.dissenter.total_comments() > 0);
/// ```
pub fn generate(cfg: &WorldConfig) -> (World, GroundTruth) {
    generate_sharded(cfg, 1)
}

/// [`generate`] with comment-text generation sharded over `workers`
/// threads. World structure (users, URLs, slots, votes, flags) is always
/// sampled serially from the per-section seed streams; only text
/// synthesis — the dominant cost — fans out, with each comment drawing
/// from its own stream split by stable comment index
/// (`stream_seed(child_seed(seed, TAG), i)`), so the world is
/// byte-identical for every worker count.
///
/// Equivalent to draining [`WorldSource::new`] with
/// [`WorldSource::collect_world`] — which is exactly what it does.
pub fn generate_sharded(cfg: &WorldConfig, workers: usize) -> (World, GroundTruth) {
    WorldSource::new(cfg, workers).collect_world()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{paper, Scale};
    use ids::clock::from_ymd;
    use platform::{User, YtKind, YtState};

    fn small_world() -> &'static (World, GroundTruth) {
        static WORLD: std::sync::OnceLock<(World, GroundTruth)> = std::sync::OnceLock::new();
        WORLD.get_or_init(|| generate(&WorldConfig::small()))
    }

    #[test]
    fn headline_counts_scale() {
        let (w, t) = small_world();
        let cfg = WorldConfig::small();
        let n_diss = w.dissenter_user_count();
        assert!((n_diss as f64 - cfg.n(paper::DISSENTER_USERS) as f64).abs() < 5.0, "{n_diss}");
        let total = w.dissenter.total_comments();
        let want = cfg.n(paper::COMMENTS);
        assert!(
            (total as f64) > 0.9 * want as f64 && (total as f64) < 1.2 * want as f64,
            "comments {total} want ~{want}"
        );
        assert!(w.dissenter.url_count() >= cfg.n(paper::URLS), "{}", w.dissenter.url_count());
        assert_eq!(t.active_indices.len(), w.dissenter.active_author_count().max(t.active_indices.len()));
    }

    #[test]
    fn active_fraction_near_half() {
        let (w, t) = small_world();
        let frac = t.active_indices.len() as f64 / w.dissenter_user_count() as f64;
        assert!((frac - 0.47).abs() < 0.05, "{frac}");
    }

    #[test]
    fn early_join_fraction() {
        let (w, _) = small_world();
        let cutoff = from_ymd(2019, 4, 1);
        let (mut early, mut total) = (0, 0);
        for u in &w.users {
            if let Some(aid) = u.author_id {
                total += 1;
                if aid.timestamp() < cutoff {
                    early += 1;
                }
            }
        }
        let frac = early as f64 / total as f64;
        assert!((frac - 0.77).abs() < 0.05, "{frac}");
    }

    #[test]
    fn comment_concentration_matches_fig3() {
        let (w, t) = small_world();
        let counts: Vec<u64> = t
            .active_indices
            .iter()
            .map(|&i| {
                let aid = w.user(i).author_id.expect("dissenter");
                w.dissenter.comments_for_author(aid).len() as u64
            })
            .collect();
        let f = stats::ecdf::fraction_for_share(&counts, 0.9);
        assert!((0.07..0.25).contains(&f), "90% of comments from {f} of active users");
    }

    #[test]
    fn deleted_accounts_leave_orphans() {
        let (w, _) = small_world();
        let deleted: Vec<&User> = w.users.iter().filter(|u| u.gab_deleted).collect();
        assert!(!deleted.is_empty());
        for u in deleted.iter().take(5) {
            assert!(u.author_id.is_some(), "deleted accounts were Dissenter users");
            assert!(w.gab.user_by_gab_id(u.gab_id).is_none(), "gone from the Gab API");
        }
    }

    #[test]
    fn admins_exist() {
        let (w, _) = small_world();
        let admins: Vec<&User> = w.users.iter().filter(|u| u.flags.is_admin).collect();
        assert_eq!(admins.len(), 2);
        let names: Vec<&str> = admins.iter().map(|u| u.username.as_str()).collect();
        assert!(names.contains(&"a") && names.contains(&"shadowknight412"), "{names:?}");
    }

    #[test]
    fn shadow_content_rates() {
        let (w, _) = small_world();
        let total = w.dissenter.total_comments() as f64;
        let nsfw = w.dissenter.comments().iter().filter(|c| c.nsfw).count() as f64;
        let off = w.dissenter.comments().iter().filter(|c| c.offensive).count() as f64;
        assert!((nsfw / total - 0.006).abs() < 0.004, "nsfw rate {}", nsfw / total);
        assert!((off / total - 0.005).abs() < 0.004, "offensive rate {}", off / total);
    }

    #[test]
    fn url_anomalies_present() {
        let (w, _) = small_world();
        let urls = w.dissenter.urls();
        assert!(urls.iter().any(|u| u.url.starts_with("file://")));
        assert!(urls.iter().any(|u| u.url.starts_with("chrome://")));
        let https = urls.iter().filter(|u| u.url.starts_with("https://")).count() as f64;
        let frac = https / urls.len() as f64;
        assert!(frac > 0.9, "https fraction {frac}");
    }

    #[test]
    fn youtube_states_cover_reasons() {
        let (w, _) = small_world();
        let mut kinds = std::collections::HashSet::new();
        let mut unavailable = 0usize;
        let mut total = 0usize;
        for (_, c) in w.youtube.iter() {
            kinds.insert(c.kind);
            total += 1;
            if matches!(c.state, YtState::Unavailable(_)) {
                unavailable += 1;
            }
        }
        assert!(total > 100, "{total}");
        assert!(kinds.contains(&YtKind::Video));
        let frac = unavailable as f64 / total as f64;
        assert!((0.05..0.25).contains(&frac), "unavailable {frac}");
    }

    #[test]
    fn reddit_match_rate() {
        let (w, _) = small_world();
        let frac = w.reddit.account_count() as f64 / w.dissenter_user_count() as f64;
        assert!((frac - 0.56).abs() < 0.05, "{frac}");
    }

    #[test]
    fn deterministic_world() {
        let (a, _) = generate(&WorldConfig { seed: 77, ..WorldConfig::small() });
        let (b, _) = generate(&WorldConfig { seed: 77, ..WorldConfig::small() });
        assert_eq!(a.dissenter.total_comments(), b.dissenter.total_comments());
        assert_eq!(a.dissenter.comments()[0].text, b.dissenter.comments()[0].text);
        assert_eq!(a.users.len(), b.users.len());
        assert_eq!(a.users[100].username, b.users[100].username);
    }

    #[test]
    fn sharded_world_identical_for_any_worker_count() {
        let cfg = WorldConfig { scale: Scale::Custom(0.003), ..WorldConfig::small() };
        let (serial, _) = generate_sharded(&cfg, 1);
        for workers in [2, 8] {
            let (par, _) = generate_sharded(&cfg, workers);
            assert_eq!(par.dissenter.total_comments(), serial.dissenter.total_comments());
            assert!(
                par.dissenter
                    .comments()
                    .iter()
                    .zip(serial.dissenter.comments())
                    .all(|(a, b)| a.text == b.text && a.id == b.id),
                "workers={workers}: comment stream diverged"
            );
            assert_eq!(par.baselines[0].comments, serial.baselines[0].comments);
            assert_eq!(par.baselines[1].comments, serial.baselines[1].comments);
        }
    }

    #[test]
    fn custom_tiny_scale_generates() {
        let cfg = WorldConfig { scale: Scale::Custom(0.004), ..WorldConfig::small() };
        let (w, t) = generate(&cfg);
        assert!(w.dissenter.total_comments() > 0);
        assert!(!t.core_author_ids.is_empty());
    }
}
