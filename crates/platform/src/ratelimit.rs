//! Rate limiting as the measured services exposed it.
//!
//! * Dissenter: HTTP headers advertise a 10-requests-per-minute limit —
//!   but the counter is **per-URL**, so a crawler that never re-requests a
//!   URL is unimpeded (§3.2). We reproduce that quirk exactly.
//! * Gab: exposes `X-RateLimit-Remaining` and a reset time; the paper's
//!   crawler throttles to 1 req/s and sleeps until reset when exhausted
//!   (§3.4).
//!
//! The limiter is keyed (per-URL or per-client) and driven by an explicit
//! clock value, keeping simulations deterministic.

use std::collections::HashMap;

/// Outcome of asking the limiter for a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// Request admitted; `remaining` slots left in the window.
    Allow {
        /// Requests left in the current window after this one.
        remaining: u32,
        /// When the window resets (absolute seconds).
        reset_at: u64,
    },
    /// Request rejected until `reset_at`.
    Deny {
        /// When the window resets (absolute seconds).
        reset_at: u64,
    },
}

impl RateDecision {
    /// Was the request admitted?
    pub fn allowed(&self) -> bool {
        matches!(self, RateDecision::Allow { .. })
    }
}

/// A fixed-window, keyed rate limiter.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    limit: u32,
    window_secs: u64,
    // key → (window_start, used)
    state: HashMap<String, (u64, u32)>,
}

impl RateLimiter {
    /// `limit` requests per `window_secs` per key.
    pub fn new(limit: u32, window_secs: u64) -> Self {
        assert!(limit > 0 && window_secs > 0, "limit and window must be positive");
        Self { limit, window_secs, state: HashMap::new() }
    }

    /// Dissenter's advertised per-URL limit: 10 requests per minute.
    pub fn dissenter_per_url() -> Self {
        Self::new(10, 60)
    }

    /// Admit or reject a request for `key` at time `now`.
    pub fn check(&mut self, key: &str, now: u64) -> RateDecision {
        let entry = self.state.entry(key.to_owned()).or_insert((now, 0));
        if now >= entry.0 + self.window_secs {
            *entry = (now, 0);
        }
        let reset_at = entry.0 + self.window_secs;
        if entry.1 >= self.limit {
            RateDecision::Deny { reset_at }
        } else {
            entry.1 += 1;
            RateDecision::Allow { remaining: self.limit - entry.1, reset_at }
        }
    }

    /// The configured per-window limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Number of keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_up_to_limit_then_denies() {
        let mut rl = RateLimiter::new(3, 60);
        assert!(rl.check("k", 0).allowed());
        assert!(rl.check("k", 1).allowed());
        assert!(rl.check("k", 2).allowed());
        let d = rl.check("k", 3);
        assert!(!d.allowed());
        assert_eq!(d, RateDecision::Deny { reset_at: 60 });
    }

    #[test]
    fn remaining_counts_down() {
        let mut rl = RateLimiter::new(2, 60);
        assert_eq!(rl.check("k", 0), RateDecision::Allow { remaining: 1, reset_at: 60 });
        assert_eq!(rl.check("k", 0), RateDecision::Allow { remaining: 0, reset_at: 60 });
    }

    #[test]
    fn window_resets() {
        let mut rl = RateLimiter::new(1, 60);
        assert!(rl.check("k", 0).allowed());
        assert!(!rl.check("k", 30).allowed());
        assert!(rl.check("k", 60).allowed(), "new window admits again");
    }

    #[test]
    fn keys_are_independent_like_dissenters_per_url_counter() {
        // The §3.2 quirk: exhausting one URL's budget leaves others open.
        let mut rl = RateLimiter::dissenter_per_url();
        for i in 0..10 {
            assert!(rl.check("https://a.example/x", i).allowed());
        }
        assert!(!rl.check("https://a.example/x", 11).allowed());
        assert!(rl.check("https://a.example/y", 11).allowed());
        assert_eq!(rl.tracked_keys(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_panics() {
        RateLimiter::new(0, 60);
    }
}
