//! Microbenchmarks for the substrate crates: identifiers, JSON, text
//! processing, statistics, and graph algorithms.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ids::{EntityKind, ObjectIdGen};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ids(c: &mut Criterion) {
    let mut g = c.benchmark_group("ids");
    g.bench_function("objectid_mint", |b| {
        let mut gen = ObjectIdGen::new(EntityKind::Comment, 7);
        let mut t = 1_551_139_200u64;
        b.iter(|| {
            t += 1;
            black_box(gen.next(t))
        });
    });
    g.bench_function("objectid_parse", |b| {
        let id = ObjectIdGen::new(EntityKind::Author, 1).next(1_551_139_200).to_hex();
        b.iter(|| black_box(id.parse::<ids::ObjectId>().unwrap()));
    });
    g.bench_function("gabid_allocate", |b| {
        let mut alloc = ids::GabIdAllocator::with_paper_anomalies(0.02);
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = 1_471_219_200u64;
        b.iter(|| {
            t += 60;
            black_box(alloc.allocate(t, &mut rng))
        });
    });
    g.finish();
}

fn bench_json(c: &mut Criterion) {
    let mut g = c.benchmark_group("jsonlite");
    let doc = r#"{"id":123456,"username":"freespeaker42","acct":"freespeaker42","display_name":"Free Speaker","note":"tired of censorship","created_at":"2019-02-28T16:23:53Z","followers_count":1842,"following_count":99,"fields":[{"k":"a","v":1.5},{"k":"b","v":null}]}"#;
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("parse_account", |b| {
        b.iter(|| black_box(jsonlite::parse(doc).unwrap()));
    });
    let v = jsonlite::parse(doc).unwrap();
    g.bench_function("serialize_account", |b| {
        b.iter(|| black_box(jsonlite::to_string(&v)));
    });
    g.finish();
}

fn bench_textkit(c: &mut Criterion) {
    let mut g = c.benchmark_group("textkit");
    let comment = "The author of this article is just repeating what the media always says \
                   about censorship and free speech on every platform these days";
    g.bench_function("tokenize", |b| {
        b.iter(|| black_box(textkit::tokenize(comment)));
    });
    g.bench_function("porter_stem_word", |b| {
        b.iter(|| black_box(textkit::porter_stem("generalizations")));
    });
    g.bench_function("tokenize_stemmed", |b| {
        b.iter(|| black_box(textkit::tokenize_stemmed(comment)));
    });
    g.bench_function("langid_detect", |b| {
        b.iter(|| black_box(textkit::detect(comment)));
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    let xs: Vec<f64> = (0..10_000).map(|i| ((i * 2_654_435_761u64 % 1_000_000) as f64) / 1e6).collect();
    let ys: Vec<f64> = (0..10_000).map(|i| ((i * 40_503u64 % 1_000_000) as f64) / 1e6).collect();
    g.bench_function("ecdf_build_10k", |b| {
        b.iter(|| black_box(stats::Ecdf::new(&xs)));
    });
    g.bench_function("ks_two_sample_10k", |b| {
        b.iter(|| black_box(stats::ks_two_sample(&xs, &ys)));
    });
    let degrees: Vec<f64> = (1..5_000).map(|i| (1.0 / (i as f64 / 5_000.0)).powf(0.9)).collect();
    g.bench_function("power_law_fit_5k", |b| {
        b.iter(|| black_box(stats::fit_power_law(&degrees, 1.0)));
    });
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    // Build a 10k-node preferential-ish graph once.
    let mut dg = graph::DiGraph::with_nodes(10_000);
    let mut x = 1u64;
    for u in 0..10_000u32 {
        for _ in 0..5 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let v = ((x >> 33) % 10_000) as u32;
            dg.add_edge(u, v);
        }
    }
    g.bench_function("pagerank_10k_nodes", |b| {
        b.iter(|| black_box(graph::pagerank(&dg, 0.85, 1e-8, 50)));
    });
    g.bench_function("mutual_adjacency_10k", |b| {
        b.iter(|| black_box(dg.mutual_adjacency()));
    });
    let counts: Vec<u64> = (0..10_000).map(|i| (i % 300) as u64).collect();
    let tox: Vec<f64> = (0..10_000).map(|i| ((i % 100) as f64) / 100.0).collect();
    g.bench_function("hateful_core_extract_10k", |b| {
        b.iter(|| {
            black_box(graph::extract_hateful_core(
                &dg,
                &counts,
                &tox,
                graph::CoreCriteria::default(),
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ids, bench_json, bench_textkit, bench_stats, bench_graph);
criterion_main!(benches);
