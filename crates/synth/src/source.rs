//! Streaming world generation: [`WorldSource`] + [`WorldBatch`].
//!
//! [`WorldSource::new`] runs every *structural* sampling pass — users,
//! activity, URLs, comment slots, labels, votes, YouTube states, the
//! Reddit mirror, baseline specs — in exactly the per-section seed-stream
//! order of the materializing generator, but records plan vectors instead
//! of writing a [`World`]. Iterating the source then yields
//! [`WorldBatch`]es whose comment/Reddit/baseline *texts* are synthesized
//! lazily, batch by batch, each from the seed stream of its original item
//! index ([`TextGen::generate_batch_indexed`]). Consequences:
//!
//! * **Byte-identity.** Collecting every batch into a `World` reproduces
//!   [`crate::world::generate_sharded`] bit for bit at any worker count
//!   and any batch size — the `scale.stream` simcheck family holds this
//!   across seeds.
//! * **Bounded text memory.** The dominant transient of the materializing
//!   path — every comment text held in a side vector, then cloned into
//!   the store — never exists: at most one batch of texts is in flight,
//!   and each is *moved* into the consumer.
//!
//! ```no_run
//! use synth::{WorldConfig, WorldSource};
//!
//! let source = WorldSource::new(&WorldConfig::small(), 2);
//! let mut world = platform::World::new();
//! for batch in source {
//!     batch.apply(&mut world); // or inspect/spill instead of applying
//! }
//! ```

use crate::baselines::{sample_spec, Community};
use crate::config::{paper, WorldConfig};
use crate::dist::{beta, child_seed, coin, geometric, power_law_int, Categorical};
use crate::names;
use crate::social::{generate_social, SocialConfig};
use crate::textgen::{CommentSpec, TextGen};
use crate::world::{bias_attack_mult, bias_severity_mult, domain_bias, Bias, GroundTruth};
use ids::{
    clock::{from_ymd, GAB_LAUNCH},
    EntityKind, GabIdAllocator, ObjectId, ObjectIdGen, Timestamp, DISSENTER_LAUNCH, STUDY_END,
};
use platform::{
    BaselineCorpus, Comment, CommentUrl, User, UserFlags, ViewFilters, Vote, World, YtContent,
    YtKind, YtState, YtUnavailableReason,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textkit::langid::Lang;

/// Default number of items per yielded [`WorldBatch`].
pub const DEFAULT_BATCH_SIZE: usize = 8_192;

/// A comment fully planned structurally; only its text is outstanding.
#[derive(Debug, Clone, Copy)]
struct PlannedComment {
    id: ObjectId,
    url_id: ObjectId,
    author_id: ObjectId,
    parent: Option<ObjectId>,
    created: Timestamp,
    nsfw: bool,
    offensive: bool,
    spec: CommentSpec,
    /// Index into the tag-13 text stream; `None` for the synthetic 90k-
    /// character "ha" comment, whose text is fixed by its spec alone.
    text_index: Option<u64>,
}

/// One increment of world state, in application order.
///
/// Batches arrive users → follows → URLs → comments → votes → YouTube →
/// Reddit accounts → Reddit comments → baselines; [`WorldBatch::apply`]
/// replays one onto a [`World`].
#[derive(Debug)]
pub enum WorldBatch {
    /// Users in creation (Gab-ID counter) order.
    Users(Vec<User>),
    /// Follower edges `(from, to)` over world user indices.
    Follows(Vec<(u32, u32)>),
    /// Commented URLs (deduplicated, ids assigned).
    Urls(Vec<CommentUrl>),
    /// Comments in creation order, texts synthesized for this batch only.
    Comments(Vec<Comment>),
    /// Vote bursts `(url id, direction, count)` in draw order.
    Votes(Vec<(ObjectId, Vote, u32)>),
    /// YouTube content states keyed by URL.
    Youtube(Vec<(String, YtContent)>),
    /// Reddit mirror accounts `(username, declared comment count)`.
    RedditAccounts(Vec<(String, u64)>),
    /// Materialized Reddit comments `(username, text)`.
    RedditComments(Vec<(String, String)>),
    /// One Table-3 baseline corpus.
    Baseline(BaselineCorpus),
}

impl WorldBatch {
    /// Replay this batch onto `world`.
    pub fn apply(self, world: &mut World) {
        match self {
            WorldBatch::Users(users) => {
                for u in users {
                    world.add_user(u);
                }
            }
            WorldBatch::Follows(edges) => {
                for (a, b) in edges {
                    world.gab.follow(a, b);
                }
            }
            WorldBatch::Urls(urls) => {
                for u in urls {
                    world.dissenter.add_url(u).expect("urls deduplicated at generation");
                }
            }
            WorldBatch::Comments(comments) => {
                for c in comments {
                    world.dissenter.add_comment(c);
                }
            }
            WorldBatch::Votes(votes) => {
                for (id, vote, n) in votes {
                    for _ in 0..n {
                        world.dissenter.vote(id, vote);
                    }
                }
            }
            WorldBatch::Youtube(entries) => {
                for (url, content) in entries {
                    world.youtube.put(&url, content);
                }
            }
            WorldBatch::RedditAccounts(accounts) => {
                for (name, declared) in accounts {
                    world.reddit.create_account(&name);
                    world.reddit.set_declared(&name, declared);
                }
            }
            WorldBatch::RedditComments(comments) => {
                for (name, text) in comments {
                    world.reddit.add_comment(&name, text);
                }
            }
            WorldBatch::Baseline(corpus) => world.baselines.push(corpus),
        }
    }

    /// Number of items in this batch.
    pub fn len(&self) -> usize {
        match self {
            WorldBatch::Users(v) => v.len(),
            WorldBatch::Follows(v) => v.len(),
            WorldBatch::Urls(v) => v.len(),
            WorldBatch::Comments(v) => v.len(),
            WorldBatch::Votes(v) => v.len(),
            WorldBatch::Youtube(v) => v.len(),
            WorldBatch::RedditAccounts(v) => v.len(),
            WorldBatch::RedditComments(v) => v.len(),
            WorldBatch::Baseline(c) => c.comments.len(),
        }
    }

    /// Is the batch empty? (Never true for yielded batches.)
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Seed-deterministic streaming generator over the full world.
///
/// Construction performs all structural sampling (cheap, bounded by the
/// plan vectors); iteration yields [`WorldBatch`]es with texts generated
/// per batch. [`WorldSource::collect_world`] is the materializing
/// convenience the legacy `generate*` functions delegate to.
pub struct WorldSource {
    workers: usize,
    batch_size: usize,
    text_seed: u64,
    reddit_seed: u64,
    gen: TextGen,
    truth: GroundTruth,
    users: std::vec::IntoIter<User>,
    follows: std::vec::IntoIter<(u32, u32)>,
    urls: std::vec::IntoIter<CommentUrl>,
    comments: std::vec::IntoIter<PlannedComment>,
    votes: std::vec::IntoIter<(ObjectId, Vote, u32)>,
    youtube: std::vec::IntoIter<(String, YtContent)>,
    reddit_accounts: std::vec::IntoIter<(String, u64)>,
    reddit_comments: std::vec::IntoIter<(String, CommentSpec)>,
    reddit_cursor: u64,
    baselines: std::vec::IntoIter<(String, Vec<CommentSpec>, u64)>,
}

impl std::fmt::Debug for WorldSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldSource")
            .field("workers", &self.workers)
            .field("batch_size", &self.batch_size)
            .finish_non_exhaustive()
    }
}

impl WorldSource {
    /// Plan a world: run every structural sampling pass for `cfg` on the
    /// per-section seed streams (identical draws to the materializing
    /// generator) without synthesizing any text.
    pub fn new(cfg: &WorldConfig, workers: usize) -> Self {
        let scale = cfg.scale.factor();
        let mut truth = GroundTruth::default();
        let gen = TextGen::standard();

        // ---- 1. Gab universe ------------------------------------------------
        let mut rng_u = StdRng::seed_from_u64(child_seed(cfg.seed, 1));
        let n_gab = cfg.n(paper::GAB_USERS).max(50);
        let n_diss = cfg.n(paper::DISSENTER_USERS).min(n_gab).max(30);
        let mut alloc = GabIdAllocator::with_paper_anomalies(0.02);
        let mut author_gen = ObjectIdGen::new(EntityKind::Author, child_seed(cfg.seed, 2));

        // Gab creation times: uniform background + two bursts (late-2018
        // deplatformings, Dissenter launch).
        let gab_created = |rng: &mut StdRng| -> Timestamp {
            let r: f64 = rng.gen();
            if r < 0.55 {
                rng.gen_range(GAB_LAUNCH..STUDY_END)
            } else if r < 0.8 {
                rng.gen_range(from_ymd(2018, 10, 1)..from_ymd(2019, 1, 1))
            } else {
                rng.gen_range(DISSENTER_LAUNCH..from_ymd(2019, 6, 1))
            }
        };

        // Dissenter join times: 77% by March 31 2019.
        let diss_join = |rng: &mut StdRng| -> Timestamp {
            if coin(rng, paper::EARLY_JOIN_FRACTION) {
                rng.gen_range(DISSENTER_LAUNCH..from_ymd(2019, 4, 1))
            } else {
                rng.gen_range(from_ymd(2019, 4, 1)..STUDY_END)
            }
        };

        // Generation shares are set slightly above the paper's *detected*
        // shares (see crate::world for the langid rationale).
        let lang_table = Categorical::new(&[
            (Lang::En, 0.942),
            (Lang::De, 0.030),
            (Lang::Fr, 0.0040),
            (Lang::Es, 0.0040),
            (Lang::It, 0.0040),
            (Lang::En, 0.016), // residual languages folded into English
        ]);

        let n_deleted = ((paper::DELETED_GAB_USERS * scale).round() as usize).max(2);
        let n_banned = ((paper::BANNED_USERS * scale).round() as usize).max(2);

        // Creation order must roughly follow time for the Gab ID counter;
        // a Dissenter account requires an existing Gab account, so the
        // join is sampled first and the Gab creation conditioned to
        // precede it (keeps §4.1.1's "77% joined by March 2019" intact).
        let mut creations: Vec<(Timestamp, Option<Timestamp>)> = Vec::with_capacity(n_gab);
        // Special account: @e (the former Gab CTO) holds Gab ID 1.
        creations.push((GAB_LAUNCH - 86_400, None));
        for i in 1..n_gab {
            if i <= n_diss {
                let join = diss_join(&mut rng_u);
                let mut gab_t = gab_created(&mut rng_u);
                if gab_t > join {
                    gab_t = rng_u.gen_range(GAB_LAUNCH..join);
                }
                creations.push((gab_t, Some(join)));
            } else {
                creations.push((gab_created(&mut rng_u), None));
            }
        }
        creations.sort_by_key(|&(t, _)| t);
        debug_assert!(creations[0].1.is_none(), "@e must not be a Dissenter user");

        let mut users: Vec<User> = Vec::with_capacity(creations.len());
        let mut dissenter_count_so_far = 0usize;
        let mut admin_slots: Vec<&str> = vec!["a", "shadowknight412"];
        for (serial, &(gab_t, join_opt)) in creations.iter().enumerate() {
            let is_diss = join_opt.is_some();
            let gab_id = alloc.allocate(gab_t, &mut rng_u);
            let (username, display_name) = if serial == 0 {
                ("e".to_owned(), "Ekrem".to_owned())
            } else if is_diss && !admin_slots.is_empty() {
                let n = admin_slots.pop().expect("non-empty").to_owned();
                let d = if n == "a" { "Andrew Torba".to_owned() } else { "Rob Colbert".to_owned() };
                (n, d)
            } else {
                let u = names::username(&mut rng_u, serial as u64);
                let d = names::display_name(&u);
                (u, d)
            };
            let is_admin = username == "a" || username == "shadowknight412";

            let (author_id, join_t, flags, filters, language, bio, gab_deleted) = if is_diss {
                let join = join_opt.expect("dissenter entries carry a join time").min(STUDY_END);
                let author_id = author_gen.next(join);
                let deleted = !is_admin && dissenter_count_so_far < n_deleted;
                let banned =
                    !is_admin && !deleted && dissenter_count_so_far < n_deleted + n_banned;
                let flags = UserFlags {
                    can_login: !banned && coin(&mut rng_u, 0.9997),
                    can_post: !banned && coin(&mut rng_u, 0.9997),
                    can_report: coin(&mut rng_u, 0.9999),
                    can_chat: coin(&mut rng_u, 0.9997),
                    can_vote: coin(&mut rng_u, 0.9997),
                    is_banned: banned,
                    is_admin,
                    is_moderator: false,
                    is_pro: coin(&mut rng_u, 0.0267),
                    is_donor: coin(&mut rng_u, 0.0084),
                    is_investor: coin(&mut rng_u, 0.0029),
                    is_premium: coin(&mut rng_u, 0.0013),
                    is_tippable: coin(&mut rng_u, 0.0015),
                    is_private: coin(&mut rng_u, 0.039),
                    verified: is_admin || coin(&mut rng_u, 0.0103),
                };
                let filters = ViewFilters {
                    pro: coin(&mut rng_u, 0.9985),
                    verified: coin(&mut rng_u, 0.9987),
                    standard: coin(&mut rng_u, 0.9989),
                    nsfw: coin(&mut rng_u, 0.1504),
                    offensive: coin(&mut rng_u, 0.0733),
                };
                let lang = *lang_table.sample(&mut rng_u);
                let bio = if coin(&mut rng_u, 0.25) {
                    "tired of censorship and cancel culture".to_owned()
                } else if coin(&mut rng_u, 0.3) {
                    "speaking freely about the news".to_owned()
                } else {
                    String::new()
                };
                dissenter_count_so_far += 1;
                (Some(author_id), join, flags, filters, lang.code().to_owned(), bio, deleted)
            } else {
                (
                    None,
                    gab_t,
                    UserFlags { can_login: true, can_post: true, can_report: true, can_chat: true, can_vote: true, ..Default::default() },
                    ViewFilters::default(),
                    "en".to_owned(),
                    String::new(),
                    false,
                )
            };

            let idx = users.len() as u32;
            users.push(User {
                author_id,
                gab_id,
                username,
                display_name,
                bio,
                created_at: if author_id.is_some() { join_t } else { gab_t },
                flags,
                filters,
                language,
                gab_deleted,
            });
            if author_id.is_some() {
                truth.dissenter_indices.push(idx);
            }
        }

        // ---- 2. Activity: who comments, how much ----------------------------
        let mut rng_a = StdRng::seed_from_u64(child_seed(cfg.seed, 3));
        let n_active = ((paper::ACTIVE_FRACTION * truth.dissenter_indices.len() as f64).round()
            as usize)
            .max(20);
        // Ghosts, admins, and banned accounts are forced active (see the
        // materializing generator's rationale); the rest fill by shuffle.
        let mut forced: Vec<u32> = Vec::new();
        let mut others: Vec<u32> = Vec::new();
        for &i in &truth.dissenter_indices {
            let u = &users[i as usize];
            if u.gab_deleted || u.flags.is_admin || u.flags.is_banned {
                forced.push(i);
            } else {
                others.push(i);
            }
        }
        for i in (1..others.len()).rev() {
            others.swap(i, rng_a.gen_range(0..=i));
        }
        let mut candidates = forced;
        candidates.extend(others);
        candidates.truncate(n_active);
        truth.active_indices = candidates;

        // Social graph over active users; planted core members are graph
        // indices into `active_indices`.
        let social_cfg =
            SocialConfig::for_users(truth.active_indices.len(), scale, child_seed(cfg.seed, 4));
        let social = generate_social(&social_cfg);
        let follows: Vec<(u32, u32)> = social
            .edges
            .iter()
            .map(|&(a, b)| {
                (truth.active_indices[a as usize], truth.active_indices[b as usize])
            })
            .collect();
        let core_set: std::collections::HashSet<u32> =
            social.core_members.iter().copied().collect();
        truth.core_author_ids = social
            .core_members
            .iter()
            .map(|&g| {
                users[truth.active_indices[g as usize] as usize]
                    .author_id
                    .expect("core members are Dissenter users")
            })
            .collect();

        // Per-user heat and comment counts (Fig. 3 calibration: see the
        // materializing generator).
        let n_comments_total = cfg.n(paper::COMMENTS);
        let mut counts: Vec<u64> = (0..truth.active_indices.len())
            .map(|_| power_law_int(&mut rng_a, 1.17, 1, ((20_000.0 * scale) as u64).max(3_000)))
            .collect();
        for (g, c) in counts.iter_mut().enumerate() {
            if core_set.contains(&(g as u32)) {
                *c = (*c).max(120 + rng_a.gen_range(0..80));
            }
        }
        let sum: u64 = counts.iter().sum();
        let ratio = n_comments_total as f64 / sum as f64;
        for (g, c) in counts.iter_mut().enumerate() {
            let scaled = ((*c as f64) * ratio).round() as u64;
            *c = if core_set.contains(&(g as u32)) { scaled.max(120) } else { scaled.max(1) };
        }
        truth.user_heat = (0..truth.active_indices.len())
            .map(|g| {
                if core_set.contains(&(g as u32)) {
                    1.4
                } else {
                    beta(&mut rng_a, 1.3, 8.0)
                }
            })
            .collect();

        // ---- 3. URLs ---------------------------------------------------------
        let mut rng_url = StdRng::seed_from_u64(child_seed(cfg.seed, 5));
        let n_urls = cfg.n(paper::URLS).max(100);
        let mut url_gen = ObjectIdGen::new(EntityKind::CommentUrl, child_seed(cfg.seed, 6));

        let top_total: f64 = names::TOP_DOMAINS.iter().map(|(_, w)| w).sum();
        let domain_table = {
            let mut pairs: Vec<(Option<&'static str>, f64)> = names::TOP_DOMAINS
                .iter()
                .map(|&(d, w)| (Some(d), w))
                .collect();
            pairs.push((None, 100.0 - top_total)); // long tail
            Categorical::new(&pairs)
        };
        let tld_table = names::other_tld_table();

        struct UrlRec {
            id: ObjectId,
            url: String,
            domain: String,
            bias: Bias,
            created: Timestamp,
            weight: f64,
            youtube: bool,
        }
        let mut urls: Vec<UrlRec> = Vec::with_capacity(n_urls);
        let mut seen_urls = std::collections::HashSet::new();

        let push_url = |urls: &mut Vec<UrlRec>,
                        seen: &mut std::collections::HashSet<String>,
                        rng: &mut StdRng,
                        url_gen: &mut ObjectIdGen,
                        url: String,
                        domain: String,
                        weight: f64| {
            if !seen.insert(url.clone()) {
                return;
            }
            let created = rng.gen_range(DISSENTER_LAUNCH..STUDY_END - 86_400);
            let youtube = platform::youtube::is_youtube_url(&url);
            urls.push(UrlRec {
                id: url_gen.next(created),
                url,
                bias: domain_bias(&domain),
                domain,
                created,
                weight,
                youtube,
            });
        };

        push_url(
            &mut urls,
            &mut seen_urls,
            &mut rng_url,
            &mut url_gen,
            "https://thewatcherfiles.com/archive/blood-libel.html".into(),
            "thewatcherfiles.com".into(),
            0.0, // weight 0: comment counts assigned explicitly below
        );
        push_url(
            &mut urls,
            &mut seen_urls,
            &mut rng_url,
            &mut url_gen,
            "https://deutschland.de/artikel/kommentar".into(),
            "deutschland.de".into(),
            0.0,
        );
        let n_file = ((13.0 * scale).round() as usize).max(2);
        for i in 0..n_file {
            push_url(
                &mut urls,
                &mut seen_urls,
                &mut rng_url,
                &mut url_gen,
                format!("file:///C:/Users/user{i}/Documents/notes{i}.pdf"),
                "local.file".into(),
                0.05,
            );
        }
        let n_chrome = ((20.0 * scale).round() as usize).max(2);
        for i in 0..n_chrome {
            let page = if i % 2 == 0 { "chrome://startpage/".to_owned() } else { format!("chrome://settings/p{i}") };
            push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, page, "local.chrome".into(), 0.05);
        }
        let n_proto_dups = ((400.0 * scale).round() as usize).max(2);
        for i in 0..n_proto_dups {
            let d = names::other_domain(&mut rng_url, "com");
            let path = names::article_path(&mut rng_url);
            push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, format!("http://{d}{path}?i={i}"), d.clone(), 0.2);
            push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, format!("https://{d}{path}?i={i}"), d, 0.2);
        }
        let n_slash_dups = ((60.0 * scale).round() as usize).max(1);
        for i in 0..n_slash_dups {
            let d = names::other_domain(&mut rng_url, "com");
            let path = format!("{}x{i}", names::article_path(&mut rng_url));
            push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, format!("https://{d}{path}"), d.clone(), 0.2);
            push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, format!("https://{d}{path}/"), d, 0.2);
        }

        while urls.len() < n_urls {
            let domain: String = match domain_table.sample(&mut rng_url) {
                Some(d) => (*d).to_owned(),
                None => {
                    let tld = tld_table.sample(&mut rng_url);
                    names::other_domain(&mut rng_url, tld)
                }
            };
            let serial = urls.len();
            let (url, weight) = if domain == "youtube.com" {
                let id = names::youtube_id(&mut rng_url);
                // YouTube: median comment volume 1 (light weight).
                (format!("https://youtube.com/watch?v={id}"), 0.35)
            } else if domain == "youtu.be" {
                (format!("https://youtu.be/{}", names::youtube_id(&mut rng_url)), 0.35)
            } else if domain == "twitter.com" {
                (
                    format!(
                        "https://twitter.com/{}/status/{}",
                        names::username(&mut rng_url, serial as u64),
                        rng_url.gen_range(1_000_000_000u64..9_999_999_999u64)
                    ),
                    0.5,
                )
            } else {
                let scheme = if coin(&mut rng_url, 0.975) { "https" } else { "http" };
                let mut path = names::article_path(&mut rng_url);
                if coin(&mut rng_url, 0.15) {
                    path.push_str(&format!("?utm={}&ref=r{serial}", rng_url.gen_range(0..100)));
                }
                // News URLs: heavy-tailed comment volume.
                let w = power_law_int(&mut rng_url, 1.9, 1, 500) as f64;
                (format!("{scheme}://{domain}{path}"), w)
            };
            push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, url, domain, weight);
        }
        drop(seen_urls);

        // ---- 4. Comment slots -------------------------------------------------
        let mut slots: Vec<u32> = Vec::with_capacity(n_comments_total + 1024);
        for (g, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                slots.push(g as u32);
            }
        }
        let mut rng_c = StdRng::seed_from_u64(child_seed(cfg.seed, 7));
        for i in (1..slots.len()).rev() {
            slots.swap(i, rng_c.gen_range(0..=i));
        }

        // URL assignment: coverage first, fringe volumes, weighted rest
        // (see the materializing generator for the Table-2 rationale).
        let fringe_counts = [116usize, 95usize];
        assert!(
            slots.len() >= urls.len(),
            "scale too small: {} comment slots cannot cover {} URLs",
            slots.len(),
            urls.len()
        );
        let mut url_of_slot: Vec<u32> = Vec::with_capacity(slots.len());
        for u in 0..urls.len() {
            url_of_slot.push(u as u32);
        }
        let mut spare = slots.len() - urls.len();
        for (f, &n) in fringe_counts.iter().enumerate() {
            let take = n.saturating_sub(1).min(spare);
            spare -= take;
            for _ in 0..take {
                url_of_slot.push(f as u32);
            }
        }
        if url_of_slot.len() < slots.len() {
            let weight_table = Categorical::new(
                &urls
                    .iter()
                    .enumerate()
                    .map(|(i, u)| (i as u32, u.weight.max(0.001)))
                    .collect::<Vec<_>>(),
            );
            while url_of_slot.len() < slots.len() {
                url_of_slot.push(*weight_table.sample(&mut rng_c));
            }
        }
        url_of_slot.truncate(slots.len());
        for i in (1..url_of_slot.len()).rev() {
            url_of_slot.swap(i, rng_c.gen_range(0..=i));
        }

        // ---- 5. Plan comments --------------------------------------------------
        struct PendingComment {
            author_slot: u32,
            url_slot: u32,
            spec: CommentSpec,
            created: Timestamp,
            text_index: Option<u64>,
        }
        let mut pending: Vec<PendingComment> = Vec::with_capacity(slots.len());
        // Track per-URL severity for the vote model.
        let mut url_severity: Vec<(f64, u32)> = vec![(0.0, 0); urls.len()];

        for (i, (&g, &u)) in slots.iter().zip(url_of_slot.iter()).enumerate() {
            let user_idx = truth.active_indices[g as usize];
            let url = &urls[u as usize];
            let heat = truth.user_heat[g as usize];
            let lang = if url.domain == "deutschland.de" {
                Lang::De
            } else {
                match users[user_idx as usize].language.as_str() {
                    "de" => Lang::De,
                    "fr" => Lang::Fr,
                    "es" => Lang::Es,
                    "it" => Lang::It,
                    _ => Lang::En,
                }
            };
            let mut spec = sample_spec(&mut rng_c, Community::Dissenter, heat, lang);
            // Bias conditioning applies directly to the comment's targets
            // (Fig. 8 separability; see the materializing generator).
            spec.severe = (spec.severe * bias_severity_mult(url.bias)).min(0.98);
            spec.attack = (spec.attack * bias_attack_mult(url.bias)).min(0.98);
            let created = rng_c.gen_range(
                url.created.max(users[user_idx as usize].created_at).min(STUDY_END - 2)
                    ..STUDY_END,
            );
            url_severity[u as usize].0 += spec.severe;
            url_severity[u as usize].1 += 1;
            pending.push(PendingComment {
                author_slot: g,
                url_slot: u,
                spec,
                created,
                text_index: Some(i as u64),
            });
        }
        drop(slots);
        drop(url_of_slot);
        // The famous 90k-character comment: "ha" repeated, on a YouTube
        // URL. Appended after the tag-13 stream indices are fixed (it has
        // no stream text), before labeling ranks rejections.
        if let Some((yt_idx, _)) = urls.iter().enumerate().find(|(_, u)| u.youtube) {
            let reps = ((45_000.0 * scale) as usize).max(200);
            pending.push(PendingComment {
                author_slot: 0,
                url_slot: yt_idx as u32,
                spec: CommentSpec::benign(reps),
                created: STUDY_END - 86_400,
                text_index: None,
            });
        }

        // NSFW / offensive labeling: offensive = top-rejection comments;
        // NSFW = author-chosen, biased toward high rejection but noisier.
        let n_off = cfg.n(paper::OFFENSIVE_COMMENTS).min(pending.len() / 10);
        let n_nsfw = cfg.n(paper::NSFW_COMMENTS).min(pending.len() / 10);
        let mut by_reject: Vec<usize> = (0..pending.len()).collect();
        by_reject.sort_by(|&a, &b| {
            pending[b]
                .spec
                .reject
                .partial_cmp(&pending[a].spec.reject)
                .expect("finite rejects")
        });
        let mut offensive_flags = vec![false; pending.len()];
        for &i in by_reject.iter().take(n_off) {
            offensive_flags[i] = true;
        }
        let mut nsfw_flags = vec![false; pending.len()];
        let mut pool: Vec<usize> =
            by_reject[..(pending.len() / 5).max(n_nsfw.min(pending.len()))].to_vec();
        for i in (1..pool.len()).rev() {
            pool.swap(i, rng_c.gen_range(0..=i));
        }
        for &i in pool.iter().take(n_nsfw) {
            nsfw_flags[i] = true;
        }

        // ---- 6. URL records + comment plan (creation order) -------------------
        let out_urls: Vec<CommentUrl> = urls
            .iter()
            .map(|u| {
                let (title, description) = if u.youtube {
                    ("/watch".to_owned(), String::new())
                } else if u.domain == "twitter.com" {
                    (String::new(), String::new())
                } else {
                    (
                        format!("{} — article", u.domain),
                        "synthetic first paragraph of the underlying page".to_owned(),
                    )
                };
                CommentUrl {
                    id: u.id,
                    url: u.url.clone(),
                    title,
                    description,
                    created_at: u.created,
                    upvotes: 0,
                    downvotes: 0,
                }
            })
            .collect();

        // Sort by creation time so replies can reference earlier comments.
        let mut comment_gen = ObjectIdGen::new(EntityKind::Comment, child_seed(cfg.seed, 8));
        let mut order: Vec<usize> = (0..pending.len()).collect();
        order.sort_by_key(|&i| pending[i].created);
        let mut planned: Vec<PlannedComment> = Vec::with_capacity(pending.len());
        let mut last_comment_in_thread: std::collections::HashMap<u32, Vec<ObjectId>> =
            std::collections::HashMap::new();
        for &i in &order {
            let p = &pending[i];
            let id = comment_gen.next(p.created);
            let author_id = users[truth.active_indices[p.author_slot as usize] as usize]
                .author_id
                .expect("active users are Dissenter users");
            let thread = last_comment_in_thread.entry(p.url_slot).or_default();
            let parent = if !thread.is_empty() && coin(&mut rng_c, 0.35) {
                Some(thread[rng_c.gen_range(0..thread.len())])
            } else {
                None
            };
            planned.push(PlannedComment {
                id,
                url_id: urls[p.url_slot as usize].id,
                author_id,
                parent,
                created: p.created,
                nsfw: nsfw_flags[i],
                offensive: offensive_flags[i],
                spec: p.spec,
                text_index: p.text_index,
            });
            thread.push(id);
            if thread.len() > 64 {
                thread.remove(0); // bound reply-candidate memory per thread
            }
        }
        drop(pending);
        drop(last_comment_in_thread);

        // ---- 7. Votes (Fig. 5) --------------------------------------------------
        let mut rng_v = StdRng::seed_from_u64(child_seed(cfg.seed, 9));
        let mut votes: Vec<(ObjectId, Vote, u32)> = Vec::new();
        for (u, rec) in urls.iter().enumerate() {
            let (sev_sum, n) = url_severity[u];
            let mean_sev = if n > 0 { sev_sum / n as f64 } else { 0.0 };
            let s_norm = (mean_sev / 0.6).min(1.0);
            // Voting probability and magnitude both shrink with toxicity.
            if !coin(&mut rng_v, 0.32 * (1.0 - 0.75 * s_norm)) {
                continue;
            }
            let mut magnitude = geometric(&mut rng_v, (0.40 + 0.45 * s_norm).min(0.95), 40);
            // A thin tail of heavily-voted URLs keeps 99% (not 100%) of
            // net scores inside (−10, 10), as the paper reports.
            if coin(&mut rng_v, 0.012 * (1.0 - s_norm)) {
                magnitude = magnitude.saturating_mul(8 + geometric(&mut rng_v, 0.2, 40));
            }
            let negative = coin(&mut rng_v, 0.33 + 0.30 * s_norm);
            votes.push((
                rec.id,
                if negative { Vote::Down } else { Vote::Up },
                magnitude as u32,
            ));
            // Light cross-voting so up/down both appear on some URLs.
            if coin(&mut rng_v, 0.2) {
                let other = geometric(&mut rng_v, 0.8, 5);
                votes.push((
                    rec.id,
                    if negative { Vote::Up } else { Vote::Down },
                    other as u32,
                ));
            }
        }

        // ---- 8. YouTube -----------------------------------------------------------
        let mut rng_y = StdRng::seed_from_u64(child_seed(cfg.seed, 10));
        let owner_pool: Vec<String> = (0..200).map(|i| format!("Channel{}", i)).collect();
        let mut youtube: Vec<(String, YtContent)> = Vec::new();
        for rec in urls.iter().filter(|u| u.youtube) {
            let kind_roll: f64 = rng_y.gen();
            let kind = if kind_roll < 125.0 / 128.0 {
                YtKind::Video
            } else if kind_roll < 127.0 / 128.0 {
                YtKind::Channel
            } else {
                YtKind::User
            };
            let state = if kind == YtKind::Video && coin(&mut rng_y, 16.0 / 125.0) {
                let r: f64 = rng_y.gen();
                let reason = if r < 3.0 / 16.0 {
                    YtUnavailableReason::Private
                } else if r < 6.0 / 16.0 {
                    YtUnavailableReason::AccountTerminated
                } else if r < 6.4 / 16.0 {
                    YtUnavailableReason::HateSpeechPolicy
                } else {
                    YtUnavailableReason::Generic
                };
                YtState::Unavailable(reason)
            } else {
                let owner = {
                    let r: f64 = rng_y.gen();
                    if r < 0.024 {
                        "Fox News".to_owned()
                    } else if r < 0.030 {
                        "CNN".to_owned()
                    } else {
                        owner_pool[rng_y.gen_range(0..owner_pool.len())].clone()
                    }
                };
                YtState::Active {
                    title: format!("Synthetic video about {}", names::article_path(&mut rng_y)),
                    owner,
                    comments_disabled: coin(&mut rng_y, 0.104),
                }
            };
            youtube.push((rec.url.clone(), YtContent { kind, state }));
        }
        drop(urls);
        drop(url_severity);

        // ---- 9. Reddit mirror (Fig. 6, Table 3) -----------------------------------
        let mut rng_r = StdRng::seed_from_u64(child_seed(cfg.seed, 11));
        let active_set: std::collections::HashSet<u32> =
            truth.active_indices.iter().copied().collect();
        let mut reddit_accounts: Vec<(String, u64)> = Vec::new();
        let mut reddit_pending: Vec<(String, CommentSpec)> = Vec::new();
        for &idx in &truth.dissenter_indices {
            if !coin(&mut rng_r, paper::REDDIT_MATCH_FRACTION) {
                continue;
            }
            let username = users[idx as usize].username.clone();
            let is_active_dissenter = active_set.contains(&idx);
            // Fig. 6 calibration: ~36% Dissenter-only / ~20% Reddit-only
            // among users active on ≥1 platform (see the materializing
            // generator).
            let reddit_count: u64 = if is_active_dissenter {
                if coin(&mut rng_r, 0.45) {
                    0 // Dissenter-only
                } else {
                    power_law_int(&mut rng_r, 1.7, 1, 20_000)
                }
            } else if coin(&mut rng_r, 0.22) {
                power_law_int(&mut rng_r, 1.7, 1, 20_000) // Reddit-only
            } else {
                0
            };
            let materialize = (reddit_count as usize).min(cfg.reddit_texts_per_user_cap);
            for _ in 0..materialize {
                let heat = beta(&mut rng_r, 1.5, 7.0);
                let spec = sample_spec(&mut rng_r, Community::Reddit, heat, Lang::En);
                reddit_pending.push((username.clone(), spec));
            }
            reddit_accounts.push((username, reddit_count));
        }

        // ---- 10. Baseline corpora ---------------------------------------------------
        let mut rng_b = StdRng::seed_from_u64(child_seed(cfg.seed, 12));
        let mut make_specs = |community: Community, n: usize| -> Vec<CommentSpec> {
            (0..n)
                .map(|_| {
                    let heat = beta(&mut rng_b, 1.5, 7.0);
                    sample_spec(&mut rng_b, community, heat, Lang::En)
                })
                .collect()
        };
        let baselines = vec![
            (
                "NY Times".to_owned(),
                make_specs(Community::NyTimes, cfg.n_baseline(paper::NYT_COMMENTS)),
                child_seed(cfg.seed, 15),
            ),
            (
                "Daily Mail".to_owned(),
                make_specs(Community::DailyMail, cfg.n_baseline(paper::DAILYMAIL_COMMENTS)),
                child_seed(cfg.seed, 16),
            ),
        ];

        Self {
            workers: workers.max(1),
            batch_size: DEFAULT_BATCH_SIZE,
            text_seed: child_seed(cfg.seed, 13),
            reddit_seed: child_seed(cfg.seed, 14),
            gen,
            truth,
            users: users.into_iter(),
            follows: follows.into_iter(),
            urls: out_urls.into_iter(),
            comments: planned.into_iter(),
            votes: votes.into_iter(),
            youtube: youtube.into_iter(),
            reddit_accounts: reddit_accounts.into_iter(),
            reddit_comments: reddit_pending.into_iter(),
            reddit_cursor: 0,
            baselines: baselines.into_iter(),
        }
    }

    /// Override the number of items per yielded batch (default
    /// [`DEFAULT_BATCH_SIZE`]); output bytes are invariant to it.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Generation-time ground truth (fully determined at construction).
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Remaining comments to be yielded (full count before iteration).
    pub fn comments_remaining(&self) -> usize {
        self.comments.len()
    }

    /// Drain every batch into a fresh [`World`] — the materializing path.
    pub fn collect_world(mut self) -> (World, GroundTruth) {
        let truth = std::mem::take(&mut self.truth);
        let mut world = World::new();
        for batch in &mut self {
            batch.apply(&mut world);
        }
        (world, truth)
    }

    fn comment_batch(&mut self) -> Vec<Comment> {
        let chunk: Vec<PlannedComment> =
            self.comments.by_ref().take(self.batch_size).collect();
        let items: Vec<(u64, CommentSpec)> =
            chunk.iter().filter_map(|c| c.text_index.map(|i| (i, c.spec))).collect();
        let texts = self.gen.generate_batch_indexed(&items, self.text_seed, self.workers);
        let mut texts = texts.into_iter();
        chunk
            .into_iter()
            .map(|c| Comment {
                id: c.id,
                url_id: c.url_id,
                author_id: c.author_id,
                parent: c.parent,
                text: match c.text_index {
                    Some(_) => texts.next().expect("one text per streamed comment"),
                    None => "ha ".repeat(c.spec.tokens).trim_end().to_owned(),
                },
                created_at: c.created,
                nsfw: c.nsfw,
                offensive: c.offensive,
            })
            .collect()
    }

    fn reddit_batch(&mut self) -> Vec<(String, String)> {
        let chunk: Vec<(String, CommentSpec)> =
            self.reddit_comments.by_ref().take(self.batch_size).collect();
        let items: Vec<(u64, CommentSpec)> = chunk
            .iter()
            .enumerate()
            .map(|(j, (_, spec))| (self.reddit_cursor + j as u64, *spec))
            .collect();
        self.reddit_cursor += chunk.len() as u64;
        let texts = self.gen.generate_batch_indexed(&items, self.reddit_seed, self.workers);
        chunk.into_iter().zip(texts).map(|((name, _), text)| (name, text)).collect()
    }
}

impl Iterator for WorldSource {
    type Item = WorldBatch;

    fn next(&mut self) -> Option<WorldBatch> {
        let users: Vec<User> = self.users.by_ref().take(self.batch_size).collect();
        if !users.is_empty() {
            return Some(WorldBatch::Users(users));
        }
        let follows: Vec<(u32, u32)> = self.follows.by_ref().take(self.batch_size).collect();
        if !follows.is_empty() {
            return Some(WorldBatch::Follows(follows));
        }
        let urls: Vec<CommentUrl> = self.urls.by_ref().take(self.batch_size).collect();
        if !urls.is_empty() {
            return Some(WorldBatch::Urls(urls));
        }
        if self.comments.len() > 0 {
            return Some(WorldBatch::Comments(self.comment_batch()));
        }
        let votes: Vec<(ObjectId, Vote, u32)> =
            self.votes.by_ref().take(self.batch_size).collect();
        if !votes.is_empty() {
            return Some(WorldBatch::Votes(votes));
        }
        let youtube: Vec<(String, YtContent)> =
            self.youtube.by_ref().take(self.batch_size).collect();
        if !youtube.is_empty() {
            return Some(WorldBatch::Youtube(youtube));
        }
        let accounts: Vec<(String, u64)> =
            self.reddit_accounts.by_ref().take(self.batch_size).collect();
        if !accounts.is_empty() {
            return Some(WorldBatch::RedditAccounts(accounts));
        }
        if self.reddit_comments.len() > 0 {
            return Some(WorldBatch::RedditComments(self.reddit_batch()));
        }
        if let Some((name, specs, seed)) = self.baselines.next() {
            // Baseline corpora are small (capped by the config) and each
            // draws from its own pre-derived tagged stream — generated
            // whole, exactly as the materializing path does.
            let comments = self.gen.generate_batch(&specs, seed, self.workers);
            return Some(WorldBatch::Baseline(BaselineCorpus { name, comments }));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    fn tiny_cfg() -> WorldConfig {
        WorldConfig { scale: Scale::Custom(0.003), ..WorldConfig::small() }
    }

    fn assert_worlds_identical(a: &World, b: &World, tag: &str) {
        assert_eq!(a.users.len(), b.users.len(), "{tag}: user count");
        assert!(
            a.users.iter().zip(&b.users).all(|(x, y)| x.username == y.username
                && x.gab_id == y.gab_id
                && x.author_id == y.author_id
                && x.created_at == y.created_at),
            "{tag}: user stream diverged"
        );
        assert_eq!(a.dissenter.url_count(), b.dissenter.url_count(), "{tag}: url count");
        assert!(
            a.dissenter
                .urls()
                .iter()
                .zip(b.dissenter.urls())
                .all(|(x, y)| x.url == y.url
                    && x.id == y.id
                    && x.upvotes == y.upvotes
                    && x.downvotes == y.downvotes),
            "{tag}: url stream diverged"
        );
        assert_eq!(
            a.dissenter.total_comments(),
            b.dissenter.total_comments(),
            "{tag}: comment count"
        );
        assert!(
            a.dissenter
                .comments()
                .iter()
                .zip(b.dissenter.comments())
                .all(|(x, y)| x.id == y.id
                    && x.text == y.text
                    && x.parent == y.parent
                    && x.nsfw == y.nsfw
                    && x.offensive == y.offensive),
            "{tag}: comment stream diverged"
        );
        assert_eq!(a.reddit.account_count(), b.reddit.account_count(), "{tag}: reddit");
        assert_eq!(a.baselines.len(), b.baselines.len(), "{tag}: baselines");
        for (x, y) in a.baselines.iter().zip(&b.baselines) {
            assert_eq!(x.name, y.name, "{tag}");
            assert_eq!(x.comments, y.comments, "{tag}: baseline {}", x.name);
        }
    }

    #[test]
    fn streamed_batches_rebuild_the_materialized_world() {
        let cfg = tiny_cfg();
        let (reference, ref_truth) = crate::world::generate_sharded(&cfg, 1);
        let source = WorldSource::new(&cfg, 1);
        assert_eq!(source.truth().active_indices, ref_truth.active_indices);
        assert_eq!(source.truth().core_author_ids, ref_truth.core_author_ids);
        let mut world = World::new();
        let mut batches = 0usize;
        for batch in source {
            assert!(!batch.is_empty(), "yielded batches are non-empty");
            batch.apply(&mut world);
            batches += 1;
        }
        assert!(batches > 1, "expected multiple batches, got {batches}");
        assert_worlds_identical(&world, &reference, "streamed");
    }

    #[test]
    fn batch_size_does_not_change_the_world() {
        let cfg = tiny_cfg();
        let (reference, _) = WorldSource::new(&cfg, 1).collect_world();
        for batch_size in [64usize, 1_000_000] {
            let (w, _) =
                WorldSource::new(&cfg, 1).with_batch_size(batch_size).collect_world();
            assert_worlds_identical(&w, &reference, &format!("batch_size={batch_size}"));
        }
    }

    #[test]
    fn workers_do_not_change_streamed_batches() {
        let cfg = tiny_cfg();
        let (reference, _) = WorldSource::new(&cfg, 1).with_batch_size(128).collect_world();
        let (par, _) = WorldSource::new(&cfg, 4).with_batch_size(128).collect_world();
        assert_worlds_identical(&par, &reference, "workers=4");
    }

    #[test]
    fn comments_remaining_reports_plan_size() {
        let cfg = tiny_cfg();
        let source = WorldSource::new(&cfg, 1);
        let planned = source.comments_remaining();
        let (w, _) = source.collect_world();
        assert_eq!(planned, w.dissenter.total_comments());
    }
}
