#!/usr/bin/env bash
# Durable-crawl recovery bench: crawl the simulated services plain
# (+ one final persist::save) and journaled through the segmented WAL,
# then kill the journaled crawl two WAL ops short of completion and
# resume it. Emits the comparison as BENCH_PR6.json in the repo root.
# The recovery binary self-validates — it exits nonzero unless
# journaling stays within 25% of the plain wall-clock, the journaled
# and resumed stores are byte-identical to the plain run's, resume
# re-fetched nothing from completed phases, and the interrupted phase's
# partial progress was answered with 304s.
#
# Usage: scripts/bench_pr6.sh [extra recovery args, e.g. --scale 0.002]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p bench --bin recovery -- --out BENCH_PR6.json "$@"

# The artifact must parse and carry the headline sections.
python3 - <<'EOF'
import json
with open("BENCH_PR6.json") as f:
    report = json.load(f)
for key in ("scale", "seed", "wal_off", "wal_on", "overhead_ratio",
            "journal_invisible", "recovery"):
    assert key in report, f"BENCH_PR6.json missing {key!r}"
assert "wall_ms" in report["wal_off"], "BENCH_PR6.json missing wal_off.wall_ms"
for key in ("wall_ms", "appends", "fsyncs", "rotations",
            "snapshots_written", "snapshot_bytes"):
    assert key in report["wal_on"], f"BENCH_PR6.json missing wal_on.{key}"
rec = report["recovery"]
for key in ("kill_at_op", "total_ops", "completed_phases",
            "uncheckpointed_reval", "torn_tail_recovered", "resume_ms",
            "replayed_records", "not_modified",
            "refetched_completed_phase_pages", "store_identical"):
    assert key in rec, f"BENCH_PR6.json missing recovery.{key}"
assert report["overhead_ratio"] <= 1.25, \
    f"journaling overhead {report['overhead_ratio']:.3f}x exceeds 1.25x"
assert report["journal_invisible"] is True, "journaled store diverged"
assert rec["store_identical"] is True, "resumed store diverged"
assert rec["refetched_completed_phase_pages"] == 0, \
    "resume re-fetched completed-phase pages"
assert rec["not_modified"] > 0, "resume never revalidated via 304"
assert rec["replayed_records"] > 0, "resume replayed nothing"
print("BENCH_PR6.json OK:",
      f"{report['overhead_ratio']:.3f}x journaling overhead,",
      f"killed at op {rec['kill_at_op']}/{rec['total_ops']},",
      f"resumed in {rec['resume_ms']} ms",
      f"({rec['replayed_records']} records replayed,",
      f"{rec['not_modified']} revalidations)")
EOF
