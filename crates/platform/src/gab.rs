//! The Gab side of the world: numeric account IDs, the follower graph, and
//! the paginated relationship API the paper crawls (§3.1, §3.4).
//!
//! `GabDb` stores the ID space and the social graph over *user indexes*
//! (positions in the `World`'s user table); the HTTP layer joins against
//! user records when rendering API responses.

use ids::GabId;
use std::collections::HashMap;

/// Gab-side state: ID mapping plus the directed follower graph.
#[derive(Debug, Default, Clone)]
pub struct GabDb {
    id_to_user: HashMap<GabId, u32>,
    max_id: GabId,
    /// following[u] = users u follows (by user index), sorted.
    following: Vec<Vec<u32>>,
    /// followers[u] = users following u, sorted.
    followers: Vec<Vec<u32>>,
}

impl GabDb {
    /// An empty Gab database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a user (by world index) under a Gab ID. Panics on ID
    /// collision — the allocator must prevent those.
    pub fn register(&mut self, gab_id: GabId, user_idx: u32) {
        assert!(
            self.id_to_user.insert(gab_id, user_idx).is_none(),
            "gab id {gab_id} registered twice"
        );
        self.max_id = self.max_id.max(gab_id);
        let need = user_idx as usize + 1;
        if self.following.len() < need {
            self.following.resize(need, Vec::new());
            self.followers.resize(need, Vec::new());
        }
    }

    /// Remove a Gab ID from the API's view mid-study (account deletion,
    /// §4.1.1). The ID stays burned — `max_id` is unchanged, so the
    /// enumeration bound survives — and the social-graph rows are kept:
    /// the fronts filter deleted accounts at render time, mirroring how
    /// the live API answered for the ~1,300 ghost users whose Dissenter
    /// comments outlived their Gab accounts.
    pub fn unregister(&mut self, gab_id: GabId) -> Option<u32> {
        self.id_to_user.remove(&gab_id)
    }

    /// Resolve a Gab ID to its user index. `None` mirrors the API's
    /// error response for unallocated IDs — the signal that lets the
    /// paper's enumeration terminate.
    pub fn user_by_gab_id(&self, gab_id: GabId) -> Option<u32> {
        self.id_to_user.get(&gab_id).copied()
    }

    /// Highest allocated ID (the enumeration's upper bound).
    pub fn max_id(&self) -> GabId {
        self.max_id
    }

    /// Number of registered accounts.
    pub fn account_count(&self) -> usize {
        self.id_to_user.len()
    }

    /// Add follow edge `a → b` (a follows b). Self-follows and duplicates
    /// are ignored.
    pub fn follow(&mut self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        let need = (a.max(b)) as usize + 1;
        if self.following.len() < need {
            self.following.resize(need, Vec::new());
            self.followers.resize(need, Vec::new());
        }
        match self.following[a as usize].binary_search(&b) {
            Ok(_) => false,
            Err(pos) => {
                self.following[a as usize].insert(pos, b);
                let fpos = self.followers[b as usize].binary_search(&a).unwrap_err();
                self.followers[b as usize].insert(fpos, a);
                true
            }
        }
    }

    /// Users `u` follows.
    pub fn following(&self, u: u32) -> &[u32] {
        self.following.get(u as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Users following `u`.
    pub fn followers(&self, u: u32) -> &[u32] {
        self.followers.get(u as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// One page of `u`'s followers — the API paginates, and "we can ensure
    /// that we gather the complete network graph" by walking pages until a
    /// short one (§3.4). Pages are 0-indexed.
    pub fn followers_page(&self, u: u32, page: usize, page_size: usize) -> &[u32] {
        paginate(self.followers(u), page, page_size)
    }

    /// One page of the users `u` follows.
    pub fn following_page(&self, u: u32, page: usize, page_size: usize) -> &[u32] {
        paginate(self.following(u), page, page_size)
    }

    /// Total follow edges.
    pub fn edge_count(&self) -> usize {
        self.following.iter().map(Vec::len).sum()
    }
}

fn paginate(items: &[u32], page: usize, page_size: usize) -> &[u32] {
    assert!(page_size > 0, "page size must be positive");
    let start = page.saturating_mul(page_size).min(items.len());
    let end = (start + page_size).min(items.len());
    &items[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut g = GabDb::new();
        g.register(1, 0);
        g.register(5, 1);
        assert_eq!(g.user_by_gab_id(1), Some(0));
        assert_eq!(g.user_by_gab_id(2), None, "gap IDs answer like the real API");
        assert_eq!(g.max_id(), 5);
        assert_eq!(g.account_count(), 2);
    }

    #[test]
    fn unregister_hides_id_but_keeps_bound() {
        let mut g = GabDb::new();
        g.register(1, 0);
        g.register(5, 1);
        assert_eq!(g.unregister(5), Some(1));
        assert_eq!(g.user_by_gab_id(5), None, "deleted account answers like a gap");
        assert_eq!(g.unregister(5), None, "second delete is a no-op");
        assert_eq!(g.max_id(), 5, "the ID stays burned");
        assert_eq!(g.account_count(), 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_panics() {
        let mut g = GabDb::new();
        g.register(1, 0);
        g.register(1, 1);
    }

    #[test]
    fn follow_graph_bidirectional_indexes() {
        let mut g = GabDb::new();
        assert!(g.follow(0, 1));
        assert!(!g.follow(0, 1), "duplicate ignored");
        assert!(!g.follow(2, 2), "self-follow ignored");
        assert_eq!(g.following(0), &[1]);
        assert_eq!(g.followers(1), &[0]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn pagination_walks_complete_list() {
        let mut g = GabDb::new();
        for f in 1..=10u32 {
            g.follow(f, 0);
        }
        let mut collected = Vec::new();
        let mut page = 0;
        loop {
            let p = g.followers_page(0, page, 3);
            collected.extend_from_slice(p);
            if p.len() < 3 {
                break;
            }
            page += 1;
        }
        assert_eq!(collected, (1..=10u32).collect::<Vec<_>>());
    }

    #[test]
    fn pagination_past_end_is_empty() {
        let mut g = GabDb::new();
        g.follow(1, 0);
        assert!(g.followers_page(0, 5, 10).is_empty());
    }

    #[test]
    fn out_of_range_queries_empty() {
        let g = GabDb::new();
        assert!(g.following(99).is_empty());
        assert!(g.followers(99).is_empty());
    }
}
