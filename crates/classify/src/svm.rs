//! The §3.5.3 NLP classifier: a linear SVM over hashed 1–2-gram features.
//!
//! The paper trains a three-class (hate / offensive / neither) classifier
//! on the Davidson et al. labeled corpus using "1 and 2-grams of cleaned
//! and stemmed word tokens", oversamples with ADASYN, tunes
//! hyperparameters by grid search, and reports F1 = 0.87 under 5-fold
//! cross-validation, then applies the model to every Dissenter comment.
//!
//! This module implements the model from scratch: feature hashing for the
//! n-grams, one-vs-rest linear SVMs trained with the Pegasos stochastic
//! sub-gradient algorithm (Shalev-Shwartz et al. 2011), and softmax-over-
//! margins class probabilities (the paper "compute\[s\] the probability of
//! each of the three possible classes for all Dissenter comments").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use textkit::{clean_text, porter_stem, word_ngrams_up_to};

/// A sparse feature vector: `(index, value)` pairs sorted by index.
pub type SparseVec = Vec<(u32, f32)>;

/// The three comment classes of the Davidson et al. labeling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommentClass {
    /// Hate speech.
    Hate,
    /// Offensive but not hate.
    Offensive,
    /// Neither.
    Neither,
}

impl CommentClass {
    /// All classes in index order.
    pub const ALL: [CommentClass; 3] = [CommentClass::Hate, CommentClass::Offensive, CommentClass::Neither];

    /// Dense index (0, 1, 2).
    pub fn index(self) -> usize {
        match self {
            CommentClass::Hate => 0,
            CommentClass::Offensive => 1,
            CommentClass::Neither => 2,
        }
    }

    /// From dense index.
    pub fn from_index(i: usize) -> CommentClass {
        Self::ALL[i]
    }
}

/// Dot product of a sparse vector with a dense weight slice.
pub fn dot(x: &SparseVec, w: &[f32]) -> f64 {
    x.iter().map(|&(i, v)| v as f64 * w[i as usize] as f64).sum()
}

/// L2 norm of a sparse vector.
pub fn norm(x: &SparseVec) -> f64 {
    x.iter().map(|&(_, v)| (v as f64) * (v as f64)).sum::<f64>().sqrt()
}

/// Squared Euclidean distance between two sorted sparse vectors.
pub fn sq_dist(a: &SparseVec, b: &SparseVec) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0f64;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                d += (a[i].1 as f64).powi(2);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                d += (b[j].1 as f64).powi(2);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                d += ((a[i].1 - b[j].1) as f64).powi(2);
                i += 1;
                j += 1;
            }
        }
    }
    d += a[i..].iter().map(|&(_, v)| (v as f64).powi(2)).sum::<f64>();
    d += b[j..].iter().map(|&(_, v)| (v as f64).powi(2)).sum::<f64>();
    d
}

/// Linear interpolation `a + gap (b − a)` of sorted sparse vectors
/// (ADASYN's synthetic-sample constructor).
pub fn lerp(a: &SparseVec, b: &SparseVec, gap: f32) -> SparseVec {
    let (mut i, mut j) = (0usize, 0usize);
    let mut out = SparseVec::with_capacity(a.len() + b.len());
    while i < a.len() || j < b.len() {
        let (idx, va, vb) = if j >= b.len() || (i < a.len() && a[i].0 < b[j].0) {
            let r = (a[i].0, a[i].1, 0.0);
            i += 1;
            r
        } else if i >= a.len() || b[j].0 < a[i].0 {
            let r = (b[j].0, 0.0, b[j].1);
            j += 1;
            r
        } else {
            let r = (a[i].0, a[i].1, b[j].1);
            i += 1;
            j += 1;
            r
        };
        let v = va + gap * (vb - va);
        if v != 0.0 {
            out.push((idx, v));
        }
    }
    out
}

/// Hashing featurizer over cleaned, stemmed 1–2-grams.
#[derive(Debug, Clone, Copy)]
pub struct Featurizer {
    /// Feature space size (power of two).
    pub dim: u32,
}

impl Featurizer {
    /// Default 2^16-dimensional featurizer.
    pub fn standard() -> Self {
        Self { dim: 1 << 16 }
    }

    /// Map a comment to a normalized sparse vector.
    pub fn featurize(&self, text: &str) -> SparseVec {
        let tokens: Vec<String> = clean_text(text).iter().map(|t| porter_stem(t)).collect();
        let grams = word_ngrams_up_to(&tokens, 2);
        let mut idx: Vec<u32> = grams.iter().map(|g| fnv1a(g) % self.dim).collect();
        idx.sort_unstable();
        let mut vec = SparseVec::new();
        for i in idx {
            match vec.last_mut() {
                Some(last) if last.0 == i => last.1 += 1.0,
                _ => vec.push((i, 1.0)),
            }
        }
        // L2-normalize so comment length does not dominate.
        let n = norm(&vec);
        if n > 0.0 {
            for (_, v) in &mut vec {
                *v /= n as f32;
            }
        }
        vec
    }
}

fn fnv1a(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in s.as_bytes() {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// SVM training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Feature space dimension.
    pub dim: u32,
    /// Pegasos regularization λ.
    pub lambda: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { dim: 1 << 16, lambda: 1e-4, epochs: 12, seed: 7 }
    }
}

/// A trained one-vs-rest linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<Vec<f32>>, // one dense weight vector per class
    classes: usize,
}

impl LinearSvm {
    /// Train with Pegasos. `samples` are `(features, class_index)` pairs.
    pub fn train(samples: &[(SparseVec, usize)], classes: usize, cfg: SvmConfig) -> Self {
        assert!(classes >= 2, "need at least two classes");
        assert!(!samples.is_empty(), "empty training set");
        assert!(samples.iter().all(|(_, y)| *y < classes), "label out of range");
        let mut weights = Vec::with_capacity(classes);
        for class in 0..classes {
            weights.push(train_binary(samples, class, cfg));
        }
        Self { weights, classes }
    }

    /// Per-class margins `w_c · x`.
    pub fn margins(&self, x: &SparseVec) -> Vec<f64> {
        self.weights.iter().map(|w| dot(x, w)).collect()
    }

    /// Hard prediction: argmax margin.
    pub fn predict(&self, x: &SparseVec) -> usize {
        let m = self.margins(x);
        m.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite margins"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Softmax over margins — the per-class probabilities the paper
    /// computes for every comment.
    pub fn probabilities(&self, x: &SparseVec) -> Vec<f64> {
        let m = self.margins(x);
        let mx = m.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = m.iter().map(|v| (v - mx).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }
}

/// Pegasos for one binary (class vs rest) problem, with the scale-factor
/// trick so regularization shrinkage is O(1) per step.
fn train_binary(samples: &[(SparseVec, usize)], positive: usize, cfg: SvmConfig) -> Vec<f32> {
    let mut w = vec![0f32; cfg.dim as usize];
    let mut scale = 1f64;
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (positive as u64).wrapping_mul(0x9e37_79b9));
    let mut t = 0u64;
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for &i in &order {
            t += 1;
            let eta = 1.0 / (cfg.lambda * t as f64);
            let (x, label) = &samples[i];
            let y = if *label == positive { 1.0 } else { -1.0 };
            let margin = scale * dot(x, &w) * y;
            // Shrink (regularization) via the scale factor.
            scale *= 1.0 - eta * cfg.lambda;
            if scale < 1e-9 {
                for v in &mut w {
                    *v *= scale as f32;
                }
                scale = 1.0;
            }
            if margin < 1.0 {
                let step = (eta * y / scale) as f32;
                for &(idx, v) in x {
                    w[idx as usize] += step * v;
                }
            }
        }
    }
    for v in &mut w {
        *v *= scale as f32;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(pairs: &[(u32, f32)]) -> SparseVec {
        pairs.to_vec()
    }

    #[test]
    fn sparse_ops() {
        let a = fv(&[(0, 1.0), (2, 2.0)]);
        let b = fv(&[(1, 3.0), (2, 2.0)]);
        assert_eq!(sq_dist(&a, &b), 1.0 + 9.0);
        assert_eq!(sq_dist(&a, &a), 0.0);
        let mid = lerp(&a, &b, 0.5);
        assert_eq!(mid, fv(&[(0, 0.5), (1, 1.5), (2, 2.0)]));
        let w = vec![1.0f32, 0.0, 2.0];
        assert_eq!(dot(&a, &w), 5.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = fv(&[(0, 1.0)]);
        let b = fv(&[(1, 2.0)]);
        assert_eq!(lerp(&a, &b, 0.0), a);
        assert_eq!(lerp(&a, &b, 1.0), b);
    }

    #[test]
    fn featurizer_is_normalized_and_deterministic() {
        let f = Featurizer::standard();
        let a = f.featurize("free speech browser for free speech");
        let b = f.featurize("free speech browser for free speech");
        assert_eq!(a, b);
        assert!((norm(&a) - 1.0).abs() < 1e-5);
        assert!(f.featurize("").is_empty());
    }

    #[test]
    fn featurizer_counts_repeats() {
        let f = Featurizer { dim: 1 << 12 };
        let v = f.featurize("spam spam spam");
        // One unigram repeated + bigrams; unigram weight must dominate.
        let max = v.iter().map(|&(_, x)| x).fold(0f32, f32::max);
        assert!(max > 0.7, "{v:?}");
    }

    /// Two-cluster toy problem: class 0 uses features {0,1}, class 1 uses
    /// {10,11}. Pegasos must separate them perfectly.
    #[test]
    fn learns_separable_problem() {
        let mut samples = Vec::new();
        for i in 0..50 {
            let jitter = (i % 5) as f32 * 0.01;
            samples.push((fv(&[(0, 1.0 + jitter), (1, 0.5)]), 0usize));
            samples.push((fv(&[(10, 1.0 + jitter), (11, 0.5)]), 1usize));
        }
        let cfg = SvmConfig { dim: 16, lambda: 1e-3, epochs: 20, seed: 1 };
        let svm = LinearSvm::train(&samples, 2, cfg);
        for (x, y) in &samples {
            assert_eq!(svm.predict(x), *y);
        }
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut samples = Vec::new();
        for _ in 0..30 {
            samples.push((fv(&[(0, 1.0)]), 0usize));
            samples.push((fv(&[(1, 1.0)]), 1usize));
            samples.push((fv(&[(2, 1.0)]), 2usize));
        }
        let cfg = SvmConfig { dim: 8, lambda: 1e-3, epochs: 30, seed: 3 };
        let svm = LinearSvm::train(&samples, 3, cfg);
        assert_eq!(svm.predict(&fv(&[(0, 1.0)])), 0);
        assert_eq!(svm.predict(&fv(&[(1, 1.0)])), 1);
        assert_eq!(svm.predict(&fv(&[(2, 1.0)])), 2);
    }

    #[test]
    fn probabilities_sum_to_one_and_rank_correctly() {
        let mut samples = Vec::new();
        for _ in 0..30 {
            samples.push((fv(&[(0, 1.0)]), 0usize));
            samples.push((fv(&[(1, 1.0)]), 1usize));
        }
        let cfg = SvmConfig { dim: 4, lambda: 1e-3, epochs: 20, seed: 5 };
        let svm = LinearSvm::train(&samples, 2, cfg);
        let p = svm.probabilities(&fv(&[(0, 1.0)]));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > p[1]);
    }

    #[test]
    fn text_level_classification() {
        // Real pipeline: featurize text, train, predict held-out text.
        let f = Featurizer::standard();
        let angry = ["you are a stupid idiot fool", "what a pathetic dumb loser", "stupid stupid liar"];
        let calm = ["what a lovely sunny day", "i enjoyed the article very much", "great video thanks"];
        let mut samples = Vec::new();
        for t in &angry {
            samples.push((f.featurize(t), 0usize));
        }
        for t in &calm {
            samples.push((f.featurize(t), 1usize));
        }
        let svm = LinearSvm::train(&samples, 2, SvmConfig { epochs: 40, ..Default::default() });
        assert_eq!(svm.predict(&f.featurize("you stupid fool")), 0);
        assert_eq!(svm.predict(&f.featurize("lovely sunny article")), 1);
    }

    #[test]
    fn class_indices_round_trip() {
        for c in CommentClass::ALL {
            assert_eq!(CommentClass::from_index(c.index()), c);
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        LinearSvm::train(&[(fv(&[(0, 1.0)]), 5usize)], 2, SvmConfig::default());
    }
}
