#![warn(missing_docs)]
//! HTTP front-ends for the simulated services.
//!
//! Four independent servers (mirroring the four hosts the paper talks to):
//!
//! * [`dissenter`] — `dissenter.com`: user home pages (≥10 kB for real
//!   accounts vs ~150 B misses — the §3.1 probe signal), per-URL comment
//!   pages with vote counts and the per-URL 10-req/min rate-limit
//!   headers, per-comment pages embedding the commented-out
//!   `commentAuthor` JavaScript with hidden user metadata (§3.2), and the
//!   Gab-Trends-style `/discussion/begin?url=…` lookup;
//! * [`gab`] — `gab.com`: the JSON accounts API keyed by sequential ID
//!   (with 404s for unallocated IDs), paginated follower/following
//!   endpoints, and `X-RateLimit-Remaining` / `X-RateLimit-Reset`
//!   headers (§3.4);
//! * [`reddit`] — `reddit.com` + Pushshift: account existence and full
//!   comment-history queries (§4.4.1);
//! * [`youtube`] — the Selenium-rendered view of YouTube pages the paper
//!   scraped (§3.3), exposed as a `render?url=…` endpoint returning the
//!   video/channel/user state as JSON.
//!
//! Authentication is a `session` cookie of the form `u:<username>`; the
//! comment-visibility rules then apply that user's stored view filters —
//! NSFW / "offensive" shadow content appears only for opted-in sessions.

pub mod dissenter;
pub mod gab;
pub mod reddit;
pub mod youtube;

use httpnet::{Handler, Server, ServerConfig};
use platform::World;
use std::sync::Arc;

/// All four servers bound to ephemeral loopback ports.
#[derive(Debug)]
pub struct SimServices {
    /// dissenter.com stand-in.
    pub dissenter: Server,
    /// gab.com stand-in.
    pub gab: Server,
    /// reddit.com / Pushshift stand-in.
    pub reddit: Server,
    /// Selenium-rendered YouTube stand-in.
    pub youtube: Server,
}

impl SimServices {
    /// Start all services over a shared world.
    pub fn start(world: Arc<World>, config: ServerConfig) -> std::io::Result<SimServices> {
        let d: Arc<dyn Handler> = Arc::new(dissenter::DissenterFront::new(world.clone()));
        let g: Arc<dyn Handler> = Arc::new(gab::GabFront::new(world.clone()));
        let r: Arc<dyn Handler> = Arc::new(reddit::RedditFront::new(world.clone()));
        let y: Arc<dyn Handler> = Arc::new(youtube::YouTubeFront::new(world));
        Ok(SimServices {
            dissenter: Server::start(d, config.clone())?,
            gab: Server::start(g, config.clone())?,
            reddit: Server::start(r, config.clone())?,
            youtube: Server::start(y, config)?,
        })
    }
}

/// Resolve a request's viewer from its `session` cookie (`u:<username>`).
pub(crate) fn viewer_for(world: &World, req: &httpnet::Request) -> platform::Viewer {
    let Some(session) = req.cookie("session") else {
        return platform::Viewer::Anonymous;
    };
    // The measurement team's own accounts (§3.2: "the HTTP cookies of an
    // authenticated account we created with NSFW and offensive content
    // enabled separately").
    if let Some(mode) = session.strip_prefix("crawler:") {
        let filters = match mode {
            "nsfw" => platform::ViewFilters { nsfw: true, ..Default::default() },
            "offensive" => platform::ViewFilters { offensive: true, ..Default::default() },
            "both" => platform::ViewFilters { nsfw: true, offensive: true, ..Default::default() },
            _ => platform::ViewFilters::default(),
        };
        return platform::Viewer::Authenticated(filters);
    }
    let Some(username) = session.strip_prefix("u:") else {
        return platform::Viewer::Anonymous;
    };
    match world.user_by_username(username) {
        Some(idx) => {
            let u = world.user(idx);
            // Deleted Gab accounts can no longer authenticate (§4.1.1).
            if u.gab_deleted || !u.flags.can_login || u.author_id.is_none() {
                platform::Viewer::Anonymous
            } else {
                platform::Viewer::Authenticated(u.filters)
            }
        }
        None => platform::Viewer::Anonymous,
    }
}
