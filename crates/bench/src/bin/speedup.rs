//! Worker-sharding speedup bench: run the same fixed-seed study serially
//! (`workers = 1`) and sharded (`--workers N`), prove the deterministic
//! report renders byte-identical, and emit the timing comparison as JSON
//! (the `BENCH_PR3.json` artifact produced by `scripts/bench_pr3.sh`).
//!
//! ```text
//! speedup [--out FILE] [--scale <f64>] [--seed N] [--workers N] [--svm-corpus N]
//! ```
//!
//! The determinism check is unconditional: any byte of divergence between
//! the serial and sharded renders aborts the bench. The speedup assertion
//! is gated on the host's CPU count (recorded as `"cpus"`): a single-core
//! box cannot speed anything up, so there the bench only records the
//! ratio.

use dissenter_core::{render, run_study, Study, StudyConfig};
use std::fmt::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: speedup [--out FILE] [--scale <f64>] [--seed N] [--workers N] [--svm-corpus N]"
    );
    std::process::exit(2);
}

/// FNV-1a over the rendered report — a compact fingerprint for the JSON.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Minimum speedup the bench enforces for a given CPU count: 8 sharded
/// workers must beat serial by 1.5× with ≥4 cores, by a hair with 2–3,
/// and the assertion is vacuous on a single core.
fn required_speedup(cpus: usize) -> f64 {
    match cpus {
        0 | 1 => 0.0,
        2 | 3 => 1.1,
        _ => 1.5,
    }
}

fn timed_study(cfg: &StudyConfig) -> (Study, std::time::Duration) {
    let started = std::time::Instant::now();
    let study = run_study(cfg);
    (study, started.elapsed())
}

fn main() {
    let mut out_path = std::path::PathBuf::from("BENCH_PR3.json");
    let mut workers = 8usize;
    let mut cfg = StudyConfig::small();
    cfg.world.scale = synth::config::Scale::Custom(0.004);
    cfg.svm_corpus = 600;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| usage()).into(),
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.world.scale =
                    synth::config::Scale::Custom(v.parse().unwrap_or_else(|_| usage()));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.world.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--workers" => {
                let v = args.next().unwrap_or_else(|| usage());
                workers = v.parse().unwrap_or_else(|_| usage());
                if workers == 0 {
                    usage();
                }
            }
            "--svm-corpus" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.svm_corpus = v.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    cfg.workers = 1;
    let (serial, serial_wall) = timed_study(&cfg);
    cfg.workers = workers;
    let (parallel, parallel_wall) = timed_study(&cfg);

    // The contract under test: the deterministic render (every paper
    // artifact; run statistics excluded as wall-clock) must be
    // byte-identical at any worker count.
    let serial_render = render::deterministic(&serial);
    let parallel_render = render::deterministic(&parallel);
    assert_eq!(
        serial_render, parallel_render,
        "deterministic render diverged between workers=1 and workers={workers}"
    );
    let digest = fnv1a64(serial_render.as_bytes());

    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);

    let mut s = String::from("{");
    let _ = write!(s, "\"bench\":\"worker-speedup\"");
    let _ = write!(s, ",\"seed\":{}", cfg.world.seed);
    let _ = write!(s, ",\"scale\":{}", serial.scale_factor);
    let _ = write!(s, ",\"cpus\":{cpus}");
    let _ = write!(s, ",\"workers\":{workers}");
    let _ = write!(s, ",\"wall_ms_serial\":{:.1}", serial_wall.as_secs_f64() * 1e3);
    let _ = write!(s, ",\"wall_ms_parallel\":{:.1}", parallel_wall.as_secs_f64() * 1e3);
    let _ = write!(s, ",\"speedup\":{speedup:.3}");
    let _ = write!(s, ",\"required_speedup\":{}", required_speedup(cpus));
    let _ = write!(s, ",\"deterministic\":true");
    let _ = write!(s, ",\"report_fnv1a64\":\"{digest:016x}\"");
    let _ = write!(s, ",\"comments\":{}", serial.report.overview.comments);

    s.push_str(",\"shards\":{");
    for (i, sh) in parallel.runstats.shards.iter().enumerate() {
        let _ = write!(
            s,
            "{}\"{}\":{{\"jobs\":{},\"items\":{},\"busy_us\":{}}}",
            if i > 0 { "," } else { "" },
            sh.name,
            sh.jobs,
            sh.items,
            sh.busy_us
        );
    }
    s.push('}');

    s.push_str(",\"stages_us\":{");
    for (which, study) in [("serial", &serial), ("parallel", &parallel)] {
        let _ = write!(s, "{}\"{which}\":{{", if which == "serial" { "" } else { "," });
        for (i, st) in study.runstats.stages.iter().enumerate() {
            let _ = write!(s, "{}\"{}\":{}", if i > 0 { "," } else { "" }, st.name, st.wall_us);
        }
        s.push('}');
    }
    s.push('}');
    s.push('}');

    // Self-validate before writing: a malformed artifact should fail the
    // bench run, not a downstream consumer.
    jsonlite::parse(&s).expect("generated speedup report must be valid JSON");

    std::fs::write(&out_path, &s).expect("write speedup report");
    println!("wrote {} ({} bytes)", out_path.display(), s.len());
    println!(
        "serial {:.0} ms, {workers} workers {:.0} ms → {speedup:.2}x on {cpus} cpu(s); \
         deterministic render fnv1a64={digest:016x}",
        serial_wall.as_secs_f64() * 1e3,
        parallel_wall.as_secs_f64() * 1e3,
    );

    let required = required_speedup(cpus);
    assert!(
        speedup >= required,
        "speedup {speedup:.2}x below the {required:.1}x floor for {cpus} cpus"
    );
}
