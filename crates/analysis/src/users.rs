//! §4.1 — user-base characterization.
//!
//! Growth (via the timestamps embedded in author-ids), comment-activity
//! concentration (Fig. 3), Table 1 flag/filter aggregation from the hidden
//! metadata, ghost (deleted-Gab) accounting, and Gab-ID monotonicity
//! (Fig. 2).

use crawler::store::CrawlStore;
use ids::clock::year_month;
use std::collections::HashMap;

/// Fig. 2 series: `(gab_id, created_epoch)` in ID order, plus the
/// monotone fraction.
#[derive(Debug, Clone)]
pub struct GabGrowth {
    /// The scatter series.
    pub series: Vec<(u64, u64)>,
    /// Fraction of consecutive ID pairs with non-decreasing creation time.
    pub monotone_fraction: f64,
}

/// Build the Fig. 2 series from the enumeration.
pub fn gab_growth(store: &CrawlStore) -> GabGrowth {
    let series: Vec<(u64, u64)> =
        store.gab_accounts.iter().map(|a| (a.gab_id, a.created_epoch)).collect();
    let monotone_fraction =
        ids::gabid::monotone_fraction(series.iter().map(|&(i, t)| (i, t)).collect());
    GabGrowth { series, monotone_fraction }
}

/// Monthly Dissenter signups from author-id timestamps:
/// `((year, month), count)` ascending.
pub fn monthly_signups(store: &CrawlStore) -> Vec<((i64, u32), usize)> {
    let mut m: HashMap<(i64, u32), usize> = HashMap::new();
    for u in store.users.values() {
        *m.entry(year_month(u.author_id.timestamp())).or_insert(0) += 1;
    }
    let mut rows: Vec<((i64, u32), usize)> = m.into_iter().collect();
    rows.sort();
    rows
}

/// Fraction of discovered users who joined on or before `(year, month)`.
pub fn joined_by(store: &CrawlStore, year: i64, month: u32) -> f64 {
    let total = store.users.len().max(1);
    let early = store
        .users
        .values()
        .filter(|u| year_month(u.author_id.timestamp()) <= (year, month))
        .count();
    early as f64 / total as f64
}

/// Per-user comment counts (active users only), username-keyed.
pub fn comment_counts(store: &CrawlStore) -> HashMap<String, u64> {
    let mut by_author: HashMap<ids::ObjectId, u64> = HashMap::new();
    for c in store.comments.values() {
        *by_author.entry(c.author_id).or_insert(0) += 1;
    }
    store
        .users
        .values()
        .filter_map(|u| by_author.get(&u.author_id).map(|&n| (u.username.clone(), n)))
        .collect()
}

/// Fig. 3: concentration curve plus the headline "x% of active users make
/// 90% of comments" figure.
#[derive(Debug, Clone)]
pub struct ActivityConcentration {
    /// `(user_fraction, comment_fraction)` curve (descending activity).
    pub curve: Vec<(f64, f64)>,
    /// Smallest user fraction producing 90% of comments.
    pub user_fraction_for_90pct: f64,
    /// Number of active users.
    pub active_users: usize,
    /// Total users discovered.
    pub total_users: usize,
}

/// Compute Fig. 3.
pub fn activity_concentration(store: &CrawlStore) -> ActivityConcentration {
    let counts: Vec<u64> = comment_counts(store).into_values().collect();
    ActivityConcentration {
        curve: stats::ecdf::concentration_curve(&counts, 100),
        user_fraction_for_90pct: stats::ecdf::fraction_for_share(&counts, 0.9),
        active_users: counts.len(),
        total_users: store.users.len() + inactive_probe_only(store),
    }
}

fn inactive_probe_only(store: &CrawlStore) -> usize {
    // Users found by the probe but never seen commenting (they appear in
    // dissenter_usernames but have no comments → not in the active set).
    store
        .dissenter_usernames
        .iter()
        .filter(|n| !store.users.contains_key(*n))
        .count()
}

/// One Table-1 row: label plus count and percentage over users with
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FlagRow {
    /// Flag name as printed in Table 1.
    pub name: &'static str,
    /// Users with the flag set.
    pub count: usize,
    /// Percentage over the metadata population.
    pub percent: f64,
}

/// Table 1: user flags and view filters over users with hidden metadata
/// (= active users).
pub fn table1(store: &CrawlStore) -> (usize, Vec<FlagRow>) {
    let metas: Vec<&crawler::store::HiddenMeta> =
        store.users.values().filter_map(|u| u.meta.as_ref()).collect();
    let n = metas.len();
    let row = |name: &'static str, pred: &dyn Fn(&crawler::store::HiddenMeta) -> bool| {
        let count = metas.iter().filter(|m| pred(m)).count();
        FlagRow { name, count, percent: 100.0 * count as f64 / n.max(1) as f64 }
    };
    let rows = vec![
        row("canLogin", &|m| m.can_login),
        row("canPost", &|m| m.can_post),
        row("canReport", &|m| m.can_report),
        row("canChat", &|m| m.can_chat),
        row("canVote", &|m| m.can_vote),
        row("isBanned", &|m| m.is_banned),
        row("isAdmin", &|m| m.is_admin),
        row("isModerator", &|m| m.is_moderator),
        row("is pro", &|m| m.is_pro),
        row("is donor", &|m| m.is_donor),
        row("is investor", &|m| m.is_investor),
        row("is premium", &|m| m.is_premium),
        row("is tippable", &|m| m.is_tippable),
        row("is private", &|m| m.is_private),
        row("verified", &|m| m.verified),
        row("filter: pro", &|m| m.filter_pro),
        row("filter: verified", &|m| m.filter_verified),
        row("filter: standard", &|m| m.filter_standard),
        row("filter: nsfw", &|m| m.filter_nsfw),
        row("filter: offensive", &|m| m.filter_offensive),
    ];
    (n, rows)
}

/// Ghost users: crawled (they commented) but absent from the probe list —
/// their Gab accounts were deleted (§4.1.1 found ~1,300).
pub fn ghost_users(store: &CrawlStore) -> Vec<&str> {
    let probed: std::collections::HashSet<&str> =
        store.dissenter_usernames.iter().map(String::as_str).collect();
    let mut out: Vec<&str> = store
        .users
        .keys()
        .map(String::as_str)
        .filter(|n| !probed.contains(*n))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::store::{CrawledComment, CrawledUser, HiddenMeta, ShadowLabel};
    use ids::{EntityKind, ObjectIdGen};

    fn store_with_users() -> CrawlStore {
        let mut store = CrawlStore::default();
        let mut ag = ObjectIdGen::new(EntityKind::Author, 0);
        let mut cg = ObjectIdGen::new(EntityKind::Comment, 1);
        let mut ug = ObjectIdGen::new(EntityKind::CommentUrl, 2);
        let url_id = ug.next(1_551_200_000);
        for (i, name) in ["alice", "bob", "carol"].iter().enumerate() {
            let author_id = ag.next(1_551_200_000 + i as u64 * 40 * 86_400);
            store.users.insert(
                name.to_string(),
                CrawledUser {
                    username: name.to_string(),
                    author_id,
                    display_name: String::new(),
                    bio: String::new(),
                    url_ids: vec![],
                    meta: Some(HiddenMeta {
                        language: "en".into(),
                        can_login: true,
                        is_pro: i == 0,
                        filter_nsfw: i < 2,
                        ..Default::default()
                    }),
                },
            );
            store.dissenter_usernames.push(name.to_string());
            // alice: 8 comments, bob: 1, carol: 1.
            let n = if i == 0 { 8 } else { 1 };
            for _ in 0..n {
                let id = cg.next(1_552_000_000);
                store.comments.insert(
                    id,
                    CrawledComment {
                        id,
                        url_id,
                        author_id,
                        parent: None,
                        text: "x".into(),
                        created_at: 1_552_000_000,
                        label: ShadowLabel::Standard,
                    },
                );
            }
        }
        store
    }

    #[test]
    fn concentration_identifies_whale() {
        let store = store_with_users();
        let a = activity_concentration(&store);
        assert_eq!(a.active_users, 3);
        // Alice (1/3 of users) produces 80% — 90% needs 2/3 of users.
        assert!((a.user_fraction_for_90pct - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn table1_counts_flags() {
        let store = store_with_users();
        let (n, rows) = table1(&store);
        assert_eq!(n, 3);
        let pro = rows.iter().find(|r| r.name == "is pro").unwrap();
        assert_eq!(pro.count, 1);
        let nsfw = rows.iter().find(|r| r.name == "filter: nsfw").unwrap();
        assert_eq!(nsfw.count, 2);
        assert!((nsfw.percent - 66.666).abs() < 0.01);
    }

    #[test]
    fn monthly_signups_ordered() {
        let store = store_with_users();
        let rows = monthly_signups(&store);
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        let total: usize = rows.iter().map(|r| r.1).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn ghost_detection() {
        let mut store = store_with_users();
        // dave commented but was never probed.
        let mut ag = ObjectIdGen::new(EntityKind::Author, 9);
        store.users.insert(
            "dave".into(),
            CrawledUser {
                username: "dave".into(),
                author_id: ag.next(1_553_000_000),
                display_name: String::new(),
                bio: String::new(),
                url_ids: vec![],
                meta: None,
            },
        );
        assert_eq!(ghost_users(&store), vec!["dave"]);
    }

    #[test]
    fn joined_by_fraction() {
        let store = store_with_users();
        // All three joined by mid-2019.
        assert_eq!(joined_by(&store, 2019, 12), 1.0);
        assert!(joined_by(&store, 2019, 3) < 1.0);
    }
}
