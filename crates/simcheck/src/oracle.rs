//! The oracle library: everything a scenario run must satisfy.
//!
//! [`check_scenario`] runs the pipeline end to end and applies, in
//! fail-fast order:
//!
//! 1. **obs ↔ store reconciliation** — every `crawl.<phase>.*` counter
//!    must agree exactly with the store's own [`crawler`] accounting,
//!    throttle sleeps must reconcile, and scorer counters must agree
//!    with each other and with the mirror;
//! 2. **full recovery** — inside the sampler's fault envelope the retry
//!    layer must deliver every page (no dead letters);
//! 3. **cross-crate invariants** — [`crawler::CrawlStore::check_accounting`],
//!    the platform shadow-visibility invariants on a regenerated world,
//!    world ↔ mirror fidelity field by field, monotone report curves,
//!    and SVM report sanity;
//! 4. **differential oracles** — the faulted sharded run and a clean
//!    serial run of the same world must produce a byte-identical
//!    rendered report, byte-identical CSV exports, a byte-identical
//!    persisted mirror, and identical deterministic counters;
//! 5. **incremental re-crawl** — with the client revalidation cache on,
//!    a second sweep against the same live services must persist a
//!    mirror byte-identical to the first sweep's while resolving a
//!    nonzero share of its fetches through `304 Not Modified` (the
//!    conditional-request fast path must be both engaged and invisible);
//! 6. **crash recovery** (`crash.*`) — a journaled crawl killed at the
//!    scenario's seeded WAL-op failpoint, recovered, and resumed must
//!    yield a store byte-identical to an uninterrupted run, replay its
//!    completed phases from disk without a single re-fetch, revalidate
//!    the interrupted phase's partial progress via `304`s, and feed the
//!    downstream study (rendered report + CSV exports) to byte-identical
//!    output. Recovery itself must be idempotent: opening a killed
//!    journal twice — torn tail or not — yields the same state.
//! 7. **adversarial traffic** (`abuse.*`) — the scenario's seeded abuse
//!    profile ([`bench::abusegen`]) driven against hardened services
//!    concurrently with a polite load must leave the polite client
//!    inside its starvation envelope, leak nothing across the shadow
//!    boundary, and reconcile every request — client-side books and the
//!    rate limiter's own accounting — to the last penalized 429.
//! 8. **longitudinal sweeps** (`longitudinal.*`) — a study composed
//!    sweep-by-sweep over the scenario's seeded epoch evolution (shared
//!    sim clock, shared revalidation cache, per-target ETag stamps)
//!    must equal a one-shot study of the final epoch state byte-for-byte
//!    on every artifact; the drift report must detect the mid-study
//!    scorer revision and carry genuine rescoring deltas whenever the
//!    scenario's drift is nonzero; and a sweep killed at a journaled
//!    failpoint and resumed in place must compose to the same bytes.
//! 9. **out-of-core scale path** (`scale.*`) — the streaming
//!    [`synth::WorldSource`] drained at the scenario's seeded batch size
//!    (and worker count) must rebuild a world content-identical to the
//!    materialized generator's, and a study routed through the
//!    external-merge spill tables — plus the spill primitives themselves
//!    under a deliberately tiny byte budget — must reproduce the
//!    in-memory path byte for byte.

use crate::scenario::Scenario;
use crawler::store::ShadowLabel;
use crawler::CrawlStore;
use dissenter_core::{render, run_study, Study};
use platform::World;
use std::fmt;
use std::path::{Path, PathBuf};

/// One oracle violation: which check tripped and what it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Stable check identifier (e.g. `"obs.reconcile"`).
    pub check: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl Failure {
    fn new(check: &str, detail: impl Into<String>) -> Self {
        Self { check: check.to_owned(), detail: detail.into() }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Which oracle family to run: [`Family::All`] is the default sweep;
/// [`Family::Crash`] runs only the crash-recovery family (used by the
/// CI crash job and mutation smoke, where the full differential stack
/// would drown the signal in runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Every oracle, fail-fast (what [`check_scenario`] runs).
    All,
    /// Only the `crash.*` kill-point family.
    Crash,
    /// Only the `abuse.*` adversarial-traffic family.
    Abuse,
    /// Only the `longitudinal.*` sweep-composition family.
    Longitudinal,
    /// Only the `scale.*` streaming/out-of-core family.
    Scale,
}

impl Family {
    /// Parse a `--family` flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "all" => Ok(Self::All),
            "crash" => Ok(Self::Crash),
            "abuse" => Ok(Self::Abuse),
            "longitudinal" => Ok(Self::Longitudinal),
            "scale" => Ok(Self::Scale),
            other => Err(format!(
                "unknown family {other:?} (expected all|crash|abuse|longitudinal|scale)"
            )),
        }
    }
}

/// Run `sc` through one oracle [`Family`].
pub fn check_scenario_family(sc: &Scenario, family: Family) -> Result<(), Failure> {
    match family {
        Family::All => check_scenario(sc),
        Family::Crash => crash_recovery(sc),
        Family::Abuse => abuse_traffic(sc),
        Family::Longitudinal => longitudinal_sweeps(sc),
        Family::Scale => scale_out_of_core(sc),
    }
}

/// Run `sc` end to end and apply every oracle. `Ok(())` means the
/// faulted, sharded run was indistinguishable from a clean serial run
/// and every invariant held.
pub fn check_scenario(sc: &Scenario) -> Result<(), Failure> {
    let faulted = run_study(&sc.config_faulted());

    reconcile_obs(&faulted)?;
    full_recovery(&faulted)?;
    faulted.store.check_accounting().map_err(|e| Failure::new("crawler.accounting", e))?;

    // The synthesizer is itself deterministic and worker-invariant, so
    // the oracle can regenerate the ground-truth world the services
    // served and hold the crawled mirror against it.
    let (world, _truth) = synth::generate(&sc.config_faulted().world);
    world.dissenter.check_invariants().map_err(|e| Failure::new("platform.invariants", e))?;
    mirror_fidelity(&world, &faulted.store)?;

    report_curves(&faulted)?;
    svm_sanity(&faulted)?;

    let control = run_study(&sc.config_control());
    differential(sc, &faulted, &control)?;

    incremental_recrawl(sc)?;
    crash_recovery(sc)?;
    abuse_traffic(sc)?;
    longitudinal_sweeps(sc)?;
    scale_out_of_core(sc)
}

/// Oracle 9: the out-of-core scale path. Three legs:
///
/// * `scale.stream` — [`synth::WorldSource`] drained at the scenario's
///   seeded `stream_batch` (and at the scenario's worker count) must
///   rebuild a world whose served-content digest
///   ([`platform::World::content_hash`]) equals the materialized
///   generator's, with the same ground truth and comment volume. Batch
///   size and worker count are presentation knobs; a digest shift means
///   the streaming refactor leaked either into sampling order or into
///   per-batch text synthesis.
/// * `scale.spill` — the external-merge primitives under the scenario's
///   deliberately tiny byte budget (every armed run writes real spill
///   files) must reproduce the in-memory TLD/domain/median tables
///   exactly, on the very URL/comment population the study analyzed.
/// * `scale.merge` — a full study routed through the spill path
///   (`out_of_core = true`) must render byte-identically to the
///   in-memory study and export byte-identical CSVs.
///
/// Runs on the control config (clean network): fault × spill
/// interactions belong to the differential family. `stream_batch == 0`
/// disables the family — the shrinker's off switch and the default for
/// replays written before it existed.
fn scale_out_of_core(sc: &Scenario) -> Result<(), Failure> {
    if sc.stream_batch == 0 {
        return Ok(()); // family disabled (shrunk away, or a pre-scale replay)
    }
    let fail = |check: &str, d: String| Failure::new(check, d);
    let cfg = sc.config_control();

    // scale.stream — streamed batches vs the materialized world.
    let (reference, ref_truth) = synth::generate(&cfg.world);
    let source = synth::WorldSource::new(&cfg.world, sc.workers).with_batch_size(sc.stream_batch);
    let streamed_truth = source.truth().clone();
    let mut batches = 0usize;
    let mut streamed = platform::World::new();
    for batch in source {
        batches += 1;
        batch.apply(&mut streamed);
    }
    if streamed.content_hash() != reference.content_hash() {
        return Err(fail(
            "scale.stream",
            format!(
                "world streamed at batch size {} (workers {}) serves different content than \
                 the materialized world (digest {:016x} vs {:016x})",
                sc.stream_batch,
                sc.workers,
                streamed.content_hash(),
                reference.content_hash()
            ),
        ));
    }
    if streamed_truth.active_indices != ref_truth.active_indices
        || streamed_truth.core_author_ids != ref_truth.core_author_ids
    {
        return Err(fail(
            "scale.stream",
            "the source's ground truth diverges from the materialized generator's".to_owned(),
        ));
    }
    if batches < 2 {
        return Err(fail(
            "scale.stream",
            format!(
                "batch size {} produced only {batches} batch(es) — the streaming path \
                 was not actually exercised",
                sc.stream_batch
            ),
        ));
    }

    // scale.spill — external-merge primitives vs their in-memory twins,
    // on the study's own URL and comment population.
    let urls: Vec<&str> = reference.dissenter.urls().iter().map(|u| u.url.as_str()).collect();
    let spilled = analysis::spill::tld_table_spilled(urls.iter().copied(), 12, sc.spill_budget)
        .map_err(|e| fail("scale.spill", format!("tld spill I/O: {e}")))?;
    let resident = analysis::domains::tld_table(urls.iter().copied(), 12);
    if spilled != resident {
        return Err(fail(
            "scale.spill",
            format!(
                "TLD table diverges under a {}-byte spill budget: {spilled:?} vs {resident:?}",
                sc.spill_budget
            ),
        ));
    }
    let spilled = analysis::spill::domain_table_spilled(urls.iter().copied(), 12, sc.spill_budget)
        .map_err(|e| fail("scale.spill", format!("domain spill I/O: {e}")))?;
    let resident = analysis::domains::domain_table(urls.iter().copied(), 12);
    if spilled != resident {
        return Err(fail(
            "scale.spill",
            format!("domain table diverges under a {}-byte spill budget", sc.spill_budget),
        ));
    }

    // scale.merge — the full out-of-core study against the in-memory one.
    let in_memory = run_study(&cfg);
    let mut ooc_cfg = cfg;
    ooc_cfg.out_of_core = true;
    let out_of_core = run_study(&ooc_cfg);
    let ra = render::deterministic(&in_memory);
    let rb = render::deterministic(&out_of_core);
    if ra != rb {
        return Err(fail(
            "scale.merge",
            format!(
                "out-of-core study renders differently from the in-memory study: {}",
                first_diff_line(&ra, &rb)
            ),
        ));
    }
    let base = std::env::temp_dir().join(format!(
        "simcheck-scale-{}-{:016x}",
        std::process::id(),
        sc.seed
    ));
    let io_fail = |e: std::io::Error| Failure::new("scale.io", e.to_string());
    let result = (|| {
        let (dir_a, dir_b) = (base.join("csv-memory"), base.join("csv-spilled"));
        let files_a = analysis::export::export_csv(&in_memory.report, &dir_a).map_err(io_fail)?;
        let files_b =
            analysis::export::export_csv(&out_of_core.report, &dir_b).map_err(io_fail)?;
        if files_a != files_b {
            return Err(fail(
                "scale.merge",
                format!("export file sets differ: {files_a:?} vs {files_b:?}"),
            ));
        }
        for name in &files_a {
            let a = std::fs::read(dir_a.join(name)).map_err(io_fail)?;
            let b = std::fs::read(dir_b.join(name)).map_err(io_fail)?;
            if a != b {
                return Err(fail(
                    "scale.merge",
                    format!("{name}: out-of-core CSV bytes differ from the in-memory export"),
                ));
            }
        }
        Ok(())
    })();
    std::fs::remove_dir_all(&base).ok();
    result
}

/// Oracle 8: longitudinal sweeps. Builds the scenario's longitudinal
/// study twice — composed sweep-by-sweep over the seeded epoch
/// evolution, and one-shot at the final epoch state — and demands:
///
/// * `longitudinal.oracle` — every artifact (deterministic render,
///   longitudinal section, windowed CSVs, figure CSVs, persisted JSONL
///   mirror) byte-identical between the two, and the incremental sweeps
///   demonstrably 304-dominated from the second sweep on. Both modes
///   score under the same declared revision timeline, so equality must
///   hold at any drift — a crawl-, clock-, stamp-, or
///   revalidation-layer bug cannot hide behind scorer drift;
/// * `longitudinal.drift` — the drift report detects the mid-study
///   revision the schedule deploys, its calibration sample is nonempty,
///   and the rescoring deltas are genuine: exactly zero at drift 0,
///   nonzero movement on some calibration comment at drift > 0 (the
///   `skip_drift_rescore` mutation zeroes them and must trip here);
/// * `longitudinal.resume` — the composed study repeated with its last
///   sweep killed at a seeded journal failpoint and resumed in place
///   composes to the same bytes as the uninterrupted composition.
///
/// Runs on a clean network at the scenario's worker shape (fault × sweep
/// interactions belong to the differential family, not here). `epochs ==
/// 0` disables the family — the shrinker's off switch and the default
/// for replays written before it existed.
fn longitudinal_sweeps(sc: &Scenario) -> Result<(), Failure> {
    use dissenter_core::longitudinal::{artifacts, run_composed, run_one_shot, LongitudinalConfig};

    if sc.epochs == 0 {
        return Ok(()); // family disabled (shrunk away, or a pre-longitudinal replay)
    }
    let fail = |check: &str, d: String| Failure::new(check, d);
    let mut study = sc.config_control();
    study.workers = sc.workers;
    study.crawl.workers = sc.crawl_workers;
    let cfg = LongitudinalConfig {
        study,
        epochs: sc.epochs,
        drift: sc.drift,
        drift_seed: sc.world_seed,
        calibration: 64,
        durable_root: None,
        kill_sweep: None,
    };

    let composed = run_composed(&cfg);
    let one_shot = run_one_shot(&cfg);

    // longitudinal.oracle — byte equality on every artifact, then proof
    // the incremental path was actually exercised.
    let (a, b) = (artifacts(&composed), artifacts(&one_shot));
    for ((name, composed_bytes), (_, one_shot_bytes)) in a.iter().zip(&b) {
        if composed_bytes != one_shot_bytes {
            let detail = match (
                std::str::from_utf8(composed_bytes),
                std::str::from_utf8(one_shot_bytes),
            ) {
                (Ok(ca), Ok(ob)) => first_diff_line(ca, ob),
                _ => format!("{} vs {} bytes", composed_bytes.len(), one_shot_bytes.len()),
            };
            return Err(fail(
                "longitudinal.oracle",
                format!(
                    "{name}: composed sweeps diverge from the one-shot study \
                     (epochs {}, drift {}): {detail}",
                    sc.epochs, sc.drift
                ),
            ));
        }
    }
    let base_304 = composed.sweep_not_modified[0];
    if composed.sweep_not_modified[1..].iter().any(|&n| n <= base_304) {
        return Err(fail(
            "longitudinal.oracle",
            format!(
                "incremental sweeps are not 304-dominated (first sweep {base_304}, later {:?}) \
                 — the shared revalidation cache or per-target stamps are not engaging",
                &composed.sweep_not_modified[1..]
            ),
        ));
    }

    // longitudinal.drift — the mid-study revision must be detected, and
    // its rescoring deltas must be genuine.
    let boundaries = &composed.drift.boundaries;
    if boundaries.len() != 1 {
        return Err(fail(
            "longitudinal.drift",
            format!(
                "expected exactly one version boundary over {} epochs, report holds {}",
                sc.epochs,
                boundaries.len()
            ),
        ));
    }
    let b = &boundaries[0];
    if b.calibration_n == 0 {
        return Err(fail("longitudinal.drift", "empty calibration sample".to_owned()));
    }
    if sc.drift == 0.0 {
        if b.max_abs_comment_delta != 0.0 || b.flagged {
            return Err(fail(
                "longitudinal.drift",
                format!("a drift-0 redeploy moved calibration scores: {b:?}"),
            ));
        }
    } else if b.max_abs_comment_delta == 0.0 {
        return Err(fail(
            "longitudinal.drift",
            format!(
                "drift {} moved no calibration comment at the v{}->v{} boundary — the \
                 rescoring pass is not actually rescoring",
                sc.drift, b.from_version, b.to_version
            ),
        ));
    }

    // longitudinal.resume — kill the last sweep at a seeded journal op
    // and resume it; the composition must not notice.
    let root = std::env::temp_dir().join(format!(
        "simcheck-longitudinal-{}-{:016x}",
        std::process::id(),
        sc.seed
    ));
    std::fs::remove_dir_all(&root).ok();
    let kill_at = 1 + (sc.kill_fraction * 30.0) as u64;
    let killed_cfg = LongitudinalConfig {
        durable_root: Some(root.clone()),
        kill_sweep: Some((sc.epochs, kill_at)),
        ..cfg
    };
    let resumed = run_composed(&killed_cfg);
    std::fs::remove_dir_all(&root).ok();
    for ((name, want), (_, have)) in a.iter().zip(&artifacts(&resumed)) {
        if want != have {
            return Err(fail(
                "longitudinal.resume",
                format!(
                    "{name}: composition with sweep {} killed at journal op {kill_at} and \
                     resumed diverges from the uninterrupted composition",
                    sc.epochs
                ),
            ));
        }
    }
    Ok(())
}

/// Oracle 7: adversarial traffic. Serves the scenario's world through a
/// hardened [`webfront::SimServices`] stack — tight header/write
/// deadlines, a short penalty-enabled per-URL rate limit, metrics wired
/// — then drives the scenario's seeded [`bench::abusegen::Profile`]
/// with `abuse_conns` hostile connections concurrently with a polite
/// closed-loop load, plus a greedy burst on the rate-limited route so
/// penalties always engage. Demands:
///
/// * `abuse.polite` — the polite client stays inside the starvation
///   envelope: ≥ 99% success and p99 under an absolute 2 s ceiling;
/// * `abuse.leak` — zero shadow-visibility leaks (a cached or replayed
///   validator must never reveal shadowed content to the wrong viewer)
///   and zero ETag ↔ body incoherence under stampede;
/// * `abuse.reconcile` — every abuse segment's client-side books
///   balance exactly (offered = served + 304 + 429 + rejected +
///   dropped + errors), and the limiter's own `RateStats` agree with
///   client-observed outcomes on the rate-limited route to the exact
///   count — penalized lockouts included, and at least one observed;
/// * `abuse.defense` — when the profile is slowloris, the server's
///   `conn.read_timeouts`/`conn.write_timeouts` counters prove the
///   header and write deadlines actually fired, and defense closes
///   cover every hostile close the clients observed.
fn abuse_traffic(sc: &Scenario) -> Result<(), Failure> {
    use bench::abusegen::{
        greedy_collect, run_mixed, shadow_probe, AbuseConfig, AbuseCounts, AbuseTargets, Profile,
    };
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    if sc.abuse_conns == 0 {
        return Ok(()); // family disabled (shrunk away, or a pre-abuse replay)
    }
    let fail = |check: &str, d: String| Failure::new(check, d);
    let cfg = sc.config_control();
    let (world, _truth) = synth::generate(&cfg.world);
    let world = Arc::new(world);

    let registry = obs::Registry::new();
    let cache = webfront::cache::FrontCache::with_registry(
        world.content_hash(),
        httpnet::CacheConfig::default(),
        &registry,
    );
    // Short window + penalty so the limiter binds (and bites) within
    // the phase instead of the production 60 s cadence.
    let limiter = platform::RateLimiter::new(3, 1).with_penalty(3);
    let dissenter = Arc::new(webfront::dissenter::DissenterFront::with_parts(
        world.clone(),
        cache,
        limiter,
    ));
    let mut fronts = webfront::SimFronts::new(world.clone());
    fronts.dissenter = dissenter.clone();
    let hardened = httpnet::ServerConfig {
        workers: 4,
        queue: 256,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_millis(400),
        header_read_timeout: Duration::from_millis(300),
        metrics: Some(registry.clone()),
        ..httpnet::ServerConfig::default()
    };
    let services = webfront::SimServices::start_with(fronts, hardened)
        .map_err(|e| fail("abuse.serve", e.to_string()))?;
    let addr = services.dissenter.addr();

    let targets = AbuseTargets::discover(&world, 3)
        .ok_or_else(|| fail("abuse.serve", "world has no dissenter targets".to_owned()))?;
    let shadow = shadow_probe(addr, &world);
    let mut names: Vec<String> =
        world.dissenter_users().map(|i| world.user(i).username.clone()).collect();
    names.sort_unstable();
    let polite_targets: Vec<String> =
        names.iter().take(8).map(|n| format!("/user/{n}")).collect();

    let profile = Profile::from_index(sc.abuse_profile);
    let abuse_cfg = AbuseConfig {
        conns: sc.abuse_conns,
        seed: sc.seed,
        conn_deadline: Duration::from_millis(1200),
        ..AbuseConfig::default()
    };
    let polite = bench::loadgen::LoadConfig {
        threads: 2,
        requests_per_thread: 60,
        warmup_per_thread: 10,
        ..bench::loadgen::LoadConfig::default()
    };
    let outcome = run_mixed(
        addr,
        profile,
        &targets,
        shadow.as_ref(),
        &abuse_cfg,
        &polite_targets,
        &polite,
        Duration::from_millis(2200),
    );
    // A short greedy burst on the rate-limited route regardless of
    // profile: penalties must engage (and reconcile) in every armed run.
    let greedy = greedy_collect(addr, &targets.cuids, Instant::now() + Duration::from_millis(1200));

    // abuse.polite — starvation envelope.
    let p = &outcome.polite;
    let total = p.requests + p.failures;
    if total == 0 || (p.failures as f64) > total as f64 * 0.01 {
        return Err(fail(
            "abuse.polite",
            format!(
                "polite client starved under {}: {} failures of {total} requests",
                profile.name(),
                p.failures
            ),
        ));
    }
    if p.p99_us > 2_000_000 {
        return Err(fail(
            "abuse.polite",
            format!("polite p99 {} us breaches the 2 s envelope under {}", p.p99_us, profile.name()),
        ));
    }

    // abuse.leak — shadow isolation and cache coherence.
    if outcome.abuse.leaks > 0 {
        return Err(fail(
            "abuse.leak",
            format!("{} shadow-visibility leaks under {}", outcome.abuse.leaks, profile.name()),
        ));
    }
    if outcome.abuse.incoherent > 0 {
        return Err(fail(
            "abuse.leak",
            format!(
                "{} ETag/body coherence violations under {}",
                outcome.abuse.incoherent,
                profile.name()
            ),
        ));
    }

    // abuse.reconcile — client books, then the limiter's own.
    for (tag, counts) in [(profile.name(), &outcome.abuse), ("greedy_burst", &greedy.counts)] {
        if !counts.reconciles() {
            return Err(fail("abuse.reconcile", format!("{tag} books do not balance: {counts:?}")));
        }
    }
    let mut url_books = AbuseCounts::default();
    if profile == Profile::GreedyScraper {
        url_books.merge(&outcome.abuse);
    }
    url_books.merge(&greedy.counts);
    let stats = dissenter.rate_stats();
    let client_allowed = url_books.served + url_books.not_modified + url_books.rejected;
    if stats.allowed != client_allowed
        || stats.denied != url_books.denied
        || stats.penalized != url_books.penalized
    {
        return Err(fail(
            "abuse.reconcile",
            format!(
                "limiter books diverge from client-observed outcomes: limiter \
                 allowed/denied/penalized {}/{}/{} vs client {}/{}/{}",
                stats.allowed,
                stats.denied,
                stats.penalized,
                client_allowed,
                url_books.denied,
                url_books.penalized
            ),
        ));
    }
    if url_books.penalized == 0 {
        return Err(fail(
            "abuse.reconcile",
            "no penalized lockout was ever observed (the greedy burst never bit)".to_owned(),
        ));
    }

    // abuse.defense — slowloris must be defeated by the deadline sweeps,
    // and every hostile close accounted to a defense counter.
    if profile == Profile::Slowloris {
        let snap = registry.snapshot();
        let counter = |name: &str| snap.counter(name).unwrap_or(0);
        if outcome.abuse.errors > 0 {
            return Err(fail(
                "abuse.defense",
                format!("{} tricklers outlived the give-up budget unclosed", outcome.abuse.errors),
            ));
        }
        if counter("conn.read_timeouts") == 0 || counter("conn.write_timeouts") == 0 {
            return Err(fail(
                "abuse.defense",
                format!(
                    "deadline defenses dead: conn.read_timeouts {} conn.write_timeouts {}",
                    counter("conn.read_timeouts"),
                    counter("conn.write_timeouts")
                ),
            ));
        }
        let defense =
            counter("conn.read_timeouts") + counter("conn.write_timeouts") + counter("conn.oversize");
        if defense < outcome.abuse.closed_conns {
            return Err(fail(
                "abuse.defense",
                format!(
                    "clients observed {} hostile closes but defense counters account {defense}",
                    outcome.abuse.closed_conns
                ),
            ));
        }
    }
    Ok(())
}

/// Oracle 6: crash recovery. Journals a reference crawl to learn the
/// WAL-op count, maps the scenario's `kill_fraction` onto a concrete
/// kill op, kills a second crawl there (torn tail per the scenario),
/// then demands: the kill actually fired (`crash.kill`), double
/// recovery is idempotent (`crash.replay`), and a resumed crawl is
/// indistinguishable from the uninterrupted one — persisted store,
/// rendered report, and CSV exports all byte-identical, with completed
/// phases replayed from disk (zero fetches) and the interrupted phase's
/// journaled partial progress answered by `304`s (`crash.resume`,
/// `crash.render`, `crash.csv`).
///
/// Runs on the control config (clean network, serial): fault × kill
/// interactions belong to the faulted differential, not here — a kill
/// must be recoverable even under ideal conditions before fault soup
/// means anything.
fn crash_recovery(sc: &Scenario) -> Result<(), Failure> {
    if sc.kill_fraction <= 0.0 {
        return Ok(()); // family disabled (shrunk away, or a pre-crash replay)
    }
    let cfg = sc.config_control();
    let fail = |check: &str, d: String| Failure::new(check, d);
    let (world, _truth) = synth::generate(&cfg.world);
    let world = std::sync::Arc::new(world);

    // Dissenter's per-URL fixed window is served with a short period
    // here so a resume landing inside the window a killed run already
    // spent sleeps milliseconds, not the production 60 s (the crawler's
    // sleep-until-reset handling is what keeps that correct).
    let mut fronts = webfront::SimFronts::new(world.clone());
    fronts.dissenter =
        std::sync::Arc::new(webfront::dissenter::DissenterFront::with_rate_limit(
            world.clone(),
            10,
            2,
        ));
    let services = webfront::SimServices::start_with(fronts, crawler::default_server_config())
        .map_err(|e| fail("crash.serve", e.to_string()))?;
    let crawler_for = || {
        let mut crawler = crawler::Crawler::new(crawler::Endpoints {
            dissenter: services.dissenter.addr(),
            gab: services.gab.addr(),
            reddit: services.reddit.addr(),
            youtube: services.youtube.addr(),
        });
        crawler.config = cfg.crawl.clone();
        crawler.config.enum_gap_tolerance =
            crawler.config.enum_gap_tolerance.min((world.gab.max_id() / 4).max(512));
        crawler.enable_revalidation(1 << 16);
        crawler
    };

    let base = std::env::temp_dir().join(format!(
        "simcheck-crash-{}-{:016x}",
        std::process::id(),
        sc.seed
    ));
    std::fs::remove_dir_all(&base).ok();
    let result = crash_recovery_in(sc, &base, &crawler_for, &world);
    std::fs::remove_dir_all(&base).ok();
    result
}

/// The body of [`crash_recovery`], separated so the caller can clean up
/// `base` on every exit path.
fn crash_recovery_in(
    sc: &Scenario,
    base: &Path,
    crawler_for: &dyn Fn() -> crawler::Crawler,
    world: &World,
) -> Result<(), Failure> {
    let fail = |check: &str, d: String| Failure::new(check, d);
    let io_fail = |e: std::io::Error| Failure::new("crash.io", e.to_string());
    let durable = crawler::DurableConfig::default();

    // Uninterrupted journaled reference run: the byte-identity target,
    // and the WAL-op count the kill fraction indexes into.
    let reference_crawler = crawler_for();
    let reference = reference_crawler
        .full_crawl_durable(&base.join("reference"), &durable)
        .map_err(|e| fail("crash.reference", e.to_string()))?;
    let total_ops = reference_crawler
        .metrics
        .snapshot()
        .counter("wal.appends")
        .filter(|&n| n > 1)
        .ok_or_else(|| {
            fail("crash.reference", "journaled run recorded no WAL appends".to_owned())
        })?;

    // Map the unit-interval fraction onto a concrete op in [1, W].
    let kill_at = 1 + (sc.kill_fraction * (total_ops - 1) as f64) as u64;
    let killed_dir = base.join("killed");
    let kill_cfg = crawler::DurableConfig {
        failpoint: crawler::Failpoint { kill_at_op: Some(kill_at), torn_tail: sc.torn_tail },
        ..crawler::DurableConfig::default()
    };
    match crawler_for().full_crawl_durable(&killed_dir, &kill_cfg) {
        Ok(_) => {
            return Err(fail(
                "crash.kill",
                format!("failpoint at op {kill_at}/{total_ops} never fired"),
            ))
        }
        Err(e) if !crawler::journal::is_kill_error(&e) => {
            return Err(fail(
                "crash.kill",
                format!("kill at op {kill_at}/{total_ops} surfaced a foreign error: {e}"),
            ))
        }
        Err(_) => {}
    }

    // Idempotent recovery: opening the killed journal twice must yield
    // the same completed-prefix and the same store bytes (the first
    // open truncates any torn tail; the second sees a clean log).
    let recovered = |tag: &str| -> Result<(usize, Vec<Vec<u8>>), Failure> {
        let (_, state) =
            crawler::journal::Journal::recover(&killed_dir, &durable, obs::Registry::new())
                .map_err(|e| fail("crash.replay", e.to_string()))?;
        Ok((state.completed, persist_bytes(&state.store, &base.join(tag))?))
    };
    let (completed_a, bytes_a) = recovered("recover-a")?;
    let (completed_b, bytes_b) = recovered("recover-b")?;
    if completed_a != completed_b || bytes_a != bytes_b {
        return Err(fail(
            "crash.replay",
            format!(
                "double recovery diverged (completed {completed_a} vs {completed_b}, \
                 torn_tail={})",
                sc.torn_tail
            ),
        ));
    }

    // Resume must reconstruct the uninterrupted run byte for byte.
    let resumer = crawler_for();
    let (resumed, info) = resumer
        .resume(&killed_dir, &durable)
        .map_err(|e| fail("crash.resume", e.to_string()))?;
    let resumed_bytes = persist_bytes(&resumed, &base.join("persist-resumed"))?;
    let reference_bytes = persist_bytes(&reference, &base.join("persist-reference"))?;
    for (name, (a, b)) in
        crawler::persist::FILES.iter().zip(resumed_bytes.iter().zip(&reference_bytes))
    {
        if a != b {
            return Err(fail(
                "crash.resume",
                format!(
                    "{name}: resumed store bytes diverge from the uninterrupted run \
                     (killed at op {kill_at}/{total_ops}, torn_tail={})",
                    sc.torn_tail
                ),
            ));
        }
    }

    // Completed phases came back from the journal, not the network.
    let snap = resumer.metrics.snapshot();
    for phase in &crawler::Phase::ALL[..info.completed] {
        let attempted = snap.counter(&format!("crawl.{}.attempted", phase.name())).unwrap_or(0);
        if attempted != 0 {
            return Err(fail(
                "crash.resume",
                format!("completed phase {} re-fetched {attempted} pages", phase.name()),
            ));
        }
    }
    // The interrupted phase's journaled partial progress is a floor on
    // the 304s resume must earn back.
    let not_modified: u64 = ["dissenter", "gab", "reddit", "youtube"]
        .iter()
        .map(|s| snap.counter(&format!("http.{s}.not_modified")).unwrap_or(0))
        .sum();
    if not_modified < info.uncheckpointed_reval as u64 {
        return Err(fail(
            "crash.resume",
            format!(
                "resume revalidated {not_modified} fetches but the journal held {} \
                 uncheckpointed entries",
                info.uncheckpointed_reval
            ),
        ));
    }

    // Downstream: the study built from the resumed store must render and
    // export byte-identically to one built from the reference store.
    let study_of = |store: CrawlStore| {
        let report =
            analysis::report::build_report(&store, &world.baselines, sc.workers.max(1));
        Study {
            report,
            svm: None,
            store,
            scale_factor: sc.scale,
            runstats: dissenter_core::runstats::collect(&obs::Registry::new()),
        }
    };
    let from_resumed = study_of(resumed);
    let from_reference = study_of(reference);
    let ra = render::deterministic(&from_resumed);
    let rb = render::deterministic(&from_reference);
    if ra != rb {
        return Err(fail(
            "crash.render",
            format!(
                "report from the resumed store diverges: {}",
                first_diff_line(&ra, &rb)
            ),
        ));
    }
    let (csv_a, csv_b) = (base.join("csv-resumed"), base.join("csv-reference"));
    let files_a = analysis::export::export_csv(&from_resumed.report, &csv_a).map_err(io_fail)?;
    let files_b =
        analysis::export::export_csv(&from_reference.report, &csv_b).map_err(io_fail)?;
    if files_a != files_b {
        return Err(fail(
            "crash.csv",
            format!("export file sets differ: {files_a:?} vs {files_b:?}"),
        ));
    }
    for name in &files_a {
        let a = std::fs::read(csv_a.join(name)).map_err(io_fail)?;
        let b = std::fs::read(csv_b.join(name)).map_err(io_fail)?;
        if a != b {
            return Err(fail("crash.csv", format!("{name} bytes differ")));
        }
    }
    Ok(())
}

/// Persist `store` under `dir` and read the canonical files back, in
/// [`crawler::persist::FILES`] order.
fn persist_bytes(store: &CrawlStore, dir: &Path) -> Result<Vec<Vec<u8>>, Failure> {
    let io_fail = |e: std::io::Error| Failure::new("crash.io", e.to_string());
    crawler::persist::save(store, dir).map_err(io_fail)?;
    crawler::persist::FILES
        .iter()
        .map(|f| std::fs::read(dir.join(f)).map_err(io_fail))
        .collect()
}

/// Oracle 5: incremental re-crawl. Runs two full sweeps over one set of
/// live services with a shared revalidation cache — clean network, serial
/// crawl (fault interactions are oracle 4's job) — and demands the
/// second sweep's persisted mirror be byte-identical to the first's with
/// the `304` fast path demonstrably engaged.
fn incremental_recrawl(sc: &Scenario) -> Result<(), Failure> {
    let cfg = sc.config_control();
    let fail = |check: &str, d: String| Failure::new(check, d);
    let (world, _truth) = synth::generate(&cfg.world);
    let world = std::sync::Arc::new(world);
    let services =
        webfront::SimServices::start(world.clone(), crawler::default_server_config())
            .map_err(|e| fail("incremental.serve", e.to_string()))?;
    let mut crawler = crawler::Crawler::new(crawler::Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config = cfg.crawl.clone();
    crawler.config.enum_gap_tolerance =
        crawler.config.enum_gap_tolerance.min((world.gab.max_id() / 4).max(512));
    crawler.enable_revalidation(1 << 16);

    let first = crawler.full_crawl();
    let second = crawler.full_crawl();
    for (sweep, store) in [("first", &first), ("second", &second)] {
        let letters = store.dead_letters();
        if !letters.is_empty() {
            return Err(fail(
                "incremental.recovery",
                format!(
                    "{sweep} sweep dead-lettered {} fetches on a clean network; first: {} ({})",
                    letters.len(),
                    letters[0].target,
                    letters[0].cause
                ),
            ));
        }
    }

    let base = std::env::temp_dir().join(format!(
        "simcheck-incr-{}-{:016x}",
        std::process::id(),
        sc.seed
    ));
    let io_fail = |e: std::io::Error| Failure::new("incremental.io", e.to_string());
    let result = (|| {
        let (dir_a, dir_b) = (base.join("sweep1"), base.join("sweep2"));
        crawler::persist::save(&first, &dir_a).map_err(io_fail)?;
        crawler::persist::save(&second, &dir_b).map_err(io_fail)?;
        for name in crawler::persist::FILES {
            let a = std::fs::read(dir_a.join(name)).map_err(io_fail)?;
            let b = std::fs::read(dir_b.join(name)).map_err(io_fail)?;
            if a != b {
                return Err(fail(
                    "incremental.persist",
                    format!("{name}: re-crawl bytes differ from the fresh crawl's"),
                ));
            }
        }
        Ok(())
    })();
    std::fs::remove_dir_all(&base).ok();
    result?;

    let snap = crawler.metrics.snapshot();
    let revalidated: u64 = ["dissenter", "gab", "reddit", "youtube"]
        .iter()
        .map(|s| snap.counter(&format!("http.{s}.not_modified")).unwrap_or(0))
        .sum();
    if revalidated == 0 {
        return Err(fail(
            "incremental.engaged",
            "re-crawl resolved zero fetches via 304 — the conditional fast path never fired"
                .to_owned(),
        ));
    }
    Ok(())
}

/// Obs counters must agree exactly with the crawler's own accounting —
/// the two are incremented at different layers, so any skew means one
/// side is lying.
fn reconcile_obs(study: &Study) -> Result<(), Failure> {
    let snap = &study.runstats.snapshot;
    let mut throttle_total = 0u64;
    for (phase, s) in study.store.stats.phase_snapshots() {
        let get = |suffix: &str| {
            snap.counter(&format!("crawl.{}.{suffix}", phase.name())).unwrap_or(0)
        };
        for (field, counter, store_side) in [
            ("attempted", get("attempted"), s.attempted),
            ("succeeded", get("succeeded"), s.succeeded),
            ("retried", get("retried"), s.retried),
            ("dead_lettered", get("dead_lettered"), s.dead_lettered),
        ] {
            if counter != store_side {
                return Err(Failure::new(
                    "obs.reconcile",
                    format!(
                        "phase {}: obs counter crawl.{}.{field} = {counter} but store \
                         accounting says {store_side}",
                        phase.name(),
                        phase.name(),
                    ),
                ));
            }
        }
        throttle_total += get("throttle_sleeps");
    }
    let store_sleeps =
        study.store.stats.rate_limit_sleeps.load(std::sync::atomic::Ordering::Relaxed);
    if store_sleeps != throttle_total {
        return Err(Failure::new(
            "obs.reconcile",
            format!(
                "store rate_limit_sleeps {store_sleeps} != sum of crawl.*.throttle_sleeps \
                 {throttle_total}"
            ),
        ));
    }

    // Scorer counters: perspective and dictionary score the same texts
    // in the same pass, and the scored-item shard counter tallies that
    // same volume; all Dissenter comments are among the scored texts.
    let persp = snap.counter("classify.perspective.comments").unwrap_or(0);
    let dict = snap.counter("classify.dictionary.comments").unwrap_or(0);
    let scored = snap.counter("shard.classify.score.items").unwrap_or(0);
    if persp != dict || persp != scored {
        return Err(Failure::new(
            "obs.reconcile",
            format!(
                "scorer volumes disagree: perspective {persp}, dictionary {dict}, \
                 shard.classify.score.items {scored}"
            ),
        ));
    }
    let comments = study.store.comments.len() as u64;
    if scored < comments {
        return Err(Failure::new(
            "obs.reconcile",
            format!("scored {scored} texts but the mirror holds {comments} comments"),
        ));
    }
    if let Some(svm) = snap.counter("classify.svm.comments") {
        if svm != comments {
            return Err(Failure::new(
                "obs.reconcile",
                format!("classify.svm.comments {svm} != mirror comments {comments}"),
            ));
        }
    }
    Ok(())
}

/// Inside the sampler's envelope every logical fetch must eventually
/// succeed; a dead letter here means the retry layer gave up too early.
fn full_recovery(study: &Study) -> Result<(), Failure> {
    let letters = study.store.dead_letters();
    if !letters.is_empty() {
        let first = &letters[0];
        return Err(Failure::new(
            "crawl.recovery",
            format!(
                "{} dead letters inside the recovery envelope; first: {} {} ({})",
                letters.len(),
                first.phase.name(),
                first.target,
                first.cause
            ),
        ));
    }
    Ok(())
}

/// The crawled mirror must reproduce the served world exactly: same
/// URLs with the same votes and declared counts, same comments with the
/// same text/threading, and shadow labels matching each comment's
/// (nsfw, offensive) flags.
fn mirror_fidelity(world: &World, store: &CrawlStore) -> Result<(), Failure> {
    let fail = |d: String| Err(Failure::new("mirror.fidelity", d));
    let urls = world.dissenter.urls();
    if store.urls.len() != urls.len() {
        return fail(format!("mirror has {} urls, world has {}", store.urls.len(), urls.len()));
    }
    for u in urls {
        let Some(m) = store.urls.get(&u.id) else {
            return fail(format!("url {} ({}) missing from the mirror", u.id, u.url));
        };
        if m.url != u.url || m.upvotes != u.upvotes || m.downvotes != u.downvotes {
            return fail(format!(
                "url {}: mirror ({}, +{}/-{}) != world ({}, +{}/-{})",
                u.id, m.url, m.upvotes, m.downvotes, u.url, u.upvotes, u.downvotes
            ));
        }
        let declared = world.dissenter.comment_count(u.id);
        if m.declared_comment_count != declared {
            return fail(format!(
                "url {}: declared_comment_count {} != world count {}",
                u.id, m.declared_comment_count, declared
            ));
        }
    }
    let comments = world.dissenter.comments();
    if store.comments.len() != comments.len() {
        return fail(format!(
            "mirror has {} comments, world has {}",
            store.comments.len(),
            comments.len()
        ));
    }
    for c in comments {
        let Some(m) = store.comments.get(&c.id) else {
            return fail(format!("comment {} missing from the mirror", c.id));
        };
        if m.url_id != c.url_id
            || m.author_id != c.author_id
            || m.parent != c.parent
            || m.text != c.text
            || m.created_at != c.created_at
        {
            return fail(format!("comment {}: mirror fields diverge from the world", c.id));
        }
        let expected = match (c.nsfw, c.offensive) {
            (false, false) => ShadowLabel::Standard,
            (true, false) => ShadowLabel::Nsfw,
            (false, true) => ShadowLabel::Offensive,
            (true, true) => ShadowLabel::Both,
        };
        if m.label != expected {
            return fail(format!(
                "comment {}: shadow label {:?} but flags (nsfw={}, offensive={}) imply {:?}",
                c.id, m.label, c.nsfw, c.offensive, expected
            ));
        }
    }
    Ok(())
}

/// Every distribution the report exports must be a well-formed curve:
/// finite, CDF values in [0, 1], x and y monotone non-decreasing.
fn report_curves(study: &Study) -> Result<(), Failure> {
    let r = &study.report;
    let mut curves: Vec<(String, Vec<(f64, f64)>)> =
        vec![("fig3.concentration".into(), r.activity.curve.clone())];
    for (pop, c) in
        [("all", &r.figure4.all), ("nsfw", &r.figure4.nsfw), ("offensive", &r.figure4.offensive)]
    {
        curves.push((format!("fig4.{pop}.likely_to_reject"), c.likely_to_reject.curve(101)));
        curves.push((format!("fig4.{pop}.obscene"), c.obscene.curve(101)));
        curves.push((format!("fig4.{pop}.severe_toxicity"), c.severe_toxicity.curve(101)));
    }
    for d in &r.figure7 {
        curves.push((format!("fig7.{}.likely_to_reject", d.name), d.likely_to_reject.curve(101)));
        curves.push((format!("fig7.{}.severe_toxicity", d.name), d.severe_toxicity.curve(101)));
        curves.push((format!("fig7.{}.attack_on_author", d.name), d.attack_on_author.curve(101)));
    }
    for (bias, e) in &r.figure8.attack_by_bias {
        curves.push((format!("fig8b.{}", bias.label()), e.curve(101)));
    }
    for (name, points) in curves {
        stats::ecdf::validate_curve(&points)
            .map_err(|e| Failure::new("stats.curves", format!("{name}: {e}")))?;
    }
    Ok(())
}

/// Basic sanity on the SVM report when the experiment ran: F1 in range,
/// the full grid present, and both probability vectors summing to one.
fn svm_sanity(study: &Study) -> Result<(), Failure> {
    let Some(svm) = &study.svm else { return Ok(()) };
    let fail = |d: String| Err(Failure::new("svm.sanity", d));
    if !(0.0..=1.0).contains(&svm.cv_f1) {
        return fail(format!("cv_f1 {} out of range", svm.cv_f1));
    }
    if svm.grid.is_empty() || svm.corpus_size == 0 {
        return fail(format!("empty grid ({}) or corpus ({})", svm.grid.len(), svm.corpus_size));
    }
    if !svm.grid.iter().any(|&(l, f1)| l == svm.best_lambda && f1 == svm.cv_f1) {
        return fail(format!("best (λ={}, F1={}) not on the grid", svm.best_lambda, svm.cv_f1));
    }
    for (name, v) in [("mean_class_probs", svm.mean_class_probs), ("class_shares", svm.class_shares)]
    {
        let sum: f64 = v.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return fail(format!("{name} sums to {sum}, expected 1"));
        }
    }
    Ok(())
}

/// The differential oracles: the faulted sharded run must be
/// byte-identical to the clean serial control on every deterministic
/// surface.
fn differential(sc: &Scenario, faulted: &Study, control: &Study) -> Result<(), Failure> {
    // 1. Rendered report (excludes timing-derived run stats).
    let ra = render::deterministic(faulted);
    let rb = render::deterministic(control);
    if ra != rb {
        let diff = first_diff_line(&ra, &rb);
        return Err(Failure::new(
            "differential.render",
            format!("faulted/sharded render diverges from clean/serial: {diff}"),
        ));
    }

    // 2 + 3. CSV exports and the persisted mirror, compared file by file
    // in throwaway directories.
    let base = std::env::temp_dir().join(format!(
        "simcheck-{}-{:016x}",
        std::process::id(),
        sc.seed
    ));
    let result = differential_files(faulted, control, &base);
    std::fs::remove_dir_all(&base).ok();
    result?;

    // 4. Deterministic counters: shard geometry and scorer volumes are
    // contracted to be identical for any worker count and any fault
    // history (`crawl.*` counters are NOT compared — retries and
    // throttle sleeps legitimately differ under faults).
    let diffs: Vec<String> = faulted
        .runstats
        .snapshot
        .diff_counters(&control.runstats.snapshot)
        .into_iter()
        .filter(|(name, _, _)| name.starts_with("shard.") || name.starts_with("classify."))
        .map(|(name, a, b)| format!("{name}: faulted {a} vs control {b}"))
        .collect();
    if !diffs.is_empty() {
        return Err(Failure::new(
            "differential.counters",
            format!("deterministic counters diverge: {}", diffs.join("; ")),
        ));
    }
    Ok(())
}

fn differential_files(faulted: &Study, control: &Study, base: &Path) -> Result<(), Failure> {
    let io_fail = |e: std::io::Error| Failure::new("differential.io", e.to_string());
    let read = |path: PathBuf| std::fs::read(&path).map_err(io_fail);

    let (csv_a, csv_b) = (base.join("csv-faulted"), base.join("csv-control"));
    let files_a = analysis::export::export_csv(&faulted.report, &csv_a).map_err(io_fail)?;
    let files_b = analysis::export::export_csv(&control.report, &csv_b).map_err(io_fail)?;
    if files_a != files_b {
        return Err(Failure::new(
            "differential.csv",
            format!("export file sets differ: {files_a:?} vs {files_b:?}"),
        ));
    }
    for name in &files_a {
        if read(csv_a.join(name))? != read(csv_b.join(name))? {
            return Err(Failure::new("differential.csv", format!("{name} bytes differ")));
        }
    }

    let (mir_a, mir_b) = (base.join("mirror-faulted"), base.join("mirror-control"));
    crawler::persist::save(&faulted.store, &mir_a).map_err(io_fail)?;
    crawler::persist::save(&control.store, &mir_b).map_err(io_fail)?;
    for name in crawler::persist::FILES {
        if read(mir_a.join(name))? != read(mir_b.join(name))? {
            return Err(Failure::new("differential.persist", format!("{name} bytes differ")));
        }
    }
    Ok(())
}

/// First line where two renders diverge, for failure detail.
fn first_diff_line(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: {la:?} vs {lb:?}", i + 1);
        }
    }
    format!("lengths differ ({} vs {} lines)", a.lines().count(), b.lines().count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MIN_SCALE;

    /// The cheapest possible scenario: serial, clean, tiny, no SVM.
    fn minimal() -> Scenario {
        Scenario {
            seed: 0,
            world_seed: 0xD15C,
            scale: MIN_SCALE,
            workers: 1,
            crawl_workers: 1,
            retries: 6,
            drop_prob: 0.0,
            error_prob: 0.0,
            truncate_prob: 0.0,
            reset_prob: 0.0,
            stall_prob: 0.0,
            malformed_prob: 0.0,
            rate_limit_prob: 0.0,
            unavailable_prob: 0.0,
            fault_seed: 0,
            svm: false,
            svm_corpus: 300,
            kill_fraction: 0.0,
            torn_tail: false,
            abuse_profile: 0,
            abuse_conns: 0,
            epochs: 0,
            drift: 0.0,
            stream_batch: 0,
            spill_budget: 0,
        }
    }

    #[test]
    fn minimal_clean_scenario_passes_every_oracle() {
        let sc = minimal();
        if let Err(f) = check_scenario(&sc) {
            panic!("minimal scenario failed: {f}");
        }
    }

    #[test]
    fn a_faulted_scenario_passes_every_oracle() {
        // One fixed fault-matrix scenario in-tree so the sweep binary is
        // not the only thing exercising the faulted differential path.
        let sc = Scenario {
            drop_prob: 0.02,
            error_prob: 0.02,
            rate_limit_prob: 0.01,
            fault_seed: 11,
            crawl_workers: 2,
            workers: 2,
            ..minimal()
        };
        if let Err(f) = check_scenario(&sc) {
            panic!("faulted scenario failed: {f}");
        }
    }

    #[test]
    fn crash_family_survives_a_torn_midpoint_kill() {
        // Family::Crash alone (the CI crash job's path): kill 40% into
        // the WAL with a torn tail, on the cheapest world.
        let sc = Scenario { kill_fraction: 0.4, torn_tail: true, ..minimal() };
        if let Err(f) = check_scenario_family(&sc, Family::Crash) {
            panic!("crash scenario failed: {f}");
        }
    }

    #[test]
    fn abuse_family_holds_under_a_seeded_slowloris() {
        // Family::Abuse alone (the CI abuse job's path): the slowloris
        // profile with two hostile conns on the cheapest world. This is
        // the profile with the richest defense accounting, so it doubles
        // as the in-tree proof that the hardened deadlines fire.
        let sc = Scenario { abuse_profile: 1, abuse_conns: 2, ..minimal() };
        if let Err(f) = check_scenario_family(&sc, Family::Abuse) {
            panic!("abuse scenario failed: {f}");
        }
    }

    #[test]
    fn longitudinal_family_holds_on_a_small_armed_scenario() {
        // Family::Longitudinal alone (the CI longitudinal job's path):
        // one epoch of evolution with a genuinely drifted mid-study
        // revision, on the cheapest world. Exercises all three legs —
        // sweep≡one-shot byte equality, drift detection with real
        // rescoring deltas, and the killed-sweep resume.
        let sc = Scenario { epochs: 1, drift: 0.2, kill_fraction: 0.5, ..minimal() };
        if let Err(f) = check_scenario_family(&sc, Family::Longitudinal) {
            panic!("longitudinal scenario failed: {f}");
        }
    }

    #[test]
    fn disarmed_longitudinal_family_is_a_no_op() {
        // epochs == 0 is the shrinker's off switch and the back-compat
        // default for old replays; it must short-circuit.
        let sc = minimal();
        assert_eq!(check_scenario_family(&sc, Family::Longitudinal), Ok(()));
    }

    #[test]
    fn scale_family_holds_at_a_tiny_batch_and_budget() {
        // Family::Scale alone (the CI scale job's path): a 64-comment
        // stream batch and a spill budget small enough to force real
        // run files, on the cheapest world. Exercises all three legs —
        // streamed≡materialized digests, spilled≡resident tables, and
        // the out-of-core≡in-memory study differential.
        let sc = Scenario { stream_batch: 64, spill_budget: 300, ..minimal() };
        if let Err(f) = check_scenario_family(&sc, Family::Scale) {
            panic!("scale scenario failed: {f}");
        }
    }

    #[test]
    fn disarmed_scale_family_is_a_no_op() {
        // stream_batch == 0 is the shrinker's off switch and the
        // back-compat default for old replays; it must short-circuit.
        let sc = minimal();
        assert_eq!(check_scenario_family(&sc, Family::Scale), Ok(()));
    }

    #[test]
    fn disarmed_abuse_family_is_a_no_op() {
        // abuse_conns == 0 is the shrinker's off switch and the
        // back-compat default for old replays; it must short-circuit.
        let sc = minimal();
        assert_eq!(check_scenario_family(&sc, Family::Abuse), Ok(()));
    }

    #[test]
    fn first_diff_line_pinpoints_divergence() {
        assert!(first_diff_line("a\nb\nc", "a\nX\nc").starts_with("line 2"));
        assert!(first_diff_line("a", "a\nb").contains("lengths differ"));
    }
}
