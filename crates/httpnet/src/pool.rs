//! A bounded worker thread pool for connection handling.

use crossbeam::channel::{bounded, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size thread pool. Jobs queue on a bounded channel (backpressure:
/// `execute` blocks when the queue is full). Dropping the pool joins all
/// workers after draining queued jobs.
///
/// A panicking job is confined to that job: the worker catches the
/// unwind, counts it (when the pool is instrumented), and keeps
/// draining. Before this guard a panic killed the worker thread, so
/// `size` panicking jobs silently serialized the pool and the next
/// `execute` after all workers died panicked on a dead channel.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool of `size` workers with a queue of `queue` jobs.
    pub fn new(size: usize, queue: usize) -> Self {
        Self::with_metrics(size, queue, None)
    }

    /// [`ThreadPool::new`], counting caught job panics on
    /// `metrics` under `pool.job_panics`.
    pub fn with_metrics(size: usize, queue: usize, metrics: Option<&obs::Registry>) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        let panics = metrics.map(|r| r.counter("pool.job_panics"));
        let (tx, rx) = bounded::<Job>(queue.max(1));
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                let panics = panics.clone();
                std::thread::Builder::new()
                    .name(format!("httpnet-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                if let Some(c) = &panics {
                                    c.inc();
                                }
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Self { tx: Some(tx), workers }
    }

    /// Submit a job; blocks if the queue is full.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(f))
            .expect("workers alive");
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4, 16);
            for _ in 0..100 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins after draining.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn parallelism_actually_happens() {
        use std::sync::Barrier;
        let barrier = Arc::new(Barrier::new(4));
        let pool = ThreadPool::new(4, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let b = barrier.clone();
            let d = done.clone();
            pool.execute(move || {
                // All four must rendezvous — impossible without 4 threads.
                b.wait();
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        ThreadPool::new(0, 1);
    }

    #[test]
    fn panicking_jobs_do_not_shrink_the_pool() {
        // Regression: a job panic used to kill its worker thread. With a
        // 2-worker pool, two panicking jobs left zero workers, the queue
        // backed up, and `execute` itself panicked on the dead channel.
        let registry = obs::Registry::new();
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::with_metrics(2, 4, Some(&registry));
            // More panics than workers, interleaved with real jobs.
            for round in 0..10 {
                pool.execute(move || panic!("poisoned job {round}"));
                for _ in 0..10 {
                    let d = done.clone();
                    pool.execute(move || {
                        d.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }
        }
        assert_eq!(done.load(Ordering::SeqCst), 100, "jobs after panics must still run");
        assert_eq!(
            registry.snapshot().counter("pool.job_panics"),
            Some(10),
            "every confined panic is visible in the metrics registry"
        );
    }

    #[test]
    fn parallelism_survives_panics() {
        // All four workers must still rendezvous *after* each has had a
        // panicking job — proof no worker thread died.
        use std::sync::Barrier;
        let pool = ThreadPool::new(4, 8);
        for _ in 0..4 {
            pool.execute(|| panic!("one per worker, probabilistically"));
        }
        let barrier = Arc::new(Barrier::new(4));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let b = barrier.clone();
            let d = done.clone();
            pool.execute(move || {
                b.wait();
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
