//! Snapshot files: `snap_{:08}.snap` (named by the WAL watermark they
//! cover), a fixed 64-byte header (`DSRSNPv1` magic, format version,
//! section count, covers-through watermark, store UUID, 24 reserved
//! zero bytes) followed by sections `[tag u32][len u64][crc u32][payload]`
//! with the CRC32 over `tag_le ++ payload`. Written whole via the
//! temp-file + rename + fsync discipline, so a crash mid-write never
//! leaves a torn snapshot behind.

use crate::{corrupt, crc::crc32, fsutil, FORMAT_VERSION, SNAP_MAGIC};
use std::io;
use std::path::{Path, PathBuf};

/// Bytes in a snapshot header.
pub(crate) const HEADER_LEN: usize = 64;
/// Bytes in a section header (tag + len + crc).
const SECTION_LEN: usize = 16;

fn snapshot_path(dir: &Path, watermark: u64) -> PathBuf {
    dir.join(format!("snap_{watermark:08}.snap"))
}

/// All snapshots in `dir`, sorted by covered watermark.
pub(crate) fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if let Some(num) = name
            .strip_prefix("snap_")
            .and_then(|rest| rest.strip_suffix(".snap"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((num, path));
        }
    }
    out.sort_unstable_by_key(|(num, _)| *num);
    Ok(out)
}

/// A fully validated snapshot file.
pub(crate) struct SnapshotData {
    pub(crate) uuid: [u8; 16],
    pub(crate) covers_through: u64,
    pub(crate) sections: Vec<(u32, Vec<u8>)>,
}

/// Serialize and durably write a snapshot covering WAL segments
/// `1..=watermark`. Returns the file size in bytes.
pub(crate) fn write_snapshot(
    dir: &Path,
    watermark: u64,
    uuid: [u8; 16],
    sections: &[(u32, Vec<u8>)],
) -> io::Result<u64> {
    let mut buf = Vec::with_capacity(
        HEADER_LEN + sections.iter().map(|(_, p)| SECTION_LEN + p.len()).sum::<usize>(),
    );
    buf.extend_from_slice(&SNAP_MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    buf.extend_from_slice(&watermark.to_le_bytes());
    buf.extend_from_slice(&uuid);
    buf.extend_from_slice(&[0u8; 24]);
    for (tag, payload) in sections {
        buf.extend_from_slice(&tag.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc32(&[&tag.to_le_bytes(), payload]).to_le_bytes());
        buf.extend_from_slice(payload);
    }
    fsutil::atomic_write_file(&snapshot_path(dir, watermark), &buf)?;
    Ok(buf.len() as u64)
}

/// Read and strictly validate the snapshot at `path`; `num` is the
/// watermark its file name claims. Snapshots are written atomically, so
/// unlike the WAL tail there is no torn state to tolerate — any
/// anomaly is corruption.
pub(crate) fn read_snapshot(path: &Path, num: u64) -> io::Result<SnapshotData> {
    let bytes = std::fs::read(path)?;
    let name = path.display();
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!("{name}: short snapshot header ({} bytes)", bytes.len())));
    }
    if bytes[..8] != SNAP_MAGIC {
        return Err(corrupt(format!("{name}: bad snapshot magic")));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "{name}: unsupported snapshot format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let covers_through = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if covers_through != num {
        return Err(corrupt(format!(
            "{name}: header covers through {covers_through} but the file name says {num}"
        )));
    }
    let uuid: [u8; 16] = bytes[24..40].try_into().unwrap();

    let mut sections = Vec::with_capacity(section_count as usize);
    let mut offset = HEADER_LEN;
    for i in 0..section_count {
        let header = bytes
            .get(offset..offset + SECTION_LEN)
            .ok_or_else(|| corrupt(format!("{name}: truncated header for section {i}")))?;
        let tag = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let len = u64::from_le_bytes(header[4..12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let payload = bytes
            .get(offset + SECTION_LEN..offset + SECTION_LEN + len)
            .ok_or_else(|| corrupt(format!("{name}: truncated payload for section {i}")))?;
        if crc32(&[&tag.to_le_bytes(), payload]) != crc {
            return Err(corrupt(format!("{name}: CRC mismatch in section {i}")));
        }
        sections.push((tag, payload.to_vec()));
        offset += SECTION_LEN + len;
    }
    if offset != bytes.len() {
        return Err(corrupt(format!(
            "{name}: {} trailing bytes after the last section",
            bytes.len() - offset
        )));
    }
    Ok(SnapshotData { uuid, covers_through, sections })
}
