#![warn(missing_docs)]
//! Text processing primitives for comment classification (§3.5).
//!
//! The paper's classification stack tokenizes each comment, performs
//! stemming, matches against a hate dictionary, builds 1/2-gram features
//! for an SVM, and identifies comment language with `langid.py`. This crate
//! provides those building blocks, implemented from scratch:
//!
//! * [`tokenize()`] — word tokenization with URL/mention/punctuation handling,
//! * [`clean`] — the normalization pipeline applied before featurization,
//! * [`stem`] — a full Porter stemmer,
//! * [`ngram`] — word and character n-gram extraction,
//! * [`langid`] — a character-trigram naive-Bayes language identifier
//!   (stand-in for `langid.py`), sharing its per-language seed vocabulary
//!   with the synthetic text generator so the classifier genuinely
//!   recognizes generated text rather than being told its label.

pub mod clean;
pub mod langid;
pub mod ngram;
pub mod stem;
pub mod tokenize;

pub use clean::clean_text;
pub use langid::{detect, Lang, LangModel};
pub use ngram::{char_ngrams, word_ngrams, word_ngrams_up_to};
pub use stem::porter_stem;
pub use tokenize::{tokenize, tokenize_stemmed};
