//! Closed-loop load generator for the conditional-request serving layer
//! (the `BENCH_PR5.json` artifact).
//!
//! [`run`] drives a front with `threads` closed-loop workers — each
//! issues its next request only after the previous one completes — and
//! reports throughput plus exact latency percentiles. Two regimes:
//!
//! * [`Mode::Uncached`] — every request carries a unique cache-busting
//!   query, so the server renders every response from scratch and no
//!   validator ever matches. This is the pre-PR cost of a request.
//! * [`Mode::Cached`] — a fixed working set fetched through a shared
//!   client [`RevalidationCache`]: after the first fetch of each target,
//!   repeats send `If-None-Match` and ride the `304` fast path (a hash
//!   compare and ~100 wire bytes instead of a render and a full body).
//!
//! The `loadgen` binary runs both regimes against the same services and
//! self-validates that cached throughput strictly beats uncached.

use httpnet::{Client, ConnPool, RevalidationCache};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Load shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Closed-loop worker threads.
    pub threads: usize,
    /// Requests each worker issues inside the measured window.
    pub requests_per_thread: usize,
    /// Requests each worker issues *before* the measured window, to
    /// reach steady state: connections established, server and
    /// revalidation caches filled. Without this, cold-cache fill lands
    /// inside the measured window and skews cached-regime percentiles
    /// (BENCH_PR5's cached p99 exceeded its uncached p99 exactly this
    /// way).
    pub warmup_per_thread: usize,
    /// Keep-alive pool shared by the workers; inspect
    /// [`ConnPool::stats`] afterwards for reuse/open/evicted accounting.
    pub pool: ConnPool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            requests_per_thread: 250,
            warmup_per_thread: 0,
            pool: ConnPool::default(),
        }
    }
}

/// Serving regime under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unique query string per request: every response fully rendered.
    Uncached,
    /// Fixed working set through a shared revalidation cache.
    Cached,
}

/// One regime's measured outcome.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// Requests completed successfully (2xx, or 304-resolved).
    pub requests: u64,
    /// Requests that errored or returned non-success (expected 0).
    pub failures: u64,
    /// Wall-clock for the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Successful requests per second.
    pub req_per_sec: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Requests resolved client-side from a `304 Not Modified`.
    pub not_modified: u64,
}

/// Drive `targets` on the server at `addr` under the given regime.
/// Workers walk the target list round-robin from staggered offsets, so
/// every target is exercised by every thread.
///
/// When [`LoadConfig::warmup_per_thread`] is nonzero, every worker first
/// issues that many unmeasured requests; all workers then rendezvous at
/// a barrier, the clock starts, and only steady-state requests are
/// measured. `not_modified` likewise counts only the measured window.
pub fn run(addr: SocketAddr, targets: &[String], cfg: &LoadConfig, mode: Mode) -> LoadSummary {
    assert!(!targets.is_empty(), "loadgen needs at least one target");
    let threads = cfg.threads.max(1);
    let bust = AtomicU64::new(0);
    let reval = RevalidationCache::new(targets.len() * 4);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let failures = AtomicU64::new(0);

    // warmed: workers done with warmup. measured: clock started, the
    // measured-window baseline counters are sampled in between.
    let warmed = Barrier::new(threads + 1);
    let measured = Barrier::new(threads + 1);
    let mut before_revalidated = reval.stats().revalidated;
    let mut started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let reval = reval.clone();
            let (bust, latencies, failures) = (&bust, &latencies, &failures);
            let (warmed, measured) = (&warmed, &measured);
            scope.spawn(move || {
                let mut builder =
                    Client::builder(addr).keep_alive(true).pool(cfg.pool.clone());
                if mode == Mode::Cached {
                    builder = builder.revalidation_cache(reval);
                }
                let mut client = builder.build();
                for i in 0..cfg.warmup_per_thread {
                    let base = &targets[(t + i) % targets.len()];
                    let target = match mode {
                        Mode::Cached => base.clone(),
                        // Distinct bust keys so warmup stays render-cold
                        // without consuming measured-window bust numbers.
                        Mode::Uncached => format!("{base}?warm={t}x{i}"),
                    };
                    let _ = client.get_keep_alive(&target);
                }
                warmed.wait();
                measured.wait();
                let mut local = Vec::with_capacity(cfg.requests_per_thread);
                for i in 0..cfg.requests_per_thread {
                    let base = &targets[(t + i) % targets.len()];
                    let target = match mode {
                        Mode::Cached => base.clone(),
                        Mode::Uncached => {
                            format!("{base}?bust={}", bust.fetch_add(1, Ordering::Relaxed))
                        }
                    };
                    let sent = Instant::now();
                    match client.get_keep_alive(&target) {
                        Ok(resp) if resp.status.is_success() => {
                            local.push(sent.elapsed().as_micros() as u64);
                        }
                        _ => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
        warmed.wait();
        before_revalidated = reval.stats().revalidated;
        started = Instant::now();
        measured.wait();
    });
    let wall = started.elapsed();

    let mut lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    lat.sort_unstable();
    let pct = |q: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        lat[((lat.len() - 1) as f64 * q).round() as usize]
    };
    let requests = lat.len() as u64;
    let wall_ms = wall.as_secs_f64() * 1e3;
    LoadSummary {
        requests,
        failures: failures.load(Ordering::Relaxed),
        wall_ms,
        req_per_sec: if wall_ms > 0.0 { requests as f64 / (wall_ms / 1e3) } else { 0.0 },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        not_modified: reval.stats().revalidated.saturating_sub(before_revalidated),
    }
}

/// Shape of a pipelined transport run (see [`run_pipelined`]).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Worker threads, one pipelined connection each.
    pub threads: usize,
    /// Requests written back-to-back before reading any response.
    pub batch: usize,
    /// Measured batches per thread.
    pub batches_per_thread: usize,
    /// Unmeasured batches per thread before the measured window.
    pub warmup_batches: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self { threads: 2, batch: 64, batches_per_thread: 200, warmup_batches: 4 }
    }
}

/// Drive `target` with HTTP/1.1 pipelining: each worker keeps one
/// connection and alternates between one vectored burst of `batch`
/// requests and reading the `batch` in-order responses. This measures
/// the transport itself — per-request syscall and connect overhead is
/// amortized away, so throughput is bounded by request parsing, handler
/// dispatch, and response serialization on the server's reactors.
///
/// Per-request latency is the batch round-trip divided by the batch
/// size (requests inside a batch are not individually timed).
pub fn run_pipelined(addr: SocketAddr, target: &str, cfg: &PipelineConfig) -> LoadSummary {
    use std::io::{BufReader, Write};
    let threads = cfg.threads.max(1);
    let batch = cfg.batch.max(1);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let failures = AtomicU64::new(0);
    let ready = Barrier::new(threads + 1);
    let mut started = Instant::now();

    let one = format!("GET {target} HTTP/1.1\r\nHost: sim.local\r\n\r\n");
    let burst: Vec<u8> = one.as_bytes().repeat(batch);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (latencies, failures, ready, burst) = (&latencies, &failures, &ready, &burst);
            scope.spawn(move || {
                let exchange = |conn: &mut BufReader<std::net::TcpStream>| -> Result<(), ()> {
                    conn.get_mut().write_all(burst).map_err(|_| ())?;
                    for _ in 0..batch {
                        let resp = httpnet::http::read_response(conn).map_err(|_| ())?;
                        if !resp.status.is_success() {
                            return Err(());
                        }
                    }
                    Ok(())
                };
                let conn = std::net::TcpStream::connect(addr).and_then(|s| {
                    s.set_nodelay(true)?;
                    s.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
                    Ok(BufReader::new(s))
                });
                let Ok(mut conn) = conn else {
                    failures.fetch_add((batch * cfg.batches_per_thread) as u64, Ordering::Relaxed);
                    ready.wait();
                    return;
                };
                for _ in 0..cfg.warmup_batches {
                    let _ = exchange(&mut conn);
                }
                ready.wait();
                let mut local = Vec::with_capacity(cfg.batches_per_thread * batch);
                for _ in 0..cfg.batches_per_thread {
                    let sent = Instant::now();
                    match exchange(&mut conn) {
                        Ok(()) => {
                            let per_req = (sent.elapsed().as_micros() as u64) / batch as u64;
                            local.extend(std::iter::repeat_n(per_req, batch));
                        }
                        Err(()) => {
                            failures.fetch_add(batch as u64, Ordering::Relaxed);
                            break; // connection state is unknown after a failure
                        }
                    }
                }
                latencies.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
        ready.wait();
        started = Instant::now();
    });
    let wall = started.elapsed();

    let mut lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    lat.sort_unstable();
    let pct = |q: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        lat[((lat.len() - 1) as f64 * q).round() as usize]
    };
    let requests = lat.len() as u64;
    let wall_ms = wall.as_secs_f64() * 1e3;
    LoadSummary {
        requests,
        failures: failures.load(Ordering::Relaxed),
        wall_ms,
        req_per_sec: if wall_ms > 0.0 { requests as f64 / (wall_ms / 1e3) } else { 0.0 },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        not_modified: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use synth::config::Scale;
    use synth::WorldConfig;

    #[test]
    fn cached_load_engages_the_fast_path() {
        let cfg = WorldConfig {
            seed: 0xBEEF,
            scale: Scale::Custom(0.001),
            ..WorldConfig::small()
        };
        let (world, _) = synth::generate(&cfg);
        let world = Arc::new(world);
        let registry = obs::Registry::new();
        let fronts = webfront::SimFronts::with_registry(world.clone(), &registry);
        let services =
            webfront::SimServices::start_with(fronts, crawler::default_server_config())
                .expect("services start");

        let mut names: Vec<String> =
            world.dissenter_users().map(|i| world.user(i).username.clone()).collect();
        names.sort_unstable();
        let targets: Vec<String> =
            names.iter().take(4).map(|n| format!("/user/{n}")).collect();
        assert!(!targets.is_empty(), "world has dissenter users");

        let load = LoadConfig { threads: 2, requests_per_thread: 20, ..Default::default() };
        let summary = run(services.dissenter.addr(), &targets, &load, Mode::Cached);
        assert_eq!(summary.failures, 0, "loopback load must not fail");
        assert_eq!(summary.requests, 40);
        assert!(
            summary.not_modified > 0,
            "repeat fetches of a fixed working set must revalidate: {summary:?}"
        );
        let snap = registry.snapshot();
        let hits = snap.counter("cache.hits").unwrap_or(0);
        let ratio = (summary.not_modified + hits) as f64 / summary.requests as f64;
        assert!(ratio > 0.0, "cache-hit ratio must be nonzero (hits {hits}, {summary:?})");
    }

    #[test]
    fn warmup_is_unmeasured_and_reaches_steady_state() {
        let cfg = WorldConfig {
            seed: 0xBEEF,
            scale: Scale::Custom(0.001),
            ..WorldConfig::small()
        };
        let (world, _) = synth::generate(&cfg);
        let world = Arc::new(world);
        let services =
            webfront::SimServices::start(world.clone(), crawler::default_server_config())
                .expect("services start");
        let mut names: Vec<String> =
            world.dissenter_users().map(|i| world.user(i).username.clone()).collect();
        names.sort_unstable();
        let targets: Vec<String> = names.iter().take(3).map(|n| format!("/user/{n}")).collect();

        let load = LoadConfig {
            threads: 2,
            requests_per_thread: 15,
            warmup_per_thread: 10,
            ..Default::default()
        };
        let summary = run(services.dissenter.addr(), &targets, &load, Mode::Cached);
        assert_eq!(summary.failures, 0);
        assert_eq!(summary.requests, 30, "warmup requests must not be counted");
        // Warmup already fetched every target on both workers, so every
        // measured request revalidates: steady state, no cold-fill skew.
        assert_eq!(
            summary.not_modified, summary.requests,
            "measured window must be pure steady-state revalidation: {summary:?}"
        );
        let stats = load.pool.stats();
        assert!(stats.open <= 2 + 1, "steady keep-alive load opens ~one conn per worker");
        assert!(stats.reuse > 0, "workers must ride pooled connections");
    }

    #[test]
    fn pipelined_transport_round_trips_in_order() {
        use httpnet::{Handler, Request, Response, Server, ServerConfig};
        let handler: Arc<dyn Handler> =
            Arc::new(|req: &Request| Response::html(format!("t:{}", req.path())));
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let cfg = PipelineConfig {
            threads: 2,
            batch: 16,
            batches_per_thread: 6,
            warmup_batches: 1,
        };
        let summary = run_pipelined(server.addr(), "/t", &cfg);
        assert_eq!(summary.failures, 0, "{summary:?}");
        assert_eq!(summary.requests, 2 * 16 * 6);
        // warmup (2×16) + measured (2×96) all hit the server
        assert_eq!(server.requests_served(), 2 * 16 * 7);
    }

    #[test]
    fn uncached_load_never_revalidates() {
        let cfg = WorldConfig {
            seed: 0xBEEF,
            scale: Scale::Custom(0.001),
            ..WorldConfig::small()
        };
        let (world, _) = synth::generate(&cfg);
        let world = Arc::new(world);
        let services =
            webfront::SimServices::start(world.clone(), crawler::default_server_config())
                .expect("services start");
        let name = world
            .dissenter_users()
            .map(|i| world.user(i).username.clone())
            .min()
            .expect("a dissenter user");
        let targets = vec![format!("/user/{name}")];
        let load = LoadConfig { threads: 2, requests_per_thread: 10, ..Default::default() };
        let summary = run(services.dissenter.addr(), &targets, &load, Mode::Uncached);
        assert_eq!(summary.failures, 0);
        assert_eq!(summary.not_modified, 0, "cache-busted requests must never 304");
    }
}
