//! A compact directed graph over dense `u32` node indices.
//!
//! Nodes are externally mapped (the analysis layer maps author-ids to
//! indices); the graph itself stores adjacency as sorted vectors for
//! deterministic iteration and O(log d) edge queries.

/// A directed graph. Edge `(u, v)` means "u follows v".
///
/// ```
/// let mut g = graph::DiGraph::with_nodes(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 0);
/// assert!(g.mutual(0, 1));
/// assert_eq!(g.isolated_nodes(), vec![2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    out: Vec<Vec<u32>>,
    inn: Vec<Vec<u32>>,
    edges: usize,
}

impl DiGraph {
    /// An empty graph with `n` nodes (indices `0..n`).
    pub fn with_nodes(n: usize) -> Self {
        Self { out: vec![Vec::new(); n], inn: vec![Vec::new(); n], edges: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Ensure node `v` exists, growing the graph if needed.
    pub fn ensure_node(&mut self, v: u32) {
        let need = v as usize + 1;
        if need > self.out.len() {
            self.out.resize(need, Vec::new());
            self.inn.resize(need, Vec::new());
        }
    }

    /// Add edge `u → v` (u follows v). Duplicate edges and self-loops are
    /// ignored (a user cannot follow themselves on Gab).
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        self.ensure_node(u.max(v));
        let out = &mut self.out[u as usize];
        match out.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                out.insert(pos, v);
                let inn = &mut self.inn[v as usize];
                let ipos = inn.binary_search(&u).unwrap_err();
                inn.insert(ipos, u);
                self.edges += 1;
                true
            }
        }
    }

    /// Does edge `u → v` exist?
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.out
            .get(u as usize)
            .map(|o| o.binary_search(&v).is_ok())
            .unwrap_or(false)
    }

    /// Users `u` follows.
    pub fn following(&self, u: u32) -> &[u32] {
        self.out.get(u as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Users following `u`.
    pub fn followers(&self, u: u32) -> &[u32] {
        self.inn.get(u as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Out-degree (following count).
    pub fn out_degree(&self, u: u32) -> usize {
        self.following(u).len()
    }

    /// In-degree (follower count).
    pub fn in_degree(&self, u: u32) -> usize {
        self.followers(u).len()
    }

    /// All in-degrees, indexed by node.
    pub fn in_degrees(&self) -> Vec<u64> {
        (0..self.node_count() as u32).map(|v| self.in_degree(v) as u64).collect()
    }

    /// All out-degrees, indexed by node.
    pub fn out_degrees(&self) -> Vec<u64> {
        (0..self.node_count() as u32).map(|v| self.out_degree(v) as u64).collect()
    }

    /// Are `u` and `v` mutual followers?
    pub fn mutual(&self, u: u32, v: u32) -> bool {
        self.has_edge(u, v) && self.has_edge(v, u)
    }

    /// Nodes with neither followers nor followings — the paper found
    /// 15,702 such isolated Dissenter users (§4.5.1).
    pub fn isolated_nodes(&self) -> Vec<u32> {
        (0..self.node_count() as u32)
            .filter(|&v| self.in_degree(v) == 0 && self.out_degree(v) == 0)
            .collect()
    }

    /// The undirected "mutual-follow" graph as adjacency lists: `u ~ v` iff
    /// both directed edges exist. Used by the hateful-core extraction.
    pub fn mutual_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.node_count()];
        for u in 0..self.node_count() as u32 {
            for &v in self.following(u) {
                if v > u && self.has_edge(v, u) {
                    adj[u as usize].push(v);
                    adj[v as usize].push(u);
                }
            }
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let mut g = DiGraph::with_nodes(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1), "duplicate rejected");
        assert!(!g.add_edge(2, 2), "self-loop rejected");
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn grows_on_demand() {
        let mut g = DiGraph::default();
        g.add_edge(5, 9);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.out_degree(5), 1);
        assert_eq!(g.in_degree(9), 1);
    }

    #[test]
    fn degrees_and_neighbors() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(3, 0);
        assert_eq!(g.following(0), &[1, 2]);
        assert_eq!(g.followers(0), &[3]);
        assert_eq!(g.out_degrees(), vec![2, 0, 0, 1]);
        assert_eq!(g.in_degrees(), vec![1, 1, 1, 0]);
    }

    #[test]
    fn mutual_detection() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, 1);
        assert!(!g.mutual(0, 1));
        g.add_edge(1, 0);
        assert!(g.mutual(0, 1));
        assert!(g.mutual(1, 0));
    }

    #[test]
    fn isolated_nodes_found() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        assert_eq!(g.isolated_nodes(), vec![2, 3]);
    }

    #[test]
    fn mutual_adjacency_symmetric() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2); // one-way: excluded
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        let adj = g.mutual_adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0]);
        assert_eq!(adj[2], vec![3]);
        assert_eq!(adj[3], vec![2]);
    }

    #[test]
    fn out_of_range_queries_are_empty() {
        let g = DiGraph::with_nodes(1);
        assert!(g.following(99).is_empty());
        assert!(!g.has_edge(99, 0));
    }
}
