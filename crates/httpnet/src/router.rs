//! Path routing with `:param` captures.
//!
//! The simulated services expose the endpoints the paper names:
//! `/api/v1/accounts/:id`, `/user/:username`, `/comment/:cid`,
//! `/discussion/begin`, … — a tiny router keeps handler code flat.

use crate::http::{Request, Response};
use std::collections::HashMap;

/// Captured path parameters.
#[derive(Debug, Clone, Default)]
pub struct Params(HashMap<String, String>);

impl Params {
    /// Value of a capture.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }
}

type RouteFn = Box<dyn Fn(&Request, &Params) -> Response + Send + Sync>;

struct Route {
    method: String,
    segments: Vec<Segment>,
    handler: RouteFn,
}

enum Segment {
    Literal(String),
    Param(String),
    /// `*rest` — captures the remainder of the path (may contain slashes).
    Wildcard(String),
}

/// A method+path router.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Router({} routes)", self.routes.len())
    }
}

impl Router {
    /// Empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a route. Patterns: literal segments, `:name` captures one
    /// segment, `*name` captures the rest of the path.
    pub fn route(
        &mut self,
        method: &str,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        let segments = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_owned())
                } else if let Some(name) = s.strip_prefix('*') {
                    Segment::Wildcard(name.to_owned())
                } else {
                    Segment::Literal(s.to_owned())
                }
            })
            .collect();
        self.routes.push(Route { method: method.to_owned(), segments, handler: Box::new(handler) });
        self
    }

    /// Dispatch a request; 404 when nothing matches.
    pub fn dispatch(&self, req: &Request) -> Response {
        let path_segments: Vec<&str> = req
            .path()
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        'routes: for route in &self.routes {
            if !route.method.eq_ignore_ascii_case(&req.method) {
                continue;
            }
            let mut params = Params::default();
            let mut i = 0;
            for seg in &route.segments {
                match seg {
                    Segment::Literal(lit) => {
                        if path_segments.get(i) != Some(&lit.as_str()) {
                            continue 'routes;
                        }
                        i += 1;
                    }
                    Segment::Param(name) => {
                        let Some(v) = path_segments.get(i) else {
                            continue 'routes;
                        };
                        params.0.insert(name.clone(), (*v).to_owned());
                        i += 1;
                    }
                    Segment::Wildcard(name) => {
                        let rest = path_segments[i.min(path_segments.len())..].join("/");
                        params.0.insert(name.clone(), rest);
                        i = path_segments.len();
                    }
                }
            }
            if i != path_segments.len() {
                continue;
            }
            return (route.handler)(req, &params);
        }
        Response::not_found()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;

    fn get(path: &str) -> Request {
        Request::get(path)
    }

    fn router() -> Router {
        let mut r = Router::new();
        r.route("GET", "/", |_, _| Response::html("home".into()));
        r.route("GET", "/user/:name", |_, p| {
            Response::html(format!("user={}", p.get("name").unwrap()))
        });
        r.route("GET", "/api/v1/accounts/:id", |_, p| {
            Response::json(format!("{{\"id\":{}}}", p.get("id").unwrap()))
        });
        r.route("GET", "/files/*path", |_, p| {
            Response::html(format!("path={}", p.get("path").unwrap()))
        });
        r.route("POST", "/submit", |req, _| {
            Response::html(format!("got {} bytes", req.body.len()))
        });
        r
    }

    #[test]
    fn literal_and_param_matching() {
        let r = router();
        assert_eq!(r.dispatch(&get("/")).text(), "home");
        assert_eq!(r.dispatch(&get("/user/a")).text(), "user=a");
        assert_eq!(r.dispatch(&get("/api/v1/accounts/42")).text(), "{\"id\":42}");
    }

    #[test]
    fn wildcard_captures_rest() {
        let r = router();
        assert_eq!(r.dispatch(&get("/files/a/b/c.txt")).text(), "path=a/b/c.txt");
    }

    #[test]
    fn method_mismatch_404s() {
        let r = router();
        assert_eq!(r.dispatch(&get("/submit")).status, Status::NOT_FOUND);
    }

    #[test]
    fn unknown_path_404s() {
        let r = router();
        assert_eq!(r.dispatch(&get("/nope/nothing")).status, Status::NOT_FOUND);
        assert_eq!(r.dispatch(&get("/user/a/extra")).status, Status::NOT_FOUND);
        assert_eq!(r.dispatch(&get("/user")).status, Status::NOT_FOUND);
    }

    #[test]
    fn query_strings_ignored_for_matching() {
        let r = router();
        assert_eq!(r.dispatch(&get("/user/bob?tab=comments")).text(), "user=bob");
    }

    #[test]
    fn post_route_sees_body() {
        let r = router();
        let mut req = get("/submit");
        req.method = "POST".into();
        req.body = b"hello".to_vec();
        assert_eq!(r.dispatch(&req).text(), "got 5 bytes");
    }
}
