//! Durable crawl journaling — the crash story for paper-duration crawls.
//!
//! The paper's mirror took a 14-month longitudinal crawl; a process
//! that long *will* be killed mid-flight. This module wires the crawl
//! through [`durable`]'s segmented WAL + snapshot engine so a killed
//! crawl resumes instead of restarting:
//!
//! * after every completed phase, [`Journal::commit_phase`] appends the
//!   phase's store mutations as WAL records (entity upserts, the shadow
//!   validation counters), then any newly cached ETag representations
//!   (so `If-None-Match` revalidation survives the crash), then a
//!   checkpoint record, and syncs — the phase is durable once the
//!   checkpoint is;
//! * every [`DurableConfig::snapshot_every_phases`] checkpoints the full
//!   store is snapshotted and covered WAL segments are compacted away;
//! * [`Journal::recover`] rebuilds the store from the latest snapshot
//!   plus the WAL tail. Records after the last checkpoint belong to an
//!   interrupted phase boundary and are **discarded** (staged but never
//!   applied): the interrupted phase re-runs in full on resume, so
//!   applying a partial batch would double its vector entities. The
//!   resume path first appends a rollback marker making that discard
//!   durable — replaying the same WAL twice stays idempotent without
//!   any dedup heuristics;
//! * ETag records are the exception: they are applied immediately even
//!   when uncheckpointed, because a cached representation is
//!   content-derived and only makes the re-run cheaper (`304`s instead
//!   of full bodies — the `http.<service>.not_modified` counters).
//!
//! Entity payloads reuse [`crate::persist`]'s JSON codecs, so a WAL
//! record, a snapshot section, and an archive line are the same bytes
//! per entity. Crawl statistics are not journaled — they describe a
//! crawl *run*, not the mirror, and a resumed run legitimately has
//! different stats.

use crate::persist;
use crate::resilience::Phase;
use crate::store::CrawlStore;
use durable::DurableStore;
use httpnet::{Headers, Response, Status};
use jsonlite::Value;
use std::collections::HashSet;
use std::io;
use std::path::Path;

pub use durable::{is_kill_error, Failpoint, Retention};

// WAL record tags (doubling as snapshot section tags — same payload
// encodings, so one applier serves both).
const TAG_GAB: u32 = 1;
const TAG_USERNAME: u32 = 2;
const TAG_USER: u32 = 3;
const TAG_URL: u32 = 4;
const TAG_COMMENT: u32 = 5;
const TAG_SHADOW: u32 = 6;
const TAG_YOUTUBE: u32 = 7;
const TAG_EDGE: u32 = 8;
const TAG_REDDIT: u32 = 9;
/// Phase boundary: payload is the 1-byte phase index. Everything staged
/// since the previous checkpoint is applied atomically.
const TAG_CHECKPOINT: u32 = 100;
/// A cached `(key, ETag'd 200)` pair from the revalidation cache.
const TAG_REVAL: u32 = 101;
/// Written by resume before re-running the interrupted phase: staged
/// records before this marker are discarded on every future replay.
const TAG_ROLLBACK: u32 = 102;

fn archive_name(tag: u32) -> &'static str {
    match tag {
        TAG_GAB => "gab_accounts.jsonl",
        TAG_USER => "users.jsonl",
        TAG_URL => "urls.jsonl",
        TAG_COMMENT => "comments.jsonl",
        TAG_YOUTUBE => "youtube.jsonl",
        TAG_EDGE => "follow_edges.jsonl",
        TAG_REDDIT => "reddit.jsonl",
        other => unreachable!("tag {other} has no archive file"),
    }
}

fn bad_data(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

/// Durable-crawl tuning, layered over [`durable::StoreOptions`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// WAL segment rotation threshold.
    pub segment_max_bytes: u64,
    /// Snapshot (and compact) every N phase checkpoints. A snapshot
    /// serializes the full store, so its cost is O(state) while the
    /// alternative — replaying more WAL on recovery — is cheap
    /// (recovery is read-dominated, no network); the default snapshots
    /// once mid-crawl rather than at every other boundary.
    pub snapshot_every_phases: usize,
    /// Compaction policy.
    pub retention: Retention,
    /// Seeded kill point for crash testing (see [`Failpoint`]).
    pub failpoint: Failpoint,
}

impl Default for DurableConfig {
    fn default() -> Self {
        Self {
            segment_max_bytes: 4 * 1024 * 1024,
            snapshot_every_phases: 4,
            retention: Retention::KeepLast(1),
            failpoint: Failpoint::default(),
        }
    }
}

impl DurableConfig {
    fn to_options(&self, metrics: obs::Registry) -> durable::StoreOptions {
        durable::StoreOptions {
            segment_max_bytes: self.segment_max_bytes,
            retention: self.retention,
            failpoint: self.failpoint,
            metrics: Some(metrics),
        }
    }
}

/// Everything [`Journal::recover`] rebuilt from disk.
#[derive(Debug)]
pub struct RecoveredState {
    /// The store as of the last durable checkpoint.
    pub store: CrawlStore,
    /// Phases completed (a prefix of [`Phase::ALL`]); resume re-runs the
    /// rest.
    pub completed: usize,
    /// Recovered revalidation-cache entries, in journal order — feed
    /// them back via `RevalidationCache::store`.
    pub reval_entries: Vec<(String, Response)>,
    /// How many of those landed after the last checkpoint (the
    /// interrupted phase's partial progress; resume's `304` floor).
    pub uncheckpointed_reval: usize,
    /// A torn WAL tail was truncated away during recovery.
    pub torn_tail_recovered: bool,
}

/// A durable crawl journal rooted at one directory.
#[derive(Debug)]
pub struct Journal {
    store: DurableStore,
    /// Keys already journaled as [`TAG_REVAL`] records, so each cached
    /// representation is written once (ETags are content-derived; a key
    /// never re-tags under a static world).
    journaled_reval: HashSet<String>,
    completed: usize,
    snapshot_every: usize,
}

impl Journal {
    /// Start a fresh journal in `dir`. Fails if one already exists.
    pub fn create(dir: &Path, cfg: &DurableConfig, metrics: obs::Registry) -> io::Result<Self> {
        let store = DurableStore::create(dir, cfg.to_options(metrics))?;
        Ok(Self {
            store,
            journaled_reval: HashSet::new(),
            completed: 0,
            snapshot_every: cfg.snapshot_every_phases.max(1),
        })
    }

    /// Rebuild crawl state from `dir`: latest snapshot, then the WAL
    /// tail with checkpoint/rollback staging semantics (module docs).
    pub fn recover(
        dir: &Path,
        cfg: &DurableConfig,
        metrics: obs::Registry,
    ) -> io::Result<(Self, RecoveredState)> {
        let (durable_store, recovered) = DurableStore::open(dir, cfg.to_options(metrics))?;

        let mut store = CrawlStore::default();
        let mut completed = 0usize;
        let mut reval_entries: Vec<(String, Response)> = Vec::new();

        if let Some(snap) = &recovered.snapshot {
            for (tag, payload) in &snap.sections {
                match *tag {
                    TAG_CHECKPOINT => {
                        completed = *payload.first().ok_or_else(|| {
                            bad_data("snapshot: empty completed-count section")
                        })? as usize;
                    }
                    TAG_REVAL => {
                        let mut rest = payload.as_slice();
                        while !rest.is_empty() {
                            let (entry, len) = decode_reval(rest)?;
                            reval_entries.push(entry);
                            rest = &rest[len..];
                        }
                    }
                    tag => apply_record(&mut store, tag, payload)?,
                }
            }
        }

        // WAL tail: stage entity records, apply them only at their
        // checkpoint, discard them at a rollback marker. ETag records
        // apply immediately (module docs).
        let mut pending: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut uncheckpointed_reval = 0usize;
        for rec in &recovered.records {
            match rec.tag {
                TAG_CHECKPOINT => {
                    let idx = *rec.payload.first().ok_or_else(|| {
                        bad_data("wal: empty checkpoint payload")
                    })? as usize;
                    if idx != completed {
                        return Err(bad_data(format!(
                            "wal: checkpoint for phase {idx} but {completed} phases completed"
                        )));
                    }
                    for (tag, payload) in pending.drain(..) {
                        apply_record(&mut store, tag, &payload)?;
                    }
                    completed += 1;
                    uncheckpointed_reval = 0;
                }
                TAG_ROLLBACK => pending.clear(),
                TAG_REVAL => {
                    let (entry, _) = decode_reval(&rec.payload)?;
                    reval_entries.push(entry);
                    uncheckpointed_reval += 1;
                }
                tag => pending.push((tag, rec.payload.clone())),
            }
        }

        let journal = Self {
            store: durable_store,
            journaled_reval: reval_entries.iter().map(|(k, _)| k.clone()).collect(),
            completed,
            snapshot_every: cfg.snapshot_every_phases.max(1),
        };
        let state = RecoveredState {
            store,
            completed,
            reval_entries,
            uncheckpointed_reval,
            torn_tail_recovered: recovered.torn_tail_recovered,
        };
        Ok((journal, state))
    }

    /// Durably discard any staged (uncheckpointed) records: resume calls
    /// this before re-running the interrupted phase, so a future replay
    /// of this WAL never applies the partial batch *and* the re-run's
    /// full batch.
    pub fn rollback(&mut self) -> io::Result<()> {
        self.store.append(TAG_ROLLBACK, &[])?;
        self.store.sync()
    }

    /// Journal a completed phase: its store mutations, newly cached
    /// revalidation entries, a checkpoint; then sync (and snapshot on
    /// the configured cadence). `store` is the crawl store *after* the
    /// phase ran.
    pub fn commit_phase(
        &mut self,
        phase: Phase,
        store: &CrawlStore,
        reval: Option<&httpnet::RevalidationCache>,
    ) -> io::Result<()> {
        self.append_phase_delta(phase, store)?;
        if let Some(cache) = reval {
            let (wal, journaled) = (&mut self.store, &mut self.journaled_reval);
            let mut result = Ok(());
            cache.for_each_entry(|key, resp| {
                if result.is_err() || journaled.contains(key) {
                    return;
                }
                result = wal.append(TAG_REVAL, &encode_reval(key, resp));
                if result.is_ok() {
                    journaled.insert(key.to_owned());
                }
            });
            result?;
        }
        self.store.append(TAG_CHECKPOINT, &[phase.index() as u8])?;
        self.completed += 1;
        self.store.sync()?;
        if self.completed.is_multiple_of(self.snapshot_every) {
            self.snapshot(store, reval)?;
        }
        Ok(())
    }

    /// The phases checkpointed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Append the records for the store fields `phase` owns. Map-backed
    /// entities are sorted by key; vector-backed ones are journaled in
    /// store order, which every phase leaves deterministic (each sorts
    /// its output).
    fn append_phase_delta(&mut self, phase: Phase, store: &CrawlStore) -> io::Result<()> {
        let mut put = |tag: u32, v: &Value| -> io::Result<()> {
            self.store.append(tag, jsonlite::to_string(v).as_bytes())
        };
        match phase {
            Phase::GabEnum => {
                for a in &store.gab_accounts {
                    put(TAG_GAB, &persist::gab_to_json(a))?;
                }
            }
            Phase::Probe => {
                for name in &store.dissenter_usernames {
                    self.store.append(TAG_USERNAME, name.as_bytes())?;
                }
            }
            Phase::Spider => {
                let mut users: Vec<_> = store.users.values().collect();
                users.sort_by(|a, b| a.username.cmp(&b.username));
                for u in users {
                    put(TAG_USER, &persist::user_to_json(u))?;
                }
                let mut urls: Vec<_> = store.urls.values().collect();
                urls.sort_by_key(|u| u.id);
                for u in urls {
                    put(TAG_URL, &persist::url_to_json(u))?;
                }
                let mut comments: Vec<_> = store.comments.values().collect();
                comments.sort_by_key(|c| c.id);
                for c in comments {
                    put(TAG_COMMENT, &persist::comment_to_json(c))?;
                }
            }
            Phase::Shadow => {
                self.store.append(TAG_SHADOW, &encode_shadow(store.shadow_validation))?;
            }
            Phase::Youtube => {
                for y in &store.youtube {
                    put(TAG_YOUTUBE, &persist::youtube_to_json(y))?;
                }
            }
            Phase::Social => {
                for e in &store.follow_edges {
                    put(TAG_EDGE, &persist::edge_to_json(e))?;
                }
            }
            Phase::Reddit => {
                let mut matches: Vec<_> = store.reddit.values().collect();
                matches.sort_by(|a, b| a.username.cmp(&b.username));
                for m in matches {
                    put(TAG_REDDIT, &persist::reddit_to_json(m))?;
                }
            }
        }
        Ok(())
    }

    /// Snapshot the full store (sections mirror the WAL record
    /// encodings) and let the engine compact covered segments. The
    /// reval section must carry the cache's live entries: their WAL
    /// records fall behind the watermark and compaction deletes them,
    /// so the snapshot is their only surviving copy. Entries the cache
    /// has since evicted are dropped here too — losing one only costs a
    /// full re-download, never correctness.
    fn snapshot(
        &mut self,
        store: &CrawlStore,
        reval: Option<&httpnet::RevalidationCache>,
    ) -> io::Result<()> {
        let mut reval_section = Vec::new();
        if let Some(cache) = reval {
            cache.for_each_entry(|key, resp| {
                reval_section.extend_from_slice(&encode_reval(key, resp));
            });
        }
        let sections: Vec<(u32, Vec<u8>)> = vec![
            (TAG_GAB, persist::serialize_file(store, "gab_accounts.jsonl")),
            (TAG_USERNAME, store.dissenter_usernames.join("\n").into_bytes()),
            (TAG_USER, persist::serialize_file(store, "users.jsonl")),
            (TAG_URL, persist::serialize_file(store, "urls.jsonl")),
            (TAG_COMMENT, persist::serialize_file(store, "comments.jsonl")),
            (TAG_SHADOW, encode_shadow(store.shadow_validation).to_vec()),
            (TAG_YOUTUBE, persist::serialize_file(store, "youtube.jsonl")),
            (TAG_EDGE, persist::serialize_file(store, "follow_edges.jsonl")),
            (TAG_REDDIT, persist::serialize_file(store, "reddit.jsonl")),
            (TAG_CHECKPOINT, vec![self.completed as u8]),
            (TAG_REVAL, reval_section),
        ];
        self.store.snapshot(&sections)
    }
}

fn encode_shadow(validation: (usize, usize)) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&(validation.0 as u64).to_le_bytes());
    out[8..].copy_from_slice(&(validation.1 as u64).to_le_bytes());
    out
}

/// Apply one entity record (WAL or snapshot section) to the store.
fn apply_record(store: &mut CrawlStore, tag: u32, payload: &[u8]) -> io::Result<()> {
    match tag {
        TAG_USERNAME => {
            let text = std::str::from_utf8(payload)
                .map_err(|e| bad_data(format!("username record: not UTF-8: {e}")))?;
            for name in text.split('\n').filter(|l| !l.is_empty()) {
                store.dissenter_usernames.push(name.to_owned());
            }
        }
        TAG_SHADOW => {
            if payload.len() != 16 {
                return Err(bad_data(format!(
                    "shadow record: expected 16 bytes, got {}",
                    payload.len()
                )));
            }
            let sampled = u64::from_le_bytes(payload[..8].try_into().unwrap());
            let confirmed = u64::from_le_bytes(payload[8..].try_into().unwrap());
            store.shadow_validation = (sampled as usize, confirmed as usize);
        }
        TAG_GAB | TAG_USER | TAG_URL | TAG_COMMENT | TAG_YOUTUBE | TAG_EDGE | TAG_REDDIT => {
            let name = archive_name(tag);
            persist::apply_jsonl(store, name, payload)?;
        }
        other => return Err(bad_data(format!("unknown journal record tag {other}"))),
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Revalidation-entry binary codec:
//   key_len u32 | key | status u16 | nheaders u16
//   | (name_len u16 | name | value_len u32 | value)* | body_len u32 | body
// Binary because header values and bodies are not guaranteed JSON-safe
// text, and the WAL already carries opaque bytes.
// ---------------------------------------------------------------------

fn encode_reval(key: &str, resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key.as_bytes());
    buf.extend_from_slice(&resp.status.0.to_le_bytes());
    buf.extend_from_slice(&(resp.headers.len() as u16).to_le_bytes());
    for (name, value) in resp.headers.iter() {
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
        buf.extend_from_slice(value.as_bytes());
    }
    buf.extend_from_slice(&(resp.body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&resp.body);
    buf
}

/// Decode one entry from the front of `bytes`; returns it plus the
/// number of bytes consumed (snapshot sections concatenate entries).
fn decode_reval(bytes: &[u8]) -> io::Result<((String, Response), usize)> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> io::Result<&[u8]> {
        let slice = bytes
            .get(*pos..*pos + n)
            .ok_or_else(|| bad_data("reval record: truncated"))?;
        *pos += n;
        Ok(slice)
    };
    let key_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let key = String::from_utf8(take(&mut pos, key_len)?.to_vec())
        .map_err(|e| bad_data(format!("reval record: key not UTF-8: {e}")))?;
    let status = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
    let nheaders = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
    let mut headers = Headers::new();
    for _ in 0..nheaders {
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|e| bad_data(format!("reval record: header name not UTF-8: {e}")))?;
        let value_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let value = String::from_utf8(take(&mut pos, value_len)?.to_vec())
            .map_err(|e| bad_data(format!("reval record: header value not UTF-8: {e}")))?;
        headers.add(&name, &value);
    }
    let body_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let body = take(&mut pos, body_len)?.to_vec();
    Ok(((key, Response { status: Status(status), headers, body }), pos))
}
