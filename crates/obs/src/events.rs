//! The bounded structured event log.

use crate::json;
use std::sync::Mutex;

/// Retain at most this many events; later events are dropped (and
/// counted) rather than growing without bound during a long crawl.
const EVENT_CAP: usize = 16_384;

/// One structured event: a name, a relative timestamp, and flat
/// key/value fields. Rendered as one JSON object per line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the owning registry was created.
    pub ts_us: u64,
    /// Event name (e.g. `span`, `breaker`, `dead_letter`).
    pub name: String,
    /// Flat string fields.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Render as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"ts_us\":{},\"event\":{}", self.ts_us, json::string(&self.name));
        for (k, v) in &self.fields {
            s.push(',');
            s.push_str(&json::string(k));
            s.push(':');
            s.push_str(&json::string(v));
        }
        s.push('}');
        s
    }
}

#[derive(Debug, Default)]
pub(crate) struct EventLog {
    events: Mutex<Vec<Event>>,
    dropped: std::sync::atomic::AtomicU64,
}

impl EventLog {
    pub(crate) fn push(&self, e: Event) {
        let mut guard = self.events.lock().unwrap_or_else(|p| p.into_inner());
        if guard.len() < EVENT_CAP {
            guard.push(e);
        } else {
            self.dropped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    pub(crate) fn to_vec(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_line() {
        let e = Event {
            ts_us: 42,
            name: "breaker".into(),
            fields: vec![("service".into(), "gab".into()), ("to".into(), "open".into())],
        };
        assert_eq!(
            e.to_json(),
            "{\"ts_us\":42,\"event\":\"breaker\",\"service\":\"gab\",\"to\":\"open\"}"
        );
    }

    #[test]
    fn log_caps_and_counts_drops() {
        let log = EventLog::default();
        for i in 0..(EVENT_CAP + 5) {
            log.push(Event { ts_us: i as u64, name: "e".into(), fields: vec![] });
        }
        assert_eq!(log.len(), EVENT_CAP);
        assert_eq!(log.dropped.load(std::sync::atomic::Ordering::Relaxed), 5);
    }
}
