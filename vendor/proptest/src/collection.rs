//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing a `Vec` of values from `element`, with a length
/// drawn from `size` (half-open, like the real crate's `Range` form).
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

/// Build a [`VecStrategy`]; `size` must be non-empty.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for vec strategy");
    VecStrategy { element, min: size.start, max_exclusive: size.end }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.len_in(self.min, self.max_exclusive - 1);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let mut rng = TestRng::from_seed(21);
        let s = vec(0u32..10, 2..6);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            lens.insert(v.len());
        }
        assert_eq!(lens.len(), 4, "all lengths 2..=5 reachable");
    }
}
