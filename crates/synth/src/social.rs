//! Social-graph synthesis: preferential attachment plus the planted
//! hateful core (§4.5.1).
//!
//! The generated graph reproduces the paper's observations:
//! * in- and out-degree both follow power laws;
//! * roughly a third of users (15,702 / 45,524) are fully isolated —
//!   "Gab users who tried Dissenter, but none of their Gab friends are
//!   part of Dissenter";
//! * a small planted clique structure of mutually-following users whose
//!   comments will be made toxic by the world generator: at full scale 42
//!   users in 6 components with a 32-user giant component.

use crate::dist::{coin, power_law_int};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesis parameters.
#[derive(Debug, Clone, Copy)]
pub struct SocialConfig {
    /// Number of social-network users (active Dissenter users).
    pub n: usize,
    /// Fraction with no edges at all.
    pub isolated_fraction: f64,
    /// Out-degree power-law exponent.
    pub alpha_out: f64,
    /// Maximum out-degree (paper max ~15,790 at full scale).
    pub max_degree: u64,
    /// Probability a followed user follows back.
    pub reciprocity: f64,
    /// Number of hateful-core members to plant.
    pub core_n: usize,
    /// Size of the core's giant component (rest split into pairs/triples).
    pub core_giant: usize,
    /// Seed.
    pub seed: u64,
}

impl SocialConfig {
    /// Paper-shaped config for `n` users (core sizes scale down below
    /// ~1/8 scale but keep the giant-component dominance).
    pub fn for_users(n: usize, scale: f64, seed: u64) -> Self {
        assert!(n >= 14, "social graph needs at least 14 users (got {n})");
        // The core is a small fixed clique structure, not an extensive
        // quantity — scale it as √(scale) so sub-scale worlds keep a
        // recognizable multi-component core (42 exactly at full scale),
        // clamped to what the graph can hold (generate_social requires
        // n ≥ core_n + 10).
        let core_n = ((42.0 * scale.sqrt()).round() as usize)
            .clamp(4, 42)
            .min(n.saturating_sub(10));
        // Keep at least one non-giant component at every scale so the
        // paper's "multiple components, one dominant" shape survives
        // scaling down.
        let core_giant = (((32.0 / 42.0) * core_n as f64).round() as usize)
            .clamp(2, core_n.saturating_sub(2).max(2));
        Self {
            n,
            isolated_fraction: 15_702.0 / 45_524.0,
            alpha_out: 2.1,
            max_degree: ((15_790.0 * scale) as u64).max(50),
            reciprocity: 0.25,
            core_n,
            core_giant: core_giant.max(2),
            seed,
        }
    }
}

/// The synthesized graph.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    /// Directed follow edges `(follower, followed)` over `0..n`.
    pub edges: Vec<(u32, u32)>,
    /// Planted core members.
    pub core_members: Vec<u32>,
    /// Core components (each a list of members; first is the giant).
    pub core_components: Vec<Vec<u32>>,
    /// Number of users.
    pub n: usize,
}

/// Generate the follow graph.
pub fn generate_social(cfg: &SocialConfig) -> SocialGraph {
    assert!(cfg.n >= cfg.core_n + 10, "graph too small for the configured core");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let n_isolated = (cfg.isolated_fraction * n as f64).round() as usize;

    // The last `n_isolated` indices stay isolated; the connected set is
    // `0..n_conn`.
    let n_conn = n - n_isolated;

    // Core members: a contiguous block placed away from index 0 so the
    // highest-degree (oldest, most-attached) users are NOT core members —
    // matching "none of the top ten highest degree users are among the
    // most prolific commenters".
    let core_start = (n_conn / 2).min(n_conn.saturating_sub(cfg.core_n));
    let core_members: Vec<u32> = (core_start..core_start + cfg.core_n).map(|i| i as u32).collect();

    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut edge_set = std::collections::HashSet::<(u32, u32)>::new();
    let push_edge = |edges: &mut Vec<(u32, u32)>,
                         set: &mut std::collections::HashSet<(u32, u32)>,
                         a: u32,
                         b: u32| {
        if a != b && set.insert((a, b)) {
            edges.push((a, b));
        }
    };

    // Attachment over the connected set. True preferential attachment
    // needs a weighted pick per edge (O(n) per draw, or an alias structure
    // rebuilt as weights change); a mixed proposal — half uniform, half
    // squared-uniform biased toward low indices (the "older" users that
    // early joiners attach to) — produces the same heavy-tailed in-degree
    // at a fraction of the cost, and the power-law fit is asserted below.
    for u in 0..n_conn as u32 {
        let d = power_law_int(&mut rng, cfg.alpha_out, 1, cfg.max_degree.max(2)) as usize;
        for _ in 0..d {
            let v = if coin(&mut rng, 0.5) {
                rng.gen_range(0..n_conn) as u32
            } else {
                let x: f64 = rng.gen();
                ((x * x * n_conn as f64) as usize).min(n_conn - 1) as u32
            };
            push_edge(&mut edges, &mut edge_set, u, v);
            if coin(&mut rng, cfg.reciprocity) {
                push_edge(&mut edges, &mut edge_set, v, u);
            }
        }
    }

    // Plant the core: one giant component plus pairs/triples, all edges
    // mutual.
    let mut components: Vec<Vec<u32>> = Vec::new();
    let giant: Vec<u32> = core_members[..cfg.core_giant.min(core_members.len())].to_vec();
    components.push(giant.clone());
    let mut rest = core_members[cfg.core_giant.min(core_members.len())..].to_vec();
    while rest.len() >= 2 {
        let take = if rest.len() == 3 { 3 } else { 2 };
        components.push(rest.drain(..take).collect());
    }
    if let (Some(last), true) = (rest.pop(), !components.is_empty()) {
        // A single leftover joins the last small component.
        components.last_mut().expect("non-empty").push(last);
    }
    for comp in &components {
        // Ring + chords: connected, mutual, modest degree.
        for w in comp.windows(2) {
            push_edge(&mut edges, &mut edge_set, w[0], w[1]);
            push_edge(&mut edges, &mut edge_set, w[1], w[0]);
        }
        if comp.len() > 2 {
            let (a, b) = (comp[0], *comp.last().expect("non-empty"));
            push_edge(&mut edges, &mut edge_set, a, b);
            push_edge(&mut edges, &mut edge_set, b, a);
            // Chords inside the giant component.
            for _ in 0..comp.len() {
                let x = comp[rng.gen_range(0..comp.len())];
                let y = comp[rng.gen_range(0..comp.len())];
                if x != y {
                    push_edge(&mut edges, &mut edge_set, x, y);
                    push_edge(&mut edges, &mut edge_set, y, x);
                }
            }
        }
    }

    SocialGraph { edges, core_members, core_components: components, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::DiGraph;

    fn build(cfg: &SocialConfig) -> (SocialGraph, DiGraph) {
        let sg = generate_social(cfg);
        let mut g = DiGraph::with_nodes(sg.n);
        for &(a, b) in &sg.edges {
            g.add_edge(a, b);
        }
        (sg, g)
    }

    fn test_cfg() -> SocialConfig {
        SocialConfig::for_users(2_000, 1.0 / 16.0, 7)
    }

    #[test]
    fn isolated_fraction_respected() {
        let (sg, g) = build(&test_cfg());
        let iso = g.isolated_nodes().len() as f64 / sg.n as f64;
        let want = 15_702.0 / 45_524.0;
        assert!((iso - want).abs() < 0.05, "isolated fraction {iso}");
    }

    #[test]
    fn core_components_shaped_like_paper() {
        let cfg = SocialConfig::for_users(10_000, 1.0, 11);
        let (sg, g) = build(&cfg);
        assert_eq!(sg.core_members.len(), 42);
        assert_eq!(sg.core_components[0].len(), 32);
        // All core edges are mutual.
        for comp in &sg.core_components {
            for w in comp.windows(2) {
                assert!(g.mutual(w[0], w[1]), "core edges must be mutual");
            }
        }
        // Components count: 1 giant + (42-32)/2 = 6.
        assert_eq!(sg.core_components.len(), 6);
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let (_, g) = build(&test_cfg());
        let out: Vec<f64> = g
            .out_degrees()
            .iter()
            .filter(|&&d| d > 0)
            .map(|&d| d as f64)
            .collect();
        let fit = stats::fit_power_law(&out, 1.0).expect("enough data");
        assert!(fit.alpha > 1.3 && fit.alpha < 3.5, "alpha {}", fit.alpha);
        let max = out.iter().cloned().fold(0.0, f64::max);
        assert!(max > 50.0, "needs hubs, max {max}");
    }

    #[test]
    fn deterministic() {
        let a = generate_social(&test_cfg());
        let b = generate_social(&test_cfg());
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.core_members, b.core_members);
    }

    #[test]
    fn small_scale_keeps_core_dominance() {
        let cfg = SocialConfig::for_users(800, 1.0 / 64.0, 3);
        let sg = generate_social(&cfg);
        assert!(sg.core_members.len() >= 4);
        // At minimal core sizes the "giant" halves with a pair left over;
        // the multi-component shape must survive.
        assert!(sg.core_components.len() >= 2);
        assert!(sg.core_components[0].len() >= 2);
    }

    #[test]
    #[should_panic(expected = "at least 14")]
    fn tiny_graph_panics() {
        generate_social(&SocialConfig::for_users(10, 1.0, 1));
    }
}
