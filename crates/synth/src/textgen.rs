//! Calibrated comment-text generation.
//!
//! Each comment is generated from a [`CommentSpec`] carrying *target*
//! Perspective scores. The generator inverts the documented model weights
//! (`classify::perspective`) into marker densities, embeds that many hate /
//! obscenity / insult / author-word markers among benign filler words of
//! the requested language, and emits plain text. Because the classifier
//! genuinely re-scores the text, realized scores track targets with
//! quantization noise (a comment has integer token counts) — giving
//! distributions the natural spread the paper's figures show.
//!
//! Deliberate imperfections carried over from §3.5's discussion:
//! * a small rate of trailing-`z` slang on hate terms (stemmer-defeating
//!   false negatives);
//! * occasional ambiguous terms ("queen", "pig") in benign text
//!   (dictionary false positives);
//! * the [`lexicon_trap`] word containing a hate term as a
//!   substring, which token-level matching correctly ignores.

use classify::features::{AUTHOR_WORDS, INSULTS, SECOND_PERSON};
use classify::lexicon::{AMBIGUOUS_TERMS, SUBSTRING_TRAP};
use classify::perspective::{logit, ATTACK_W, OBSCENE_W, REJECT_W, SEVERE_W};
use classify::{shard, Lexicon};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textkit::langid::{filler_words, Lang};

/// Target scores and shape for one generated comment.
#[derive(Debug, Clone, Copy)]
pub struct CommentSpec {
    /// Language of the filler vocabulary.
    pub lang: Lang,
    /// Target `SEVERE_TOXICITY`.
    pub severe: f64,
    /// Target `OBSCENE`.
    pub obscene: f64,
    /// Target `ATTACK_ON_AUTHOR`.
    pub attack: f64,
    /// Target `LIKELY_TO_REJECT` (satisfied via insult top-up after the
    /// other channels are fixed).
    pub reject: f64,
    /// Number of word tokens.
    pub tokens: usize,
}

impl CommentSpec {
    /// A benign English comment of `tokens` words.
    pub fn benign(tokens: usize) -> Self {
        Self { lang: Lang::En, severe: 0.05, obscene: 0.04, attack: 0.03, reject: 0.15, tokens }
    }
}

/// The text generator (shares its lexicon with the classifiers).
#[derive(Debug, Clone)]
pub struct TextGen {
    hate_terms: Vec<String>,
    obscene_terms: Vec<String>,
}

impl TextGen {
    /// Generator over the standard lexicon and marker lists.
    pub fn standard() -> Self {
        Self {
            hate_terms: Lexicon::standard().terms().to_vec(),
            obscene_terms: classify::features::obscene_markers(),
        }
    }

    /// Generate comment text for a spec.
    pub fn generate<R: Rng>(&self, rng: &mut R, spec: &CommentSpec) -> String {
        let n = spec.tokens.max(3);
        // Invert the models channel-by-channel.
        let hd = if spec.severe <= 0.06 {
            0.0
        } else {
            SEVERE_W.density_for_target(SEVERE_W.hate, spec.severe)
        };
        let od = if spec.obscene <= 0.05 {
            0.0
        } else {
            OBSCENE_W.density_for_target(OBSCENE_W.obscene, spec.obscene)
        };
        let ad = if spec.attack <= 0.05 {
            0.0
        } else {
            ATTACK_W.density_for_target(ATTACK_W.author, spec.attack)
        };
        // Reject top-up through the insult channel.
        let l_reject =
            REJECT_W.hate * hd + REJECT_W.obscene * od + REJECT_W.author * ad + REJECT_W.bias;
        let target_reject = spec.reject.clamp(1e-4, 1.0 - 1e-4);
        let id = ((logit(target_reject) - l_reject) / REJECT_W.insult).clamp(0.0, 0.6);

        let n_h = (hd * n as f64).round() as usize;
        let n_o = (od * n as f64).round() as usize;
        let n_a = (ad * n as f64).round() as usize;
        let n_i = (id * n as f64).round() as usize;
        let marker_total = (n_h + n_o + n_a + n_i).min(n);
        let _n_benign = n - marker_total;

        let mut words: Vec<String> = Vec::with_capacity(n + 2);
        for _ in 0..n_h {
            let t = &self.hate_terms[rng.gen_range(0..self.hate_terms.len())];
            // 5% slang-z suffix: defeats stemming — a designed false
            // negative for the dictionary scorer.
            if rng.gen::<f64>() < 0.05 {
                words.push(format!("{t}z"));
            } else {
                words.push(t.clone());
            }
        }
        for _ in 0..n_o.min(n - words.len()) {
            words.push(self.obscene_terms[rng.gen_range(0..self.obscene_terms.len())].clone());
        }
        for _ in 0..n_a.min(n.saturating_sub(words.len())) {
            words.push(AUTHOR_WORDS[rng.gen_range(0..AUTHOR_WORDS.len())].to_owned());
        }
        for _ in 0..n_i.min(n.saturating_sub(words.len())) {
            words.push(INSULTS[rng.gen_range(0..INSULTS.len())].to_owned());
        }
        // Attack comments address someone directly.
        if spec.attack > 0.3 && words.len() < n {
            words.push(SECOND_PERSON[rng.gen_range(0..SECOND_PERSON.len())].to_owned());
        }
        let vocab = filler_words(spec.lang);
        while words.len() < n {
            if spec.lang == Lang::En && rng.gen::<f64>() < 0.004 {
                // Ambiguous everyday term: benign use, dictionary hit.
                words.push(AMBIGUOUS_TERMS[rng.gen_range(0..AMBIGUOUS_TERMS.len())].to_owned());
            } else if spec.lang == Lang::En && rng.gen::<f64>() < 0.001 {
                // The substring trap ("Pakistan" analogue).
                words.push(SUBSTRING_TRAP.to_owned());
            } else {
                words.push(vocab[rng.gen_range(0..vocab.len())].to_owned());
            }
        }
        // Shuffle so markers are interleaved with filler.
        for i in (1..words.len()).rev() {
            words.swap(i, rng.gen_range(0..=i));
        }
        let mut text = words.join(" ");
        // Punctuation: exclamation marks scale with rejection energy.
        if spec.reject > 0.6 && rng.gen::<f64>() < 0.5 {
            let bangs = 1 + rng.gen_range(0..3);
            text.push_str(&"!".repeat(bangs));
        } else {
            text.push('.');
        }
        // Capitalize the first letter.
        let mut chars = text.chars();
        match chars.next() {
            Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
            None => text,
        }
    }

    /// Generate one text per spec, sharded over `workers` threads.
    ///
    /// Item `i` draws from its own RNG stream seeded by
    /// `stream_seed(seed, i)` — the stable item index, never the thread —
    /// and outputs merge in spec order, so the result is byte-identical
    /// at any worker count (including the serial `workers == 1` path).
    pub fn generate_batch(&self, specs: &[CommentSpec], seed: u64, workers: usize) -> Vec<String> {
        shard::map_sharded(
            specs,
            shard::DEFAULT_SHARD_SIZE,
            workers,
            |shard_id, shard_specs| {
                shard_specs
                    .iter()
                    .enumerate()
                    .map(|(pos, spec)| {
                        let i = (shard_id * shard::DEFAULT_SHARD_SIZE + pos) as u64;
                        let mut rng = StdRng::seed_from_u64(shard::stream_seed(seed, i));
                        self.generate(&mut rng, spec)
                    })
                    .collect()
            },
        )
    }

    /// The text [`generate_batch`](Self::generate_batch) would produce at
    /// stream index `index`: byte-identical to
    /// `generate_batch(specs, seed, _)[index]` for the same spec, without
    /// generating the rest of the batch. This is what lets a streaming
    /// world source synthesize texts lazily, batch by batch, in any
    /// visit order.
    pub fn generate_at(&self, spec: &CommentSpec, seed: u64, index: u64) -> String {
        let mut rng = StdRng::seed_from_u64(shard::stream_seed(seed, index));
        self.generate(&mut rng, spec)
    }

    /// [`generate_at`](Self::generate_at) over explicit `(index, spec)`
    /// pairs, sharded over `workers` threads. Each item draws from the
    /// stream of its *carried* index (not its position in `items`), so a
    /// caller may present any subset of a batch in any order and still
    /// get the bytes the full in-order batch would have produced.
    pub fn generate_batch_indexed(
        &self,
        items: &[(u64, CommentSpec)],
        seed: u64,
        workers: usize,
    ) -> Vec<String> {
        shard::map_sharded(items, shard::DEFAULT_SHARD_SIZE, workers, |_, shard_items| {
            shard_items
                .iter()
                .map(|(i, spec)| {
                    let mut rng = StdRng::seed_from_u64(shard::stream_seed(seed, *i));
                    self.generate(&mut rng, spec)
                })
                .collect()
        })
    }
}

/// The "Pakistan"-analogue benign word containing a lexicon term.
pub fn lexicon_trap() -> &'static str {
    SUBSTRING_TRAP
}

#[cfg(test)]
mod tests {
    use super::*;
    use classify::PerspectiveModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_scores(spec: &CommentSpec, n: usize) -> classify::PerspectiveScores {
        let gen = TextGen::standard();
        let model = PerspectiveModel::standard();
        let mut rng = StdRng::seed_from_u64(5);
        let mut acc = classify::PerspectiveScores::default();
        for _ in 0..n {
            let text = gen.generate(&mut rng, spec);
            let s = model.score(&text);
            acc.severe_toxicity += s.severe_toxicity;
            acc.likely_to_reject += s.likely_to_reject;
            acc.obscene += s.obscene;
            acc.attack_on_author += s.attack_on_author;
        }
        acc.severe_toxicity /= n as f64;
        acc.likely_to_reject /= n as f64;
        acc.obscene /= n as f64;
        acc.attack_on_author /= n as f64;
        acc
    }

    #[test]
    fn benign_comments_score_benign() {
        let s = mean_scores(&CommentSpec::benign(15), 200);
        assert!(s.severe_toxicity < 0.15, "{s:?}");
        assert!(s.obscene < 0.15, "{s:?}");
        assert!(s.likely_to_reject < 0.35, "{s:?}");
    }

    #[test]
    fn severe_target_is_recovered() {
        let spec = CommentSpec {
            lang: Lang::En,
            severe: 0.7,
            obscene: 0.05,
            attack: 0.05,
            reject: 0.8,
            tokens: 20,
        };
        let s = mean_scores(&spec, 300);
        assert!((s.severe_toxicity - 0.7).abs() < 0.15, "{s:?}");
    }

    #[test]
    fn reject_target_is_recovered_even_when_severe_is_low() {
        // The Dissenter signature: unacceptable-to-moderators but not
        // hate-dense.
        let spec = CommentSpec {
            lang: Lang::En,
            severe: 0.1,
            obscene: 0.05,
            attack: 0.1,
            reject: 0.8,
            tokens: 25,
        };
        let s = mean_scores(&spec, 300);
        assert!((s.likely_to_reject - 0.8).abs() < 0.15, "{s:?}");
        assert!(s.severe_toxicity < 0.45, "{s:?}");
    }

    #[test]
    fn obscene_and_attack_channels_recover() {
        let spec = CommentSpec {
            lang: Lang::En,
            severe: 0.05,
            obscene: 0.8,
            attack: 0.75,
            reject: 0.6,
            tokens: 24,
        };
        let s = mean_scores(&spec, 300);
        assert!((s.obscene - 0.8).abs() < 0.2, "{s:?}");
        assert!((s.attack_on_author - 0.75).abs() < 0.2, "{s:?}");
    }

    #[test]
    fn language_filler_matches_langid() {
        let gen = TextGen::standard();
        let mut rng = StdRng::seed_from_u64(9);
        for &lang in &[Lang::En, Lang::De, Lang::Fr, Lang::Es, Lang::It] {
            let spec = CommentSpec { lang, ..CommentSpec::benign(20) };
            let mut hits = 0;
            for _ in 0..50 {
                let text = gen.generate(&mut rng, &spec);
                if textkit::detect(&text) == lang {
                    hits += 1;
                }
            }
            assert!(hits >= 40, "{lang:?}: {hits}/50");
        }
    }

    #[test]
    fn token_count_respected() {
        let gen = TextGen::standard();
        let mut rng = StdRng::seed_from_u64(3);
        let spec = CommentSpec::benign(12);
        let text = gen.generate(&mut rng, &spec);
        let n = textkit::tokenize(&text).len();
        assert!((11..=13).contains(&n), "{n}: {text}");
    }

    #[test]
    fn deterministic_for_seed() {
        let gen = TextGen::standard();
        let spec = CommentSpec::benign(10);
        let a = gen.generate(&mut StdRng::seed_from_u64(1), &spec);
        let b = gen.generate(&mut StdRng::seed_from_u64(1), &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_generation_matches_batch_at_any_order() {
        let gen = TextGen::standard();
        let specs: Vec<CommentSpec> = (0..600)
            .map(|i| CommentSpec {
                severe: (i % 9) as f64 / 9.0,
                ..CommentSpec::benign(6 + i % 15)
            })
            .collect();
        let batch = gen.generate_batch(&specs, 7, 1);
        // Single items, arbitrary probes.
        for &i in &[0usize, 1, 511, 512, 599] {
            assert_eq!(gen.generate_at(&specs[i], 7, i as u64), batch[i], "index {i}");
        }
        // A shuffled subset through the indexed batch API.
        let picks: Vec<usize> = (0..specs.len()).rev().step_by(7).collect();
        let items: Vec<(u64, CommentSpec)> =
            picks.iter().map(|&i| (i as u64, specs[i])).collect();
        for workers in [1, 4] {
            let texts = gen.generate_batch_indexed(&items, 7, workers);
            for (k, &i) in picks.iter().enumerate() {
                assert_eq!(texts[k], batch[i], "workers={workers} index {i}");
            }
        }
    }

    #[test]
    fn batch_identical_for_any_worker_count() {
        let gen = TextGen::standard();
        let specs: Vec<CommentSpec> = (0..700)
            .map(|i| CommentSpec {
                severe: (i % 10) as f64 / 10.0,
                reject: (i % 7) as f64 / 7.0,
                ..CommentSpec::benign(8 + i % 20)
            })
            .collect();
        let serial = gen.generate_batch(&specs, 42, 1);
        assert_eq!(serial.len(), specs.len());
        for workers in [2, 8] {
            assert_eq!(gen.generate_batch(&specs, 42, workers), serial, "workers={workers}");
        }
        // Distinct stream parent → distinct texts somewhere.
        assert_ne!(gen.generate_batch(&specs, 43, 1), serial);
    }
}
