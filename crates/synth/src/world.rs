//! The end-to-end world generator.
//!
//! [`generate`] builds a complete [`platform::World`] from a
//! [`WorldConfig`]: Gab users (with the ID-counter anomalies of Fig. 2),
//! the Dissenter subset (77% joining by March 2019), Table-1 flag priors,
//! Table-2 URL/domain composition, calibrated comment text (Figs. 4, 7, 8),
//! votes conditioned on toxicity (Fig. 5), the follower graph with the
//! planted hateful core (Fig. 9, §4.5.1), the Reddit mirror (Fig. 6), the
//! YouTube state space (§4.2.2), and the Table-3 baseline corpora.

use crate::baselines::{sample_spec, Community};
use crate::config::{paper, WorldConfig};
use crate::dist::{beta, child_seed, coin, geometric, power_law_int, Categorical};
use crate::names;
use crate::social::{generate_social, SocialConfig};
use crate::textgen::{CommentSpec, TextGen};
use ids::{
    clock::{from_ymd, GAB_LAUNCH},
    EntityKind, GabIdAllocator, ObjectId, ObjectIdGen, Timestamp, DISSENTER_LAUNCH, STUDY_END,
};
use platform::{
    BaselineCorpus, Comment, CommentUrl, User, UserFlags, ViewFilters, World, YtContent, YtKind,
    YtState, YtUnavailableReason,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textkit::langid::Lang;

/// Generation-time ground truth, kept out of the [`World`] the crawler
/// sees; used by tests and the experiment harness for validation only.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Author-ids of the planted hateful-core members.
    pub core_author_ids: Vec<ObjectId>,
    /// World user indexes of Dissenter users.
    pub dissenter_indices: Vec<u32>,
    /// World user indexes of *active* (≥1 comment) Dissenter users.
    pub active_indices: Vec<u32>,
    /// Per-active-user latent toxicity heat (parallel to
    /// `active_indices`).
    pub user_heat: Vec<f64>,
}

/// Allsides-style bias classes — re-exported from the analysis crate so
/// the phenomenon generator and the measurement share one public mapping.
pub use analysis::allsides::Bias;

/// Bias of a domain (the shared Allsides mapping).
pub fn domain_bias(domain: &str) -> Bias {
    analysis::allsides::bias_of_domain(domain)
}

/// SEVERE_TOXICITY heat multiplier per bias class (Fig. 8a: center peaks,
/// right lowest).
pub fn bias_severity_mult(b: Bias) -> f64 {
    match b {
        Bias::Left => 0.95,
        Bias::LeftCenter => 1.08,
        Bias::Center => 1.30,
        Bias::RightCenter => 0.82,
        Bias::Right => 0.55,
        Bias::NotRanked => 1.0,
    }
}

/// ATTACK_ON_AUTHOR multiplier per bias class (Fig. 8b: monotone from
/// left to right).
pub fn bias_attack_mult(b: Bias) -> f64 {
    match b {
        Bias::Left => 1.8,
        Bias::LeftCenter => 1.45,
        Bias::Center => 1.15,
        Bias::RightCenter => 0.9,
        Bias::Right => 0.65,
        Bias::NotRanked => 1.0,
    }
}

/// Generate a complete world (serial; identical to [`generate_sharded`]
/// at any worker count).
pub fn generate(cfg: &WorldConfig) -> (World, GroundTruth) {
    generate_sharded(cfg, 1)
}

/// [`generate`] with comment-text generation sharded over `workers`
/// threads. World structure (users, URLs, slots, votes, flags) is always
/// sampled serially from the per-section seed streams; only text
/// synthesis — the dominant cost — fans out, with each comment drawing
/// from its own stream split by stable comment index
/// (`stream_seed(child_seed(seed, TAG), i)`), so the world is
/// byte-identical for every worker count.
pub fn generate_sharded(cfg: &WorldConfig, workers: usize) -> (World, GroundTruth) {
    let scale = cfg.scale.factor();
    let mut world = World::new();
    let mut truth = GroundTruth::default();
    let gen = TextGen::standard();

    // ---- 1. Gab universe ------------------------------------------------
    let mut rng_u = StdRng::seed_from_u64(child_seed(cfg.seed, 1));
    let n_gab = cfg.n(paper::GAB_USERS).max(50);
    let n_diss = cfg.n(paper::DISSENTER_USERS).min(n_gab).max(30);
    let mut alloc = GabIdAllocator::with_paper_anomalies(0.02);
    let mut author_gen = ObjectIdGen::new(EntityKind::Author, child_seed(cfg.seed, 2));

    // Gab creation times: uniform background + two bursts (late-2018
    // deplatformings, Dissenter launch).
    let gab_created = |rng: &mut StdRng| -> Timestamp {
        let r: f64 = rng.gen();
        if r < 0.55 {
            rng.gen_range(GAB_LAUNCH..STUDY_END)
        } else if r < 0.8 {
            rng.gen_range(from_ymd(2018, 10, 1)..from_ymd(2019, 1, 1))
        } else {
            rng.gen_range(DISSENTER_LAUNCH..from_ymd(2019, 6, 1))
        }
    };

    // Which Gab users get Dissenter accounts: the first n_diss of a
    // shuffled index set — equivalently a uniform subset.
    // Dissenter join times: 77% by March 31 2019.
    let diss_join = |rng: &mut StdRng| -> Timestamp {
        if coin(rng, paper::EARLY_JOIN_FRACTION) {
            rng.gen_range(DISSENTER_LAUNCH..from_ymd(2019, 4, 1))
        } else {
            rng.gen_range(from_ymd(2019, 4, 1)..STUDY_END)
        }
    };

    // Generation shares are set slightly above the paper's *detected*
    // shares (94% en / 2% de / <0.5% fr,es,it): marker-dense toxic
    // comments carry little language signal, so the identifier loses a
    // fraction of non-English comments to English — as langid.py also
    // would on slur-dense text.
    let lang_table = Categorical::new(&[
        (Lang::En, 0.942),
        (Lang::De, 0.030),
        (Lang::Fr, 0.0040),
        (Lang::Es, 0.0040),
        (Lang::It, 0.0040),
        (Lang::En, 0.016), // residual languages folded into English
    ]);

    let n_deleted = ((paper::DELETED_GAB_USERS * scale).round() as usize).max(2);
    let n_banned = ((paper::BANNED_USERS * scale).round() as usize).max(2);

    // Creation order must roughly follow time for the Gab ID counter;
    // generate (gab_time, dissenter_join) pairs and sort by gab time.
    // A Dissenter account requires an existing Gab account, so for
    // Dissenter users we sample the join first and condition the Gab
    // creation to precede it — this is what keeps the §4.1.1 "77% joined
    // by March 2019" statistic intact.
    let mut creations: Vec<(Timestamp, Option<Timestamp>)> = Vec::with_capacity(n_gab);
    // Special account: @e (the former Gab CTO) holds Gab ID 1 — force it
    // to sort first.
    creations.push((GAB_LAUNCH - 86_400, None));
    for i in 1..n_gab {
        if i <= n_diss {
            let join = diss_join(&mut rng_u);
            let mut gab_t = gab_created(&mut rng_u);
            if gab_t > join {
                gab_t = rng_u.gen_range(GAB_LAUNCH..join);
            }
            creations.push((gab_t, Some(join)));
        } else {
            creations.push((gab_created(&mut rng_u), None));
        }
    }
    creations.sort_by_key(|&(t, _)| t);
    debug_assert!(creations[0].1.is_none(), "@e must not be a Dissenter user");

    let mut dissenter_count_so_far = 0usize;
    let mut admin_slots: Vec<&str> = vec!["a", "shadowknight412"];
    for (serial, &(gab_t, join_opt)) in creations.iter().enumerate() {
        let is_diss = join_opt.is_some();
        let gab_id = alloc.allocate(gab_t, &mut rng_u);
        let (username, display_name) = if serial == 0 {
            ("e".to_owned(), "Ekrem".to_owned())
        } else if is_diss && !admin_slots.is_empty() {
            let n = admin_slots.pop().expect("non-empty").to_owned();
            let d = if n == "a" { "Andrew Torba".to_owned() } else { "Rob Colbert".to_owned() };
            (n, d)
        } else {
            let u = names::username(&mut rng_u, serial as u64);
            let d = names::display_name(&u);
            (u, d)
        };
        let is_admin = username == "a" || username == "shadowknight412";

        let (author_id, join_t, flags, filters, language, bio, gab_deleted) = if is_diss {
            let join = join_opt.expect("dissenter entries carry a join time").min(STUDY_END);
            let author_id = author_gen.next(join);
            let deleted = !is_admin && dissenter_count_so_far < n_deleted;
            let banned = !is_admin && !deleted && dissenter_count_so_far < n_deleted + n_banned;
            let flags = UserFlags {
                can_login: !banned && coin(&mut rng_u, 0.9997),
                can_post: !banned && coin(&mut rng_u, 0.9997),
                can_report: coin(&mut rng_u, 0.9999),
                can_chat: coin(&mut rng_u, 0.9997),
                can_vote: coin(&mut rng_u, 0.9997),
                is_banned: banned,
                is_admin,
                is_moderator: false,
                is_pro: coin(&mut rng_u, 0.0267),
                is_donor: coin(&mut rng_u, 0.0084),
                is_investor: coin(&mut rng_u, 0.0029),
                is_premium: coin(&mut rng_u, 0.0013),
                is_tippable: coin(&mut rng_u, 0.0015),
                is_private: coin(&mut rng_u, 0.039),
                verified: is_admin || coin(&mut rng_u, 0.0103),
            };
            let filters = ViewFilters {
                pro: coin(&mut rng_u, 0.9985),
                verified: coin(&mut rng_u, 0.9987),
                standard: coin(&mut rng_u, 0.9989),
                nsfw: coin(&mut rng_u, 0.1504),
                offensive: coin(&mut rng_u, 0.0733),
            };
            let lang = *lang_table.sample(&mut rng_u);
            let bio = if coin(&mut rng_u, 0.25) {
                "tired of censorship and cancel culture".to_owned()
            } else if coin(&mut rng_u, 0.3) {
                "speaking freely about the news".to_owned()
            } else {
                String::new()
            };
            dissenter_count_so_far += 1;
            (Some(author_id), join, flags, filters, lang.code().to_owned(), bio, deleted)
        } else {
            (
                None,
                gab_t,
                UserFlags { can_login: true, can_post: true, can_report: true, can_chat: true, can_vote: true, ..Default::default() },
                ViewFilters::default(),
                "en".to_owned(),
                String::new(),
                false,
            )
        };

        let idx = world.add_user(User {
            author_id,
            gab_id,
            username,
            display_name,
            bio,
            created_at: if author_id.is_some() { join_t } else { gab_t },
            flags,
            filters,
            language,
            gab_deleted,
        });
        if author_id.is_some() {
            truth.dissenter_indices.push(idx);
        }
    }

    // ---- 2. Activity: who comments, how much ----------------------------
    let mut rng_a = StdRng::seed_from_u64(child_seed(cfg.seed, 3));
    let n_active = ((paper::ACTIVE_FRACTION * truth.dissenter_indices.len() as f64).round()
        as usize)
        .max(20);
    // Choose active users among Dissenter users. Deleted-Gab users are
    // always active: the paper's ~1,300 ghosts are, by construction of
    // their discovery, all commenters (§4.1.1).
    // Ghosts are always active (their discovery requires comments); the
    // two admins and the banned accounts are also forced active so Table 1
    // counts them among the metadata-bearing population, as the paper's
    // does (both admins and all 8 banned accounts appear in Table 1).
    let mut forced: Vec<u32> = Vec::new();
    let mut others: Vec<u32> = Vec::new();
    for &i in &truth.dissenter_indices {
        let u = world.user(i);
        if u.gab_deleted || u.flags.is_admin || u.flags.is_banned {
            forced.push(i);
        } else {
            others.push(i);
        }
    }
    for i in (1..others.len()).rev() {
        others.swap(i, rng_a.gen_range(0..=i));
    }
    let mut candidates = forced;
    candidates.extend(others);
    candidates.truncate(n_active);
    truth.active_indices = candidates;

    // Social graph over active users; planted core members are graph
    // indices into `active_indices`.
    let social_cfg =
        SocialConfig::for_users(truth.active_indices.len(), scale, child_seed(cfg.seed, 4));
    let social = generate_social(&social_cfg);
    for &(a, b) in &social.edges {
        let (ua, ub) = (truth.active_indices[a as usize], truth.active_indices[b as usize]);
        world.gab.follow(ua, ub);
    }
    let core_set: std::collections::HashSet<u32> = social.core_members.iter().copied().collect();
    truth.core_author_ids = social
        .core_members
        .iter()
        .map(|&g| {
            world
                .user(truth.active_indices[g as usize])
                .author_id
                .expect("core members are Dissenter users")
        })
        .collect();

    // Per-user heat and comment counts. Power-law counts calibrated so
    // ~14% of active users produce 90% of comments (Fig. 3).
    let n_comments_total = cfg.n(paper::COMMENTS);
    // α = 1.17 with a 20k cap reproduces Fig. 3's "90% of comments from
    // ~14% of active users" at full scale; small worlds flatten to ~20%
    // (finite-size: a 500-user tail cannot hold 90% of the mass), which
    // EXPERIMENTS.md documents.
    let mut counts: Vec<u64> = (0..truth.active_indices.len())
        .map(|_| power_law_int(&mut rng_a, 1.17, 1, ((20_000.0 * scale) as u64).max(3_000)))
        .collect();
    // Core users must clear the ≥100-comment activity bar at every scale.
    for (g, c) in counts.iter_mut().enumerate() {
        if core_set.contains(&(g as u32)) {
            *c = (*c).max(120 + rng_a.gen_range(0..80));
        }
    }
    // Rescale to the target total.
    let sum: u64 = counts.iter().sum();
    let ratio = n_comments_total as f64 / sum as f64;
    for (g, c) in counts.iter_mut().enumerate() {
        let scaled = ((*c as f64) * ratio).round() as u64;
        *c = if core_set.contains(&(g as u32)) { scaled.max(120) } else { scaled.max(1) };
    }
    truth.user_heat = (0..truth.active_indices.len())
        .map(|g| {
            if core_set.contains(&(g as u32)) {
                1.4
            } else {
                beta(&mut rng_a, 1.3, 8.0)
            }
        })
        .collect();

    // ---- 3. URLs ---------------------------------------------------------
    let mut rng_url = StdRng::seed_from_u64(child_seed(cfg.seed, 5));
    let n_urls = cfg.n(paper::URLS).max(100);
    let mut url_gen = ObjectIdGen::new(EntityKind::CommentUrl, child_seed(cfg.seed, 6));

    let top_total: f64 = names::TOP_DOMAINS.iter().map(|(_, w)| w).sum();
    let domain_table = {
        let mut pairs: Vec<(Option<&'static str>, f64)> = names::TOP_DOMAINS
            .iter()
            .map(|&(d, w)| (Some(d), w))
            .collect();
        pairs.push((None, 100.0 - top_total)); // long tail
        Categorical::new(&pairs)
    };
    let tld_table = names::other_tld_table();

    struct UrlRec {
        id: ObjectId,
        url: String,
        domain: String,
        bias: Bias,
        created: Timestamp,
        weight: f64,
        youtube: bool,
    }
    let mut urls: Vec<UrlRec> = Vec::with_capacity(n_urls);
    let mut seen_urls = std::collections::HashSet::new();

    // Special URLs first: fringe high-volume threads, file://, chrome://,
    // protocol and trailing-slash duplicate pairs.
    let push_url = |urls: &mut Vec<UrlRec>,
                        seen: &mut std::collections::HashSet<String>,
                        rng: &mut StdRng,
                        url_gen: &mut ObjectIdGen,
                        url: String,
                        domain: String,
                        weight: f64| {
        if !seen.insert(url.clone()) {
            return;
        }
        let created = rng.gen_range(DISSENTER_LAUNCH..STUDY_END - 86_400);
        let youtube = platform::youtube::is_youtube_url(&url);
        urls.push(UrlRec {
            id: url_gen.next(created),
            url,
            bias: domain_bias(&domain),
            domain,
            created,
            weight,
            youtube,
        });
    };

    push_url(
        &mut urls,
        &mut seen_urls,
        &mut rng_url,
        &mut url_gen,
        "https://thewatcherfiles.com/archive/blood-libel.html".into(),
        "thewatcherfiles.com".into(),
        0.0, // weight 0: comment counts assigned explicitly below
    );
    push_url(
        &mut urls,
        &mut seen_urls,
        &mut rng_url,
        &mut url_gen,
        "https://deutschland.de/artikel/kommentar".into(),
        "deutschland.de".into(),
        0.0,
    );
    let n_file = ((13.0 * scale).round() as usize).max(2);
    for i in 0..n_file {
        push_url(
            &mut urls,
            &mut seen_urls,
            &mut rng_url,
            &mut url_gen,
            format!("file:///C:/Users/user{i}/Documents/notes{i}.pdf"),
            "local.file".into(),
            0.05,
        );
    }
    let n_chrome = ((20.0 * scale).round() as usize).max(2);
    for i in 0..n_chrome {
        let page = if i % 2 == 0 { "chrome://startpage/".to_owned() } else { format!("chrome://settings/p{i}") };
        push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, page, "local.chrome".into(), 0.05);
    }
    let n_proto_dups = ((400.0 * scale).round() as usize).max(2);
    for i in 0..n_proto_dups {
        let d = names::other_domain(&mut rng_url, "com");
        let path = names::article_path(&mut rng_url);
        push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, format!("http://{d}{path}?i={i}"), d.clone(), 0.2);
        push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, format!("https://{d}{path}?i={i}"), d, 0.2);
    }
    let n_slash_dups = ((60.0 * scale).round() as usize).max(1);
    for i in 0..n_slash_dups {
        let d = names::other_domain(&mut rng_url, "com");
        let path = format!("{}x{i}", names::article_path(&mut rng_url));
        push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, format!("https://{d}{path}"), d.clone(), 0.2);
        push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, format!("https://{d}{path}/"), d, 0.2);
    }

    while urls.len() < n_urls {
        let domain: String = match domain_table.sample(&mut rng_url) {
            Some(d) => (*d).to_owned(),
            None => {
                let tld = tld_table.sample(&mut rng_url);
                names::other_domain(&mut rng_url, tld)
            }
        };
        let serial = urls.len();
        let (url, weight) = if domain == "youtube.com" {
            let id = names::youtube_id(&mut rng_url);
            // YouTube: median comment volume 1 (light weight).
            (format!("https://youtube.com/watch?v={id}"), 0.35)
        } else if domain == "youtu.be" {
            (format!("https://youtu.be/{}", names::youtube_id(&mut rng_url)), 0.35)
        } else if domain == "twitter.com" {
            (
                format!(
                    "https://twitter.com/{}/status/{}",
                    names::username(&mut rng_url, serial as u64),
                    rng_url.gen_range(1_000_000_000u64..9_999_999_999u64)
                ),
                0.5,
            )
        } else {
            let scheme = if coin(&mut rng_url, 0.975) { "https" } else { "http" };
            let mut path = names::article_path(&mut rng_url);
            if coin(&mut rng_url, 0.15) {
                path.push_str(&format!("?utm={}&ref=r{serial}", rng_url.gen_range(0..100)));
            }
            // News URLs: heavy-tailed comment volume.
            let w = power_law_int(&mut rng_url, 1.9, 1, 500) as f64;
            (format!("{scheme}://{domain}{path}"), w)
        };
        push_url(&mut urls, &mut seen_urls, &mut rng_url, &mut url_gen, url, domain, weight);
    }

    // ---- 4. Comment slots -------------------------------------------------
    // Authors: repeat each active user by count, shuffle.
    let mut slots: Vec<u32> = Vec::with_capacity(n_comments_total + 1024);
    for (g, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            slots.push(g as u32);
        }
    }
    let mut rng_c = StdRng::seed_from_u64(child_seed(cfg.seed, 7));
    for i in (1..slots.len()).rev() {
        slots.swap(i, rng_c.gen_range(0..=i));
    }

    // URL assignment: guarantee each URL ≥1 comment, distribute the rest
    // by weight. The two fringe URLs get their famous comment volumes.
    // The two fringe threads keep the paper's absolute comment volumes —
    // they are single-URL properties, so they do not scale with the world
    // (and must stay ahead of the synthetic long tail in Table 2's
    // median-volume ranking).
    let fringe_counts = [116usize, 95usize];
    // Every URL must receive at least one comment ("588k URLs that have
    // been commented upon"); extreme custom scales cannot violate that.
    assert!(
        slots.len() >= urls.len(),
        "scale too small: {} comment slots cannot cover {} URLs",
        slots.len(),
        urls.len()
    );
    let mut url_of_slot: Vec<u32> = Vec::with_capacity(slots.len());
    for u in 0..urls.len() {
        url_of_slot.push(u as u32);
    }
    // Fringe volumes are capped by the slots that remain after coverage so
    // truncation below can never drop a coverage entry.
    let mut spare = slots.len() - urls.len();
    for (f, &n) in fringe_counts.iter().enumerate() {
        let take = n.saturating_sub(1).min(spare);
        spare -= take;
        for _ in 0..take {
            url_of_slot.push(f as u32);
        }
    }
    if url_of_slot.len() < slots.len() {
        let weight_table = Categorical::new(
            &urls
                .iter()
                .enumerate()
                .map(|(i, u)| (i as u32, u.weight.max(0.001)))
                .collect::<Vec<_>>(),
        );
        while url_of_slot.len() < slots.len() {
            url_of_slot.push(*weight_table.sample(&mut rng_c));
        }
    }
    url_of_slot.truncate(slots.len());
    for i in (1..url_of_slot.len()).rev() {
        url_of_slot.swap(i, rng_c.gen_range(0..=i));
    }

    // ---- 5. Generate comments ---------------------------------------------
    let mut comment_gen = ObjectIdGen::new(EntityKind::Comment, child_seed(cfg.seed, 8));
    struct PendingComment {
        author_slot: u32,
        url_slot: u32,
        spec: CommentSpec,
        created: Timestamp,
        text: String,
    }
    let mut pending: Vec<PendingComment> = Vec::with_capacity(slots.len());
    // Track per-URL severity for the vote model.
    let mut url_severity: Vec<(f64, u32)> = vec![(0.0, 0); urls.len()];

    for (i, (&g, &u)) in slots.iter().zip(url_of_slot.iter()).enumerate() {
        let user_idx = truth.active_indices[g as usize];
        let url = &urls[u as usize];
        let heat = truth.user_heat[g as usize];
        let lang = if url.domain == "deutschland.de" {
            Lang::De
        } else {
            match world.user(user_idx).language.as_str() {
                "de" => Lang::De,
                "fr" => Lang::Fr,
                "es" => Lang::Es,
                "it" => Lang::It,
                _ => Lang::En,
            }
        };
        let mut spec = sample_spec(&mut rng_c, Community::Dissenter, heat, lang);
        // Bias conditioning applies directly to the comment's targets so
        // the Fig. 8 differences are strong enough for every ranked pair
        // to separate under a two-sample KS test (as in §4.4.4).
        spec.severe = (spec.severe * bias_severity_mult(url.bias)).min(0.98);
        spec.attack = (spec.attack * bias_attack_mult(url.bias)).min(0.98);
        let created = rng_c.gen_range(
            url.created.max(world.user(user_idx).created_at).min(STUDY_END - 2)..STUDY_END,
        );
        url_severity[u as usize].0 += spec.severe;
        url_severity[u as usize].1 += 1;
        let _ = i;
        pending.push(PendingComment { author_slot: g, url_slot: u, spec, created, text: String::new() });
    }
    // Texts are synthesized after (not inside) the sampling loop, each
    // comment on its own seed stream, so the pass shards across workers
    // without perturbing the structural rng_c stream.
    {
        let specs: Vec<CommentSpec> = pending.iter().map(|p| p.spec).collect();
        let texts = gen.generate_batch(&specs, child_seed(cfg.seed, 13), workers);
        for (p, text) in pending.iter_mut().zip(texts) {
            p.text = text;
        }
    }
    // The famous 90k-character comment: "ha" repeated, on a YouTube URL.
    if let Some((yt_idx, _)) = urls.iter().enumerate().find(|(_, u)| u.youtube) {
        let reps = ((45_000.0 * scale) as usize).max(200);
        let g = 0u32;
        pending.push(PendingComment {
            author_slot: g,
            url_slot: yt_idx as u32,
            spec: CommentSpec::benign(reps),
            created: STUDY_END - 86_400,
            text: "ha ".repeat(reps).trim_end().to_owned(),
        });
    }

    // NSFW / offensive labeling: offensive = top-rejection comments;
    // NSFW = author-chosen, biased toward high rejection but noisier.
    let n_off = cfg.n(paper::OFFENSIVE_COMMENTS).min(pending.len() / 10);
    let n_nsfw = cfg.n(paper::NSFW_COMMENTS).min(pending.len() / 10);
    let mut by_reject: Vec<usize> = (0..pending.len()).collect();
    by_reject.sort_by(|&a, &b| {
        pending[b]
            .spec
            .reject
            .partial_cmp(&pending[a].spec.reject)
            .expect("finite rejects")
    });
    let mut offensive_flags = vec![false; pending.len()];
    for &i in by_reject.iter().take(n_off) {
        offensive_flags[i] = true;
    }
    let mut nsfw_flags = vec![false; pending.len()];
    // NSFW is author-chosen and only *moderately* biased toward extreme
    // content (Fig. 4: 25% of NSFW exceeds 0.95 LTR vs <20% of all):
    // sample uniformly from the top quarter by rejection.
    let mut pool: Vec<usize> =
        by_reject[..(pending.len() / 5).max(n_nsfw.min(pending.len()))].to_vec();
    for i in (1..pool.len()).rev() {
        pool.swap(i, rng_c.gen_range(0..=i));
    }
    for &i in pool.iter().take(n_nsfw) {
        nsfw_flags[i] = true;
    }

    // ---- 6. Insert URLs and comments into the store ------------------------
    for u in &urls {
        let (title, description) = if u.youtube {
            ("/watch".to_owned(), String::new())
        } else if u.domain == "twitter.com" {
            (String::new(), String::new())
        } else {
            (
                format!("{} — article", u.domain),
                "synthetic first paragraph of the underlying page".to_owned(),
            )
        };
        world
            .dissenter
            .add_url(CommentUrl {
                id: u.id,
                url: u.url.clone(),
                title,
                description,
                created_at: u.created,
                upvotes: 0,
                downvotes: 0,
            })
            .expect("urls deduplicated at generation");
    }

    // Sort by creation time so replies can reference earlier comments.
    let mut order: Vec<usize> = (0..pending.len()).collect();
    order.sort_by_key(|&i| pending[i].created);
    let mut last_comment_in_thread: std::collections::HashMap<u32, Vec<ObjectId>> =
        std::collections::HashMap::new();
    for &i in &order {
        let p = &pending[i];
        let id = comment_gen.next(p.created);
        let author_id = world
            .user(truth.active_indices[p.author_slot as usize])
            .author_id
            .expect("active users are Dissenter users");
        let thread = last_comment_in_thread.entry(p.url_slot).or_default();
        let parent = if !thread.is_empty() && coin(&mut rng_c, 0.35) {
            Some(thread[rng_c.gen_range(0..thread.len())])
        } else {
            None
        };
        world.dissenter.add_comment(Comment {
            id,
            url_id: urls[p.url_slot as usize].id,
            author_id,
            parent,
            text: p.text.clone(),
            created_at: p.created,
            nsfw: nsfw_flags[i],
            offensive: offensive_flags[i],
        });
        thread.push(id);
        if thread.len() > 64 {
            thread.remove(0); // bound reply-candidate memory per thread
        }
    }

    // ---- 7. Votes (Fig. 5) --------------------------------------------------
    let mut rng_v = StdRng::seed_from_u64(child_seed(cfg.seed, 9));
    for (u, rec) in urls.iter().enumerate() {
        let (sev_sum, n) = url_severity[u];
        let mean_sev = if n > 0 { sev_sum / n as f64 } else { 0.0 };
        let s_norm = (mean_sev / 0.6).min(1.0);
        // Voting probability and magnitude both shrink with toxicity.
        if !coin(&mut rng_v, 0.32 * (1.0 - 0.75 * s_norm)) {
            continue;
        }
        let mut magnitude = geometric(&mut rng_v, (0.40 + 0.45 * s_norm).min(0.95), 40);
        // A thin tail of heavily-voted URLs keeps 99% (not 100%) of net
        // scores inside (−10, 10), as the paper reports.
        if coin(&mut rng_v, 0.012 * (1.0 - s_norm)) {
            magnitude = magnitude.saturating_mul(8 + geometric(&mut rng_v, 0.2, 40));
        }
        let negative = coin(&mut rng_v, 0.33 + 0.30 * s_norm);
        for _ in 0..magnitude {
            world
                .dissenter
                .vote(rec.id, if negative { platform::Vote::Down } else { platform::Vote::Up });
        }
        // Light cross-voting so up/down both appear on some URLs.
        if coin(&mut rng_v, 0.2) {
            let other = geometric(&mut rng_v, 0.8, 5);
            for _ in 0..other {
                world
                    .dissenter
                    .vote(rec.id, if negative { platform::Vote::Up } else { platform::Vote::Down });
            }
        }
    }

    // ---- 8. YouTube -----------------------------------------------------------
    let mut rng_y = StdRng::seed_from_u64(child_seed(cfg.seed, 10));
    let owner_pool: Vec<String> =
        (0..200).map(|i| format!("Channel{}", i)).collect();
    for rec in urls.iter().filter(|u| u.youtube) {
        let kind_roll: f64 = rng_y.gen();
        let kind = if kind_roll < 125.0 / 128.0 {
            YtKind::Video
        } else if kind_roll < 127.0 / 128.0 {
            YtKind::Channel
        } else {
            YtKind::User
        };
        let state = if kind == YtKind::Video && coin(&mut rng_y, 16.0 / 125.0) {
            let r: f64 = rng_y.gen();
            let reason = if r < 3.0 / 16.0 {
                YtUnavailableReason::Private
            } else if r < 6.0 / 16.0 {
                YtUnavailableReason::AccountTerminated
            } else if r < 6.4 / 16.0 {
                YtUnavailableReason::HateSpeechPolicy
            } else {
                YtUnavailableReason::Generic
            };
            YtState::Unavailable(reason)
        } else {
            let owner = {
                let r: f64 = rng_y.gen();
                if r < 0.024 {
                    "Fox News".to_owned()
                } else if r < 0.030 {
                    "CNN".to_owned()
                } else {
                    owner_pool[rng_y.gen_range(0..owner_pool.len())].clone()
                }
            };
            YtState::Active {
                title: format!("Synthetic video about {}", names::article_path(&mut rng_y)),
                owner,
                comments_disabled: coin(&mut rng_y, 0.104),
            }
        };
        world.youtube.put(&rec.url, YtContent { kind, state });
    }

    // ---- 9. Reddit mirror (Fig. 6, Table 3) -----------------------------------
    let mut rng_r = StdRng::seed_from_u64(child_seed(cfg.seed, 11));
    let active_set: std::collections::HashSet<u32> = truth.active_indices.iter().copied().collect();
    let mut reddit_pending: Vec<(String, CommentSpec)> = Vec::new();
    for &idx in &truth.dissenter_indices {
        if !coin(&mut rng_r, paper::REDDIT_MATCH_FRACTION) {
            continue;
        }
        let username = world.user(idx).username.clone();
        world.reddit.create_account(&username);
        let is_active_dissenter = active_set.contains(&idx);
        // Fig. 6: among users active on ≥1 platform, >1/3 Dissenter-only,
        // ~20% Reddit-only.
        // Calibrated so the Fig. 6 population (active on ≥1 platform)
        // splits ~36% Dissenter-only / ~20% Reddit-only as in the paper.
        let reddit_count: u64 = if is_active_dissenter {
            if coin(&mut rng_r, 0.45) {
                0 // Dissenter-only
            } else {
                power_law_int(&mut rng_r, 1.7, 1, 20_000)
            }
        } else if coin(&mut rng_r, 0.22) {
            power_law_int(&mut rng_r, 1.7, 1, 20_000) // Reddit-only
        } else {
            0
        };
        world.reddit.set_declared(&username, reddit_count);
        let materialize = (reddit_count as usize).min(cfg.reddit_texts_per_user_cap);
        for _ in 0..materialize {
            let heat = beta(&mut rng_r, 1.5, 7.0);
            let spec = sample_spec(&mut rng_r, Community::Reddit, heat, Lang::En);
            reddit_pending.push((username.clone(), spec));
        }
    }
    {
        let specs: Vec<CommentSpec> = reddit_pending.iter().map(|(_, s)| *s).collect();
        let texts = gen.generate_batch(&specs, child_seed(cfg.seed, 14), workers);
        for ((username, _), text) in reddit_pending.iter().zip(texts) {
            world.reddit.add_comment(username, text);
        }
    }

    // ---- 10. Baseline corpora ---------------------------------------------------
    let mut rng_b = StdRng::seed_from_u64(child_seed(cfg.seed, 12));
    let mut make_corpus = |name: &str, community: Community, n: usize, tag: u64| -> BaselineCorpus {
        let specs: Vec<CommentSpec> = (0..n)
            .map(|_| {
                let heat = beta(&mut rng_b, 1.5, 7.0);
                sample_spec(&mut rng_b, community, heat, Lang::En)
            })
            .collect();
        let comments = gen.generate_batch(&specs, child_seed(cfg.seed, tag), workers);
        BaselineCorpus { name: name.to_owned(), comments }
    };
    world.baselines.push(make_corpus("NY Times", Community::NyTimes, cfg.n_baseline(paper::NYT_COMMENTS), 15));
    world.baselines.push(make_corpus(
        "Daily Mail",
        Community::DailyMail,
        cfg.n_baseline(paper::DAILYMAIL_COMMENTS),
        16,
    ));

    (world, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    fn small_world() -> &'static (World, GroundTruth) {
        static WORLD: std::sync::OnceLock<(World, GroundTruth)> = std::sync::OnceLock::new();
        WORLD.get_or_init(|| generate(&WorldConfig::small()))
    }

    #[test]
    fn headline_counts_scale() {
        let (w, t) = small_world();
        let cfg = WorldConfig::small();
        let n_diss = w.dissenter_user_count();
        assert!((n_diss as f64 - cfg.n(paper::DISSENTER_USERS) as f64).abs() < 5.0, "{n_diss}");
        let total = w.dissenter.total_comments();
        let want = cfg.n(paper::COMMENTS);
        assert!(
            (total as f64) > 0.9 * want as f64 && (total as f64) < 1.2 * want as f64,
            "comments {total} want ~{want}"
        );
        assert!(w.dissenter.url_count() >= cfg.n(paper::URLS), "{}", w.dissenter.url_count());
        assert_eq!(t.active_indices.len(), w.dissenter.active_author_count().max(t.active_indices.len()));
    }

    #[test]
    fn active_fraction_near_half() {
        let (w, t) = small_world();
        let frac = t.active_indices.len() as f64 / w.dissenter_user_count() as f64;
        assert!((frac - 0.47).abs() < 0.05, "{frac}");
    }

    #[test]
    fn early_join_fraction() {
        let (w, _) = small_world();
        let cutoff = from_ymd(2019, 4, 1);
        let (mut early, mut total) = (0, 0);
        for u in &w.users {
            if let Some(aid) = u.author_id {
                total += 1;
                if aid.timestamp() < cutoff {
                    early += 1;
                }
            }
        }
        let frac = early as f64 / total as f64;
        assert!((frac - 0.77).abs() < 0.05, "{frac}");
    }

    #[test]
    fn comment_concentration_matches_fig3() {
        let (w, t) = small_world();
        let counts: Vec<u64> = t
            .active_indices
            .iter()
            .map(|&i| {
                let aid = w.user(i).author_id.expect("dissenter");
                w.dissenter.comments_for_author(aid).len() as u64
            })
            .collect();
        let f = stats::ecdf::fraction_for_share(&counts, 0.9);
        assert!((0.07..0.25).contains(&f), "90% of comments from {f} of active users");
    }

    #[test]
    fn deleted_accounts_leave_orphans() {
        let (w, _) = small_world();
        let deleted: Vec<&User> = w.users.iter().filter(|u| u.gab_deleted).collect();
        assert!(!deleted.is_empty());
        for u in deleted.iter().take(5) {
            assert!(u.author_id.is_some(), "deleted accounts were Dissenter users");
            assert!(w.gab.user_by_gab_id(u.gab_id).is_none(), "gone from the Gab API");
        }
    }

    #[test]
    fn admins_exist() {
        let (w, _) = small_world();
        let admins: Vec<&User> = w.users.iter().filter(|u| u.flags.is_admin).collect();
        assert_eq!(admins.len(), 2);
        let names: Vec<&str> = admins.iter().map(|u| u.username.as_str()).collect();
        assert!(names.contains(&"a") && names.contains(&"shadowknight412"), "{names:?}");
    }

    #[test]
    fn shadow_content_rates() {
        let (w, _) = small_world();
        let total = w.dissenter.total_comments() as f64;
        let nsfw = w.dissenter.comments().iter().filter(|c| c.nsfw).count() as f64;
        let off = w.dissenter.comments().iter().filter(|c| c.offensive).count() as f64;
        assert!((nsfw / total - 0.006).abs() < 0.004, "nsfw rate {}", nsfw / total);
        assert!((off / total - 0.005).abs() < 0.004, "offensive rate {}", off / total);
    }

    #[test]
    fn url_anomalies_present() {
        let (w, _) = small_world();
        let urls = w.dissenter.urls();
        assert!(urls.iter().any(|u| u.url.starts_with("file://")));
        assert!(urls.iter().any(|u| u.url.starts_with("chrome://")));
        let https = urls.iter().filter(|u| u.url.starts_with("https://")).count() as f64;
        let frac = https / urls.len() as f64;
        assert!(frac > 0.9, "https fraction {frac}");
    }

    #[test]
    fn youtube_states_cover_reasons() {
        let (w, _) = small_world();
        let mut kinds = std::collections::HashSet::new();
        let mut unavailable = 0usize;
        let mut total = 0usize;
        for (_, c) in w.youtube.iter() {
            kinds.insert(c.kind);
            total += 1;
            if matches!(c.state, YtState::Unavailable(_)) {
                unavailable += 1;
            }
        }
        assert!(total > 100, "{total}");
        assert!(kinds.contains(&YtKind::Video));
        let frac = unavailable as f64 / total as f64;
        assert!((0.05..0.25).contains(&frac), "unavailable {frac}");
    }

    #[test]
    fn reddit_match_rate() {
        let (w, _) = small_world();
        let frac = w.reddit.account_count() as f64 / w.dissenter_user_count() as f64;
        assert!((frac - 0.56).abs() < 0.05, "{frac}");
    }

    #[test]
    fn deterministic_world() {
        let (a, _) = generate(&WorldConfig { seed: 77, ..WorldConfig::small() });
        let (b, _) = generate(&WorldConfig { seed: 77, ..WorldConfig::small() });
        assert_eq!(a.dissenter.total_comments(), b.dissenter.total_comments());
        assert_eq!(a.dissenter.comments()[0].text, b.dissenter.comments()[0].text);
        assert_eq!(a.users.len(), b.users.len());
        assert_eq!(a.users[100].username, b.users[100].username);
    }

    #[test]
    fn sharded_world_identical_for_any_worker_count() {
        let cfg = WorldConfig { scale: Scale::Custom(0.003), ..WorldConfig::small() };
        let (serial, _) = generate_sharded(&cfg, 1);
        for workers in [2, 8] {
            let (par, _) = generate_sharded(&cfg, workers);
            assert_eq!(par.dissenter.total_comments(), serial.dissenter.total_comments());
            assert!(
                par.dissenter
                    .comments()
                    .iter()
                    .zip(serial.dissenter.comments())
                    .all(|(a, b)| a.text == b.text && a.id == b.id),
                "workers={workers}: comment stream diverged"
            );
            assert_eq!(par.baselines[0].comments, serial.baselines[0].comments);
            assert_eq!(par.baselines[1].comments, serial.baselines[1].comments);
        }
    }

    #[test]
    fn custom_tiny_scale_generates() {
        let cfg = WorldConfig { scale: Scale::Custom(0.004), ..WorldConfig::small() };
        let (w, t) = generate(&cfg);
        assert!(w.dissenter.total_comments() > 0);
        assert!(!t.core_author_ids.is_empty());
    }
}
