#!/usr/bin/env bash
# Seed-driven end-to-end simulation sweep (see crates/simcheck).
#
# Usage: scripts/simcheck.sh [COUNT] [START]
#   COUNT  number of seeded scenarios to run (default 50)
#   START  first seed (default 1)
#
# Failing scenarios are shrunk and written to simcheck/replays/ —
# commit the replay alongside the fix so tests/simcheck_replays.rs
# pins it forever.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run --release -p simcheck -- --count "${1:-50}" --start "${2:-1}"
