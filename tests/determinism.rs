//! Reproducibility contract: the same `(seed, scale)` pair yields an
//! identical world, crawl, and report; a different seed yields a
//! different world with the same calibrated shapes.

use dissenter_repro::synth::config::Scale;
use dissenter_repro::synth::{generate, WorldConfig};

fn cfg(seed: u64) -> WorldConfig {
    WorldConfig { seed, scale: Scale::Custom(0.002), ..WorldConfig::small() }
}

#[test]
fn same_seed_bit_identical_world() {
    let (a, ta) = generate(&cfg(1234));
    let (b, tb) = generate(&cfg(1234));
    assert_eq!(a.user_count(), b.user_count());
    assert_eq!(a.dissenter.total_comments(), b.dissenter.total_comments());
    assert_eq!(ta.core_author_ids, tb.core_author_ids);
    // Deep spot checks across subsystems.
    for i in [0usize, 7, 99] {
        assert_eq!(a.users[i].username, b.users[i].username);
        assert_eq!(a.users[i].gab_id, b.users[i].gab_id);
        let (ca, cb) = (&a.dissenter.comments()[i], &b.dissenter.comments()[i]);
        assert_eq!(ca.id, cb.id);
        assert_eq!(ca.text, cb.text);
        let (ua, ub) = (&a.dissenter.urls()[i], &b.dissenter.urls()[i]);
        assert_eq!(ua.url, ub.url);
        assert_eq!((ua.upvotes, ua.downvotes), (ub.upvotes, ub.downvotes));
    }
    assert_eq!(a.gab.edge_count(), b.gab.edge_count());
    assert_eq!(a.baselines[0].comments[0], b.baselines[0].comments[0]);
}

#[test]
fn different_seed_different_world_same_shapes() {
    let (a, _) = generate(&cfg(1));
    let (b, _) = generate(&cfg(2));
    // Different content…
    assert_ne!(a.dissenter.comments()[0].text, b.dissenter.comments()[0].text);
    assert_ne!(a.users[5].username, b.users[5].username);
    // …but the same calibrated aggregate shapes.
    let active = |w: &platform::World| {
        w.dissenter.active_author_count() as f64 / w.dissenter_user_count() as f64
    };
    assert!((active(&a) - active(&b)).abs() < 0.05);
    let nsfw = |w: &platform::World| {
        w.dissenter.comments().iter().filter(|c| c.nsfw).count() as f64
            / w.dissenter.total_comments() as f64
    };
    assert!((nsfw(&a) - nsfw(&b)).abs() < 0.01);
}

#[test]
fn full_study_is_deterministic_end_to_end() {
    use dissenter_repro::dissenter_core::run_study;
    let c = dissenter_repro::dissenter_core::Study::builder()
        .scale(Scale::Custom(0.0015))
        .svm(false)
        .build()
        .expect("determinism config is valid");
    let a = run_study(&c);
    let b = run_study(&c);
    assert_eq!(a.report.overview.comments, b.report.overview.comments);
    assert_eq!(a.report.overview.nsfw_comments, b.report.overview.nsfw_comments);
    assert_eq!(a.report.social.users, b.report.social.users);
    assert_eq!(a.report.social.core.size(), b.report.social.core.size());
    // Scored distributions identical (the crawl and scoring are
    // deterministic even though they ran over real TCP with threads).
    let q = |s: &dissenter_repro::dissenter_core::Study| {
        s.report.figure7[0].severe_toxicity.quantile(0.9).unwrap()
    };
    assert_eq!(q(&a), q(&b));
}
