#![warn(missing_docs)]
//! The public pipeline: generate → serve → crawl → classify → analyze.
//!
//! [`run_study`] is the one-call entry point reproducing the entire paper:
//! it synthesizes a world at the configured scale, serves it over loopback
//! HTTP as four services (Dissenter, Gab, Reddit, rendered YouTube), runs
//! the §3 measurement methodology against those services, scores every
//! comment with the §3.5 classification stack (dictionary, Perspective
//! stand-in, SVM), and assembles every §4 table and figure into a
//! [`Study`].
//!
//! ```no_run
//! use dissenter_core::Study;
//!
//! let cfg = Study::builder().build().expect("valid study config");
//! let study = dissenter_core::run_study(&cfg);
//! println!("{}", dissenter_core::render::overview(&study));
//! assert!(study.report.overview.comments > 0);
//! ```

pub mod experiments;
pub mod longitudinal;
pub mod membudget;
pub mod render;
pub mod runstats;
pub mod svm_exp;

use analysis::report::{build_report_pooled_opts, ReportOptions, StudyReport};
use crawler::{CrawlConfig, CrawlStore, Crawler, Endpoints};
use std::sync::Arc;
use synth::config::Scale;
use synth::WorldConfig;
use webfront::SimServices;

pub use membudget::{peak_rss_bytes, MemoryBudget};
pub use runstats::RunStats;
pub use svm_exp::SvmReport;

/// End-to-end study configuration.
///
/// Construct via [`Study::builder`] — the builder validates every knob
/// and is the only supported way to compose new configurations. The
/// struct stays public (and field-updatable) so differential harnesses
/// can derive variant configs from a validated base.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// World generation parameters.
    pub world: WorldConfig,
    /// Crawl tuning.
    pub crawl: CrawlConfig,
    /// Worker threads for CPU-bound stages (synth text generation,
    /// comment scoring, SVM cross-validation/application). Output is
    /// byte-identical for every value; see DESIGN.md "Sharding".
    pub workers: usize,
    /// Size of the synthetic labeled corpus for the SVM experiment
    /// (the Davidson corpus is 37,718 samples; scale to taste).
    pub svm_corpus: usize,
    /// Skip the SVM experiment (it is the most CPU-intensive stage).
    pub skip_svm: bool,
    /// Fault injection applied to every simulated service — run the whole
    /// study through an adverse network to exercise the crawler's
    /// resilience layer. Defaults to no faults.
    pub faults: httpnet::FaultConfig,
    /// Route the report's whole-corpus table aggregations through the
    /// external-merge spill path ([`analysis::spill`]): bounded resident
    /// memory, byte-identical output. Figure inputs always stream
    /// through [`stats::EcdfSketch`]es regardless of this flag.
    pub out_of_core: bool,
    /// Peak-RSS ceiling enforced at stage boundaries (see
    /// [`MemoryBudget`]). Default: unlimited.
    pub memory_budget: MemoryBudget,
    /// Journal the crawl to this directory (segmented WAL + snapshots;
    /// see `crawler::journal`). Default: in-memory only.
    pub journal_dir: Option<std::path::PathBuf>,
    /// Capacity of the client revalidation cache, enabling conditional
    /// re-fetches (`304 Not Modified`). Default: off.
    pub revalidation: Option<usize>,
}

impl StudyConfig {
    /// Test-sized configuration.
    #[deprecated(since = "0.10.0", note = "compose via `Study::builder()` instead")]
    pub fn small() -> Self {
        Study::builder().build().expect("default builder config is valid")
    }

    /// Configuration at an arbitrary scale.
    #[deprecated(since = "0.10.0", note = "compose via `Study::builder().scale(..)` instead")]
    pub fn at_scale(scale: Scale) -> Self {
        Study::builder().scale(scale).build().expect("default builder config is valid")
    }
}

/// Validated, fluent construction of a [`StudyConfig`].
///
/// Every setter records its value; [`build`](StudyBuilder::build)
/// validates the composition and returns all problems at once. The
/// defaults are the test-sized configuration (small world, 8 workers,
/// SVM on, clean network, in-memory everything).
///
/// ```
/// use dissenter_core::{MemoryBudget, Study};
/// use synth::Scale;
///
/// let cfg = Study::builder()
///     .scale(Scale::Custom(0.01))
///     .workers(4)
///     .svm(false)
///     .out_of_core(true)
///     .memory_budget(MemoryBudget::gib(4.0))
///     .build()
///     .expect("valid study config");
/// assert!(cfg.skip_svm);
/// ```
#[derive(Debug, Clone)]
pub struct StudyBuilder {
    cfg: StudyConfig,
    errors: Vec<String>,
}

impl Default for StudyBuilder {
    fn default() -> Self {
        Self {
            cfg: StudyConfig {
                world: WorldConfig::small(),
                crawl: CrawlConfig::default(),
                workers: 8,
                svm_corpus: 2_000,
                skip_svm: false,
                faults: httpnet::FaultConfig::none(),
                out_of_core: false,
                memory_budget: MemoryBudget::unlimited(),
                journal_dir: None,
                revalidation: None,
            },
            errors: Vec::new(),
        }
    }
}

impl StudyBuilder {
    /// World scale (`Scale::Custom` factors must be finite and positive).
    pub fn scale(mut self, scale: Scale) -> Self {
        let f = scale.factor();
        if !f.is_finite() || f <= 0.0 {
            self.errors.push(format!("scale factor must be finite and > 0, got {f}"));
        }
        self.cfg.world.scale = scale;
        self
    }

    /// World seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.world.seed = seed;
        self
    }

    /// Replace the whole world configuration (seed, scale, caps).
    pub fn world(mut self, world: WorldConfig) -> Self {
        self.cfg.world = world;
        self
    }

    /// CPU-bound stage workers (1..=1024; output is byte-identical for
    /// every value).
    pub fn workers(mut self, workers: usize) -> Self {
        if !(1..=1024).contains(&workers) {
            self.errors.push(format!("workers must be in 1..=1024, got {workers}"));
        }
        self.cfg.workers = workers;
        self
    }

    /// Parallel crawl connections per phase (1..=1024).
    pub fn crawl_workers(mut self, workers: usize) -> Self {
        if !(1..=1024).contains(&workers) {
            self.errors.push(format!("crawl workers must be in 1..=1024, got {workers}"));
        }
        self.cfg.crawl.workers = workers;
        self
    }

    /// Extra attempts for failed crawl requests.
    pub fn retries(mut self, retries: usize) -> Self {
        self.cfg.crawl.retries = retries;
        self
    }

    /// Backoff between crawl retries.
    pub fn backoff(mut self, backoff: std::time::Duration) -> Self {
        self.cfg.crawl.backoff = backoff;
        self
    }

    /// Replace the whole crawl configuration.
    pub fn crawl(mut self, crawl: CrawlConfig) -> Self {
        self.cfg.crawl = crawl;
        self
    }

    /// Fault injection for every simulated service (probabilities must
    /// lie in `[0, 1]`).
    pub fn faults(mut self, faults: httpnet::FaultConfig) -> Self {
        for (name, p) in [
            ("drop_prob", faults.drop_prob),
            ("error_prob", faults.error_prob),
            ("truncate_prob", faults.truncate_prob),
            ("reset_prob", faults.reset_prob),
            ("stall_prob", faults.stall_prob),
            ("malformed_prob", faults.malformed_prob),
            ("rate_limit_prob", faults.rate_limit_prob),
            ("unavailable_prob", faults.unavailable_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                self.errors.push(format!("fault {name} must be in [0, 1], got {p}"));
            }
        }
        self.cfg.faults = faults;
        self
    }

    /// Run (or skip) the SVM experiment.
    pub fn svm(mut self, enabled: bool) -> Self {
        self.cfg.skip_svm = !enabled;
        self
    }

    /// Labeled-corpus size for the SVM experiment (≥ 10).
    pub fn svm_corpus(mut self, n: usize) -> Self {
        if n < 10 {
            self.errors.push(format!("svm corpus must hold at least 10 samples, got {n}"));
        }
        self.cfg.svm_corpus = n;
        self
    }

    /// Journal the crawl (WAL + snapshots) under `dir`.
    pub fn journal(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cfg.journal_dir = Some(dir.into());
        self
    }

    /// Enable the client revalidation cache with `capacity` entries
    /// (≥ 1).
    pub fn revalidation(mut self, capacity: usize) -> Self {
        if capacity == 0 {
            self.errors.push("revalidation cache capacity must be at least 1".to_owned());
        }
        self.cfg.revalidation = Some(capacity);
        self
    }

    /// Enforce a peak-RSS ceiling at stage boundaries.
    pub fn memory_budget(mut self, budget: MemoryBudget) -> Self {
        if let Some(c) = budget.ceiling_bytes() {
            if c < 64 * 1024 * 1024 {
                self.errors.push(format!(
                    "memory budget ceiling below 64 MiB cannot hold a study, got {c} bytes"
                ));
            }
        }
        self.cfg.memory_budget = budget;
        self
    }

    /// Route report table aggregations through the spill path.
    pub fn out_of_core(mut self, on: bool) -> Self {
        self.cfg.out_of_core = on;
        self
    }

    /// Validate the composition; returns every recorded problem at once.
    pub fn build(self) -> Result<StudyConfig, String> {
        if self.errors.is_empty() {
            Ok(self.cfg)
        } else {
            Err(format!("invalid study config: {}", self.errors.join("; ")))
        }
    }
}

/// The complete study output.
#[derive(Debug)]
pub struct Study {
    /// Every §4 table and figure.
    pub report: StudyReport,
    /// The §3.5.3 SVM experiment (None when skipped).
    pub svm: Option<SvmReport>,
    /// The raw crawl mirror.
    pub store: CrawlStore,
    /// The scale factor the world was generated at.
    pub scale_factor: f64,
    /// Run observability: stage wall-clocks, per-phase crawl coverage,
    /// per-scorer throughput, peak RSS, the full metric snapshot, and
    /// the event trace.
    pub runstats: RunStats,
}

impl Study {
    /// Start composing a [`StudyConfig`] with validated setters.
    pub fn builder() -> StudyBuilder {
        StudyBuilder::default()
    }
}

/// Comment count between memory-budget probes inside the synth stream.
const SYNTH_BUDGET_CHECK_EVERY: usize = 100_000;

/// Run the full pipeline.
///
/// CPU-bound stages (synth text generation, comment scoring, SVM
/// cross-validation and application) shard onto `cfg.workers` threads;
/// shard geometry and seed streams are keyed by stable ids, so the
/// resulting [`Study`] is byte-identical at any worker count.
///
/// The world is drained from a streaming [`synth::WorldSource`] batch by
/// batch (never more than one batch of comment texts in flight), and
/// `cfg.memory_budget` is enforced at every stage boundary plus every
/// ~100k streamed comments — a ceiling violation aborts the run naming
/// the stage that crossed it. The measured peak lands in
/// [`RunStats::peak_rss_bytes`].
pub fn run_study(cfg: &StudyConfig) -> Study {
    let metrics = obs::Registry::new();
    let budget = cfg.memory_budget;
    let workers = cfg.workers.max(1);
    // One pool shared by every scoring stage (report + SVM experiment).
    let pool = httpnet::ThreadPool::with_metrics(workers, workers * 2, Some(&metrics));

    let span = metrics.span("stage.synth");
    let source = synth::WorldSource::new(&cfg.world, workers);
    let mut world = platform::World::new();
    let mut since_check = 0usize;
    for batch in source {
        since_check += batch.len();
        batch.apply(&mut world);
        if since_check >= SYNTH_BUDGET_CHECK_EVERY {
            since_check = 0;
            budget.check("synth");
        }
    }
    span.finish();
    budget.check("synth");
    let world = Arc::new(world);

    let span = metrics.span("stage.serve");
    let server_config = httpnet::ServerConfig {
        faults: cfg.faults,
        metrics: Some(metrics.clone()),
        ..crawler::default_server_config()
    };
    let services = SimServices::start(world.clone(), server_config)
        .expect("failed to start simulated services");
    span.finish();
    budget.check("serve");

    let mut crawler = Crawler::new(Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config = cfg.crawl.clone();
    crawler.metrics = metrics.clone();
    if let Some(capacity) = cfg.revalidation {
        crawler.enable_revalidation(capacity);
    }
    // Scale the enumeration stop-window with the world (IDs are sparse).
    crawler.config.enum_gap_tolerance = crawler
        .config
        .enum_gap_tolerance
        .min((world.gab.max_id() / 4).max(512));
    let span = metrics.span("stage.crawl");
    let store = match &cfg.journal_dir {
        Some(dir) => crawler
            .full_crawl_durable(dir, &crawler::DurableConfig::default())
            .expect("journaled crawl I/O"),
        None => crawler.full_crawl(),
    };
    span.finish();
    budget.check("crawl");

    // The crawl is over: shut the services down and free the served
    // world before the analysis stages. Only the baseline corpus is
    // needed from here on, and at paper scale the world's comment
    // texts are one of the two dominant resident copies (the other is
    // the crawl mirror, which *is* the dataset under analysis).
    drop(services);
    let baselines = match Arc::try_unwrap(world) {
        Ok(world) => world.baselines,
        // A front kept a handle past shutdown; keep the world alive
        // rather than fail, at the cost of the clone.
        Err(world) => world.baselines.clone(),
    };

    let span = metrics.span("stage.report");
    let report_options = ReportOptions {
        out_of_core: cfg.out_of_core,
        ..ReportOptions::default()
    };
    let report =
        build_report_pooled_opts(&store, &baselines, &pool, Some(&metrics), &report_options);
    span.finish();
    budget.check("report");

    let svm = (!cfg.skip_svm).then(|| {
        let span = metrics.span("stage.svm");
        let r = svm_exp::run_svm_experiment_pooled(
            &store,
            cfg.svm_corpus,
            cfg.world.seed,
            &pool,
            Some(&metrics),
        );
        span.finish();
        r
    });
    let peak = budget.check("svm");
    metrics.set_gauge("mem.peak_rss_bytes", peak as f64);

    let runstats = runstats::collect(&metrics);
    Study { report, svm, store, scale_factor: cfg.world.scale.factor(), runstats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_and_collects_every_error() {
        let err = Study::builder()
            .scale(Scale::Custom(-1.0))
            .workers(0)
            .svm_corpus(3)
            .revalidation(0)
            .faults(httpnet::FaultConfig { drop_prob: 1.5, ..httpnet::FaultConfig::none() })
            .build()
            .expect_err("invalid knobs must not build");
        for needle in ["scale factor", "workers", "svm corpus", "revalidation", "drop_prob"] {
            assert!(err.contains(needle), "error must mention {needle}: {err}");
        }
    }

    #[test]
    fn builder_composes_the_full_surface() {
        let cfg = Study::builder()
            .seed(99)
            .scale(Scale::Custom(0.01))
            .workers(4)
            .crawl_workers(2)
            .retries(5)
            .backoff(std::time::Duration::from_millis(2))
            .svm(false)
            .journal("/tmp/does-not-run")
            .revalidation(256)
            .memory_budget(MemoryBudget::gib(4.0))
            .out_of_core(true)
            .build()
            .expect("valid study config");
        assert_eq!(cfg.world.seed, 99);
        assert_eq!(cfg.crawl.workers, 2);
        assert_eq!(cfg.crawl.retries, 5);
        assert!(cfg.skip_svm && cfg.out_of_core);
        assert_eq!(cfg.revalidation, Some(256));
        assert_eq!(cfg.memory_budget.ceiling_bytes(), Some(4 * (1u64 << 30)));
        assert!(cfg.journal_dir.is_some());
    }

    #[test]
    fn deprecated_shims_match_the_builder_defaults() {
        #[allow(deprecated)]
        let shim = StudyConfig::small();
        let built = Study::builder().build().expect("valid");
        assert_eq!(shim.workers, built.workers);
        assert_eq!(shim.svm_corpus, built.svm_corpus);
        assert_eq!(shim.world.seed, built.world.seed);
    }

    #[test]
    fn tiny_study_runs_end_to_end() {
        let cfg = Study::builder()
            .scale(Scale::Custom(0.002))
            .svm_corpus(400)
            .build()
            .expect("valid study config");
        let study = run_study(&cfg);
        assert!(study.report.overview.comments > 100);
        assert!(study.report.overview.urls > 50);
        assert!(study.svm.as_ref().expect("svm ran").cv_f1 > 0.5);
        // Every figure section materialized.
        assert_eq!(study.report.figure7.len(), 4);
        assert!(!study.report.figure8.severe_by_bias.is_empty());
        assert!(study.report.social.users > 0);
    }

    #[test]
    fn runstats_are_fully_populated() {
        let cfg = Study::builder()
            .scale(Scale::Custom(0.002))
            .svm_corpus(400)
            .build()
            .expect("valid study config");
        let study = run_study(&cfg);
        let rs = &study.runstats;

        // The memory probe recorded a real peak (Linux runners).
        assert!(rs.peak_rss_bytes > 1024 * 1024, "peak RSS recorded: {}", rs.peak_rss_bytes);

        // Every pipeline stage ran under a span.
        let stages: Vec<&str> = rs.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(stages, vec!["synth", "serve", "crawl", "report", "svm"]);
        assert!(rs.stages.iter().all(|s| s.wall_us > 0), "stages take nonzero time: {rs:?}");

        // Every crawl phase did work and balanced its books.
        assert_eq!(rs.phases.len(), 7);
        for p in &rs.phases {
            assert!(p.attempted > 0, "phase {} attempted nothing", p.name);
            assert_eq!(p.attempted, p.succeeded + p.dead_lettered, "{}", p.name);
        }

        // Every scorer is represented with comment counts.
        let mut scorers: Vec<&str> = rs.scorers.iter().map(|s| s.name.as_str()).collect();
        scorers.sort_unstable();
        assert_eq!(scorers, vec!["dictionary", "perspective", "svm"]);
        assert!(rs.scorers.iter().all(|s| s.comments > 0), "scorers scored: {:?}", rs.scorers);

        // Every sharded stage accounted for its scatter.
        let shards: Vec<&str> = rs.shards.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(shards, vec!["classify.score", "svm.apply", "svm.cv"]);
        assert!(rs.shards.iter().all(|s| s.jobs > 0), "shards ran: {:?}", rs.shards);

        // The wire instrumentation recorded latency for every service.
        for service in ["dissenter", "gab", "reddit", "youtube"] {
            let h = rs
                .snapshot
                .histogram(&format!("http.{service}.latency"))
                .unwrap_or_else(|| panic!("latency histogram for {service}"));
            assert!(h.count > 0 && h.sum_ns > 0, "{service} latency empty: {h:?}");
        }

        // The event trace captured the stage spans as JSONL.
        assert!(rs.events_jsonl.lines().count() >= 5);
        assert!(rs.events_jsonl.contains("\"event\":\"span\""));

        // The rendered table mentions each section.
        let table = render::runstats(&study);
        for needle in ["stage wall-clock", "crawl coverage", "scorer throughput", "latency"] {
            assert!(table.contains(needle), "runstats table missing {needle}:\n{table}");
        }
    }

    #[test]
    fn same_seed_runs_report_identical_counters() {
        // Counters are the deterministic half of the observability split:
        // two studies from the same seed must agree on every counter even
        // though gauges and histograms (wall-clock) may differ.
        let cfg = Study::builder()
            .scale(Scale::Custom(0.002))
            .svm(false)
            .build()
            .expect("valid study config");
        let a = run_study(&cfg);
        let b = run_study(&cfg);
        assert_eq!(
            a.runstats.snapshot.counters, b.runstats.snapshot.counters,
            "same-seed counter sets must be identical"
        );
        assert!(!a.runstats.snapshot.counters.is_empty());
    }

    #[test]
    fn out_of_core_study_is_byte_identical() {
        let base = Study::builder()
            .scale(Scale::Custom(0.002))
            .svm(false)
            .build()
            .expect("valid study config");
        let ooc = Study::builder()
            .scale(Scale::Custom(0.002))
            .svm(false)
            .out_of_core(true)
            .memory_budget(MemoryBudget::gib(64.0))
            .build()
            .expect("valid study config");
        let a = run_study(&base);
        let b = run_study(&ooc);
        assert_eq!(
            render::deterministic(&a),
            render::deterministic(&b),
            "spilled tables must not change a single report byte"
        );
        assert!(b.runstats.peak_rss_bytes > 0, "budgeted run recorded its peak");
    }

    #[test]
    fn journaled_revalidating_study_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("dissenter-study-journal-{}", std::process::id()));
        let base = Study::builder()
            .scale(Scale::Custom(0.002))
            .svm(false)
            .build()
            .expect("valid study config");
        let durable = Study::builder()
            .scale(Scale::Custom(0.002))
            .svm(false)
            .journal(&dir)
            .revalidation(1024)
            .build()
            .expect("valid study config");
        let a = run_study(&base);
        let b = run_study(&durable);
        assert_eq!(
            render::deterministic(&a),
            render::deterministic(&b),
            "journaling + revalidation must not change a single report byte"
        );
        assert!(dir.exists(), "journal directory written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn study_survives_an_adverse_network() {
        let cfg = Study::builder()
            .scale(Scale::Custom(0.002))
            .svm(false)
            .retries(8)
            .backoff(std::time::Duration::from_millis(1))
            .faults(httpnet::FaultConfig {
                drop_prob: 0.05,
                error_prob: 0.05,
                seed: 3,
                ..httpnet::FaultConfig::none()
            })
            .build()
            .expect("valid study config");
        let study = run_study(&cfg);
        assert!(study.report.overview.comments > 100);
        assert!(
            study.store.dead_letters().is_empty(),
            "8 retries must ride out a 10% fault rate"
        );
    }
}
