//! Phase 6 — the Gab-proxy social crawl (§3.4).
//!
//! Dissenter exposes no follower data; the paper walks the Gab API's
//! paginated follower/following lists for every Dissenter user, honoring
//! the advertised rate limits, then induces the Dissenter-specific
//! subgraph by dropping non-Dissenter endpoints.

use crate::resilience::{Phase, PhaseRun};
use crate::store::CrawlStore;
use crate::Crawler;
use ids::ObjectId;
use std::collections::{HashMap, HashSet};

const PAGE_SIZE: usize = 80;

/// Crawl followers and following for every Dissenter user and build the
/// induced edge set.
pub fn crawl_social(crawler: &Crawler, store: &mut CrawlStore) {
    // gab_id per crawled username (ghost users have none — their Gab
    // accounts are gone, so the API cannot serve their relationships).
    let gab_id_by_username: HashMap<&str, u64> =
        store.gab_accounts.iter().map(|a| (a.username.as_str(), a.gab_id)).collect();
    let author_by_username: HashMap<&str, ObjectId> =
        store.users.values().map(|u| (u.username.as_str(), u.author_id)).collect();
    let dissenter_names: HashSet<&str> =
        store.users.values().map(|u| u.username.as_str()).collect();

    let mut targets: Vec<(String, u64)> = store
        .users
        .values()
        .filter_map(|u| gab_id_by_username.get(u.username.as_str()).map(|&g| (u.username.clone(), g)))
        .collect();
    // Sorted work list so the request order (and thus retry/dead-letter
    // accounting) is reproducible run to run.
    targets.sort();

    let run = PhaseRun::new(crawler, Phase::Social);
    let edge_lists = crate::parallel::parallel_fetch(
        crawler.endpoints.gab,
        &targets,
        crawler.config.workers,
        &store.stats,
        |c| run.setup_client(c),
        |client, (username, gab_id)| {
            let mut edges: Vec<(String, String)> = Vec::new();
            for (endpoint, incoming) in [("followers", true), ("following", false)] {
                let mut page = 0usize;
                loop {
                    let target = format!("/api/v1/accounts/{gab_id}/{endpoint}?page={page}");
                    let Some(resp) = run.fetch(client, store, &target) else {
                        break;
                    };
                    if !resp.status.is_success() {
                        break;
                    }
                    let Ok(v) = jsonlite::parse(&resp.text()) else { break };
                    let items = v.as_array().unwrap_or(&[]).to_vec();
                    let n = items.len();
                    for item in items {
                        if let Some(peer) = item.get("username").and_then(|u| u.as_str()) {
                            if incoming {
                                edges.push((peer.to_owned(), username.clone()));
                            } else {
                                edges.push((username.clone(), peer.to_owned()));
                            }
                        }
                    }
                    if n < PAGE_SIZE {
                        break;
                    }
                    page += 1;
                }
            }
            Some(edges)
        },
    );

    // Induce the Dissenter-only graph; crawling both directions sees each
    // edge up to twice, so dedupe.
    let mut seen: HashSet<(ObjectId, ObjectId)> = HashSet::new();
    let mut edges = Vec::new();
    for (from, to) in edge_lists.into_iter().flatten() {
        if !dissenter_names.contains(from.as_str()) || !dissenter_names.contains(to.as_str()) {
            continue;
        }
        let (Some(&fa), Some(&ta)) =
            (author_by_username.get(from.as_str()), author_by_username.get(to.as_str()))
        else {
            continue;
        };
        if seen.insert((fa, ta)) {
            edges.push((fa, ta));
        }
    }
    // The per-user edge lists are collected in worker-completion order;
    // sort so the stored graph is identical for any crawl worker count.
    edges.sort_unstable();
    store.follow_edges = edges;
}
