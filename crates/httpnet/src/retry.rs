//! Retry policy for resilient fetches: exponential backoff with seeded
//! jitter, a total-elapsed cap, status-aware classification of what is
//! worth retrying, and `Retry-After` honoring.
//!
//! This replaces the fixed sleep-and-loop the crawler's §4.3.1
//! re-request path originally used. Jitter is drawn from a per-call
//! seeded generator, so the sleep schedule — like the fault injector on
//! the other side of the wire — is a pure function of configuration.

use crate::http::{Response, Status};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// What a response status means for the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusClass {
    /// Delivered: hand the response to the caller (2xx, 3xx, and 4xx
    /// other than 429 — a 404 is data to this crawler, not a failure).
    Deliver,
    /// Transient server-side trouble (5xx): retry with backoff.
    Retryable,
    /// Throttled (429): retry after the advertised or computed delay.
    Throttled,
}

/// Classify a status for the retry loop.
pub fn classify_status(status: Status) -> StatusClass {
    match status.0 {
        429 => StatusClass::Throttled,
        s if s >= 500 => StatusClass::Retryable,
        _ => StatusClass::Deliver,
    }
}

/// Upper bound on any honored `Retry-After` delay. RFC 9110 allows both
/// delta-seconds and an absolute HTTP-date, and a hostile or misconfigured
/// peer can advertise either arbitrarily far in the future; anything past
/// this cap is clamped (and flagged, so callers can count it).
pub const MAX_RETRY_AFTER: Duration = Duration::from_secs(3600);

/// A parsed `Retry-After` header: the delay to honor plus whether the
/// advertised value was absurd enough to hit [`MAX_RETRY_AFTER`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryAfter {
    /// The delay to honor (already clamped).
    pub delay: Duration,
    /// The advertised value exceeded [`MAX_RETRY_AFTER`] and was clamped.
    pub clamped: bool,
}

/// Parse a `Retry-After` header value. Accepts both RFC 9110 forms:
/// delta-seconds (fractional values accepted — the simulated servers use
/// them to keep tests fast) and an IMF-fixdate HTTP-date (interpreted
/// relative to the wall clock; dates in the past mean "now"). Negative,
/// non-finite, and unparseable values yield `None`; absurd durations are
/// clamped to [`MAX_RETRY_AFTER`] with `clamped` set.
pub fn parse_retry_after_detailed(resp: &Response) -> Option<RetryAfter> {
    let raw = resp.headers.get("retry-after")?.trim();
    let secs = match raw.parse::<f64>() {
        Ok(s) if s.is_finite() && s >= 0.0 => s,
        Ok(_) => return None,
        Err(_) => {
            let when = http_date_epoch(raw)?;
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0);
            (when as f64 - now).max(0.0)
        }
    };
    if secs > MAX_RETRY_AFTER.as_secs_f64() {
        Some(RetryAfter { delay: MAX_RETRY_AFTER, clamped: true })
    } else {
        Some(RetryAfter { delay: Duration::from_secs_f64(secs), clamped: false })
    }
}

/// [`parse_retry_after_detailed`] without the clamp flag.
pub fn parse_retry_after(resp: &Response) -> Option<Duration> {
    parse_retry_after_detailed(resp).map(|r| r.delay)
}

/// Parse an IMF-fixdate HTTP-date (`Sun, 06 Nov 1994 08:49:37 GMT`) to
/// epoch seconds. The weekday prefix is optional and unchecked (it is
/// redundant); only GMT/UTC zones are accepted.
fn http_date_epoch(s: &str) -> Option<i64> {
    let rest = match s.find(',') {
        Some(i) => s[i + 1..].trim_start(),
        None => s,
    };
    let mut parts = rest.split_ascii_whitespace();
    let day: u32 = parts.next()?.parse().ok()?;
    let month = month_number(parts.next()?)?;
    let year: i64 = parts.next()?.parse().ok()?;
    let mut hms = parts.next()?.split(':');
    let h: i64 = hms.next()?.parse().ok()?;
    let m: i64 = hms.next()?.parse().ok()?;
    let sec: i64 = hms.next()?.parse().ok()?;
    if hms.next().is_some() || !matches!(parts.next(), Some("GMT" | "UTC")) {
        return None;
    }
    if !(1..=31).contains(&day) || h > 23 || m > 59 || sec > 60 {
        return None;
    }
    Some(days_from_civil(year, month, day) * 86_400 + h * 3600 + m * 60 + sec)
}

fn month_number(name: &str) -> Option<u32> {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    MONTHS.iter().position(|m| m.eq_ignore_ascii_case(name)).map(|i| i as u32 + 1)
}

/// Days since 1970-01-01 for a proleptic-Gregorian civil date (Howard
/// Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = y.div_euclid(400);
    let yoe = y - era * 400;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) as i64 + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Exponential-backoff retry policy.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra attempts after the first (total attempts = `max_retries + 1`).
    pub max_retries: usize,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Cap on any single backoff sleep (also bounds honored
    /// `Retry-After` values).
    pub max_backoff: Duration,
    /// Total time budget: once exceeded, no further retries are made.
    pub max_elapsed: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_millis(20),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            max_elapsed: Duration::from_secs(30),
            jitter: 0.2,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with no waiting at all — useful in tests that only care
    /// about attempt counts.
    pub fn immediate(max_retries: usize) -> Self {
        Self {
            max_retries,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            ..Self::default()
        }
    }

    /// Start the jitter stream for one logical fetch.
    pub fn jitter_rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// The backoff before retry number `retry` (0-based), jittered and
    /// capped. `rng` must be the stream from [`Self::jitter_rng`],
    /// advanced once per sleep, so schedules replay exactly per seed.
    pub fn backoff(&self, retry: usize, rng: &mut StdRng) -> Duration {
        let exp = self.base_backoff.as_secs_f64() * self.multiplier.powi(retry as i32);
        let capped = exp.min(self.max_backoff.as_secs_f64());
        let factor = if self.jitter > 0.0 {
            1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0)
        } else {
            1.0
        };
        Duration::from_secs_f64((capped * factor).max(0.0))
    }

    /// The full sleep schedule for a fetch that exhausts every retry —
    /// handy for tests and capacity planning.
    pub fn schedule(&self) -> Vec<Duration> {
        let mut rng = self.jitter_rng();
        (0..self.max_retries).map(|i| self.backoff(i, &mut rng)).collect()
    }

    /// The delay before a retry prompted by `resp`: an advertised
    /// `Retry-After` (capped by `max_backoff`) wins over computed backoff.
    pub fn delay_for_response(
        &self,
        resp: &Response,
        retry: usize,
        rng: &mut StdRng,
    ) -> Duration {
        match parse_retry_after(resp) {
            Some(ra) => ra.min(self.max_backoff),
            None => self.backoff(retry, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Headers;

    fn resp_with_retry_after(value: &str) -> Response {
        let mut r = Response::status(Status::TOO_MANY);
        r.headers.add("Retry-After", value);
        r
    }

    #[test]
    fn classification_matches_crawl_semantics() {
        assert_eq!(classify_status(Status::OK), StatusClass::Deliver);
        assert_eq!(classify_status(Status(302)), StatusClass::Deliver);
        // 404 is a *data point* for the §3.1 probe, never retried.
        assert_eq!(classify_status(Status::NOT_FOUND), StatusClass::Deliver);
        assert_eq!(classify_status(Status(403)), StatusClass::Deliver);
        assert_eq!(classify_status(Status::TOO_MANY), StatusClass::Throttled);
        assert_eq!(classify_status(Status::INTERNAL), StatusClass::Retryable);
        assert_eq!(classify_status(Status(503)), StatusClass::Retryable);
        assert_eq!(classify_status(Status(599)), StatusClass::Retryable);
    }

    #[test]
    fn unjittered_schedule_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 6,
            base_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(100),
            jitter: 0.0,
            ..Default::default()
        };
        let ms: Vec<u128> = p.schedule().iter().map(|d| d.as_millis()).collect();
        assert_eq!(ms, vec![10, 20, 40, 80, 100, 100]);
    }

    #[test]
    fn jitter_stays_within_fraction() {
        let p = RetryPolicy {
            max_retries: 200,
            base_backoff: Duration::from_millis(100),
            multiplier: 1.0,
            max_backoff: Duration::from_secs(10),
            jitter: 0.25,
            seed: 11,
            ..Default::default()
        };
        let sched = p.schedule();
        let (lo, hi) = (Duration::from_millis(75), Duration::from_millis(125));
        assert!(sched.iter().all(|d| (lo..=hi).contains(d)));
        // Jitter actually varies the sleeps.
        assert!(sched.iter().any(|d| *d != sched[0]));
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = RetryPolicy { jitter: 0.5, seed: 7, max_retries: 50, ..Default::default() };
        assert_eq!(p.schedule(), p.schedule());
        let q = RetryPolicy { seed: 8, ..p };
        assert_ne!(p.schedule(), q.schedule());
    }

    #[test]
    fn retry_after_parses_integer_and_fractional_seconds() {
        assert_eq!(
            parse_retry_after(&resp_with_retry_after("2")),
            Some(Duration::from_secs(2))
        );
        assert_eq!(
            parse_retry_after(&resp_with_retry_after("0.25")),
            Some(Duration::from_millis(250))
        );
        assert_eq!(
            parse_retry_after(&resp_with_retry_after(" 1.5 ")),
            Some(Duration::from_millis(1500))
        );
    }

    #[test]
    fn retry_after_rejects_garbage() {
        for bad in ["soon", "-1", "inf", "NaN", ""] {
            assert_eq!(parse_retry_after(&resp_with_retry_after(bad)), None, "{bad:?}");
        }
        let bare = Response { status: Status::TOO_MANY, headers: Headers::new(), body: Vec::new() };
        assert_eq!(parse_retry_after(&bare), None);
    }

    /// Inverse of `days_from_civil` (Hinnant's `civil_from_days`), used to
    /// format a near-future HTTP-date relative to the real wall clock.
    fn civil_from_days(z: i64) -> (i64, u32, u32) {
        let z = z + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        (if m <= 2 { y + 1 } else { y }, m, d)
    }

    fn http_date_at(epoch: i64) -> String {
        const MONTHS: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        let (days, rem) = (epoch.div_euclid(86_400), epoch.rem_euclid(86_400));
        let (y, m, d) = civil_from_days(days);
        format!(
            "Thu, {d:02} {} {y} {:02}:{:02}:{:02} GMT",
            MONTHS[m as usize - 1],
            rem / 3600,
            rem % 3600 / 60,
            rem % 60
        )
    }

    #[test]
    fn http_date_round_trips_known_epochs() {
        // RFC 9110's example date, and a couple of edge days.
        assert_eq!(http_date_epoch("Sun, 06 Nov 1994 08:49:37 GMT"), Some(784_111_777));
        assert_eq!(http_date_epoch("Thu, 01 Jan 1970 00:00:00 GMT"), Some(0));
        assert_eq!(http_date_epoch("29 Feb 2024 12:00:00 UTC"), Some(1_709_208_000));
        for bad in [
            "Sun, 06 Nov 1994 08:49:37 PST", // non-GMT zone
            "Sun, 32 Nov 1994 08:49:37 GMT", // day out of range
            "Sun, 06 Zzz 1994 08:49:37 GMT", // bogus month
            "Sun, 06 Nov 1994 08:49 GMT",    // missing seconds
        ] {
            assert_eq!(http_date_epoch(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn retry_after_http_date_in_the_past_means_now() {
        let r = parse_retry_after_detailed(&resp_with_retry_after(
            "Sun, 06 Nov 1994 08:49:37 GMT",
        ))
        .expect("valid HTTP-date");
        assert_eq!(r.delay, Duration::ZERO);
        assert!(!r.clamped);
    }

    #[test]
    fn retry_after_http_date_in_the_near_future_parses() {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_secs() as i64;
        let value = http_date_at(now + 120);
        let r = parse_retry_after_detailed(&resp_with_retry_after(&value))
            .unwrap_or_else(|| panic!("{value:?} should parse"));
        // Allow slack for the wall clock advancing between now() calls.
        assert!(
            r.delay > Duration::from_secs(100) && r.delay <= Duration::from_secs(121),
            "{value:?} -> {:?}",
            r.delay
        );
        assert!(!r.clamped);
    }

    #[test]
    fn absurd_retry_after_values_are_clamped_and_flagged() {
        for absurd in ["999999999", "1e12", &http_date_at(32_503_680_000)] {
            let r = parse_retry_after_detailed(&resp_with_retry_after(absurd))
                .unwrap_or_else(|| panic!("{absurd:?} should parse"));
            assert_eq!(r.delay, MAX_RETRY_AFTER, "{absurd:?}");
            assert!(r.clamped, "{absurd:?}");
        }
        // At or under the cap: honored verbatim, not flagged.
        let r = parse_retry_after_detailed(&resp_with_retry_after("3600")).unwrap();
        assert_eq!(r, RetryAfter { delay: MAX_RETRY_AFTER, clamped: false });
    }

    #[test]
    fn advertised_retry_after_beats_backoff_but_is_capped() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(400),
            jitter: 0.0,
            ..Default::default()
        };
        let mut rng = p.jitter_rng();
        assert_eq!(
            p.delay_for_response(&resp_with_retry_after("0.05"), 0, &mut rng),
            Duration::from_millis(50)
        );
        // A hostile/huge Retry-After cannot stall the crawl beyond the cap.
        assert_eq!(
            p.delay_for_response(&resp_with_retry_after("3600"), 0, &mut rng),
            Duration::from_millis(400)
        );
        // Without the header, fall back to computed backoff.
        let plain = Response::status(Status::INTERNAL);
        assert_eq!(
            p.delay_for_response(&plain, 0, &mut rng),
            Duration::from_millis(10)
        );
    }
}
