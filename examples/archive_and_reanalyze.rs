//! Archive a crawl, then re-analyze it offline — the workflow the paper's
//! own "we effectively mirror the Dissenter database" implies.
//!
//! ```sh
//! cargo run --release --example archive_and_reanalyze
//! ```
//!
//! Crawls a small world once, saves the mirror as JSON-Lines, loads it
//! back, rebuilds the full §4 report from the archive, and checks that
//! every headline number survives the round trip. No HTTP happens in the
//! second half: analysis is fully decoupled from collection.

use analysis::report::build_report;
use crawler::{persist, Crawler, Endpoints};
use std::sync::Arc;
use synth::config::Scale;
use synth::WorldConfig;
use webfront::SimServices;

fn main() {
    let cfg = WorldConfig { scale: Scale::Custom(0.002), ..WorldConfig::small() };
    println!("generating and crawling a 1/500-scale world…");
    let (world, _) = synth::generate(&cfg);
    let baselines = world.baselines.clone();
    let world = Arc::new(world);
    let services =
        SimServices::start(world.clone(), crawler::default_server_config()).expect("services");
    let mut crawler = Crawler::new(Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config.enum_gap_tolerance = 600;
    let store = crawler.full_crawl();
    drop(services); // the services are gone; only the mirror remains

    let dir = std::env::temp_dir().join("dissenter-archive-example");
    persist::save(&store, &dir).expect("archive written");
    let bytes: u64 = persist::FILES
        .iter()
        .map(|f| std::fs::metadata(dir.join(f)).map(|m| m.len()).unwrap_or(0))
        .sum();
    println!(
        "archived {} comments / {} users / {} URLs as {} JSONL files ({:.1} MiB) in {}",
        store.comments.len(),
        store.users.len(),
        store.urls.len(),
        persist::FILES.len(),
        bytes as f64 / (1024.0 * 1024.0),
        dir.display()
    );

    println!("\nreloading the archive and rebuilding the report (no network)…");
    let reloaded = persist::load(&dir).expect("archive loads");
    let report = build_report(&reloaded, &baselines, 8);

    let fresh = build_report(&store, &baselines, 8);
    let checks = [
        ("comments", report.overview.comments, fresh.overview.comments),
        ("urls", report.overview.urls, fresh.overview.urls),
        ("active users", report.overview.active_users, fresh.overview.active_users),
        ("nsfw", report.overview.nsfw_comments, fresh.overview.nsfw_comments),
        ("offensive", report.overview.offensive_comments, fresh.overview.offensive_comments),
        ("social users", report.social.users, fresh.social.users),
        ("core size", report.social.core.size(), fresh.social.core.size()),
    ];
    println!("{:<14} {:>10} {:>10}", "quantity", "archive", "fresh");
    let mut ok = true;
    for (name, a, b) in checks {
        println!("{name:<14} {a:>10} {b:>10} {}", if a == b { "✓" } else { "✗" });
        ok &= a == b;
    }
    std::fs::remove_dir_all(&dir).ok();
    if ok {
        println!("\nround trip exact: the archive is a faithful mirror.");
    } else {
        println!("\nround trip diverged — investigate persist.rs!");
        std::process::exit(1);
    }
}
