//! Descriptive statistics: mean, median, quantiles, and a summary struct.

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Median (average of the two central order statistics for even n).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Quantile `q ∈ [0,1]` with linear interpolation between order statistics.
///
/// Sorts a copy; callers with pre-sorted data should use
/// [`quantile_sorted`].
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&v, q))
}

/// Quantile over already-sorted data.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A one-pass summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Describe {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 if n < 2).
    pub std: f64,
    /// Minimum (0 for empty samples).
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Describe {
    /// Summarize a sample. NaNs are rejected with a panic — upstream data
    /// is always finite by construction, so a NaN indicates a bug.
    pub fn of(xs: &[f64]) -> Describe {
        assert!(xs.iter().all(|x| x.is_finite()), "non-finite value in sample");
        if xs.is_empty() {
            return Describe { n: 0, mean: 0.0, std: 0.0, min: 0.0, median: 0.0, max: 0.0 };
        }
        let n = xs.len();
        let m = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Describe {
            n,
            mean: m,
            std: var.sqrt(),
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), Some(2.5));
        assert_eq!(quantile(&xs, 0.0), Some(0.0));
        assert_eq!(quantile(&xs, 1.0), Some(10.0));
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        assert_eq!(quantile(&[5.0], 7.0), Some(5.0));
        assert_eq!(quantile(&[5.0], -1.0), Some(5.0));
    }

    #[test]
    fn describe_matches_hand_computation() {
        let d = Describe::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(d.n, 8);
        assert_eq!(d.mean, 5.0);
        assert!((d.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
        assert_eq!(d.median, 4.5);
    }

    #[test]
    fn describe_empty_and_singleton() {
        let e = Describe::of(&[]);
        assert_eq!(e.n, 0);
        let s = Describe::of(&[3.0]);
        assert_eq!((s.mean, s.std, s.median), (3.0, 0.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn describe_rejects_nan() {
        Describe::of(&[1.0, f64::NAN]);
    }
}
