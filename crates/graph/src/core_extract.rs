//! Hateful-core extraction (§4.5.1).
//!
//! The paper induces a subgraph on users `a`, `b` such that:
//!   i) `a` and `b` are **mutual** followers;
//!  ii) `a` has posted **≥ 100** comments or replies;
//! iii) `a`'s **median** comment toxicity is **≥ 0.3**.
//!
//! On their data this yields 42 users in 6 connected components with one
//! 32-user giant component. This module implements the same induction
//! generically over per-user activity and toxicity series.

use crate::components::{connected_components, ComponentSummary};
use crate::digraph::DiGraph;

/// Thresholds for core membership. Defaults match the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreCriteria {
    /// Minimum comments + replies for a user to qualify (paper: 100).
    pub min_comments: u64,
    /// Minimum median toxicity (paper: 0.3).
    pub min_median_toxicity: f64,
}

impl Default for CoreCriteria {
    fn default() -> Self {
        Self { min_comments: 100, min_median_toxicity: 0.3 }
    }
}

/// The extracted core.
#[derive(Debug, Clone)]
pub struct HatefulCore {
    /// Node indices of core members (those with ≥1 mutual edge to another
    /// qualifying member), ascending.
    pub members: Vec<u32>,
    /// Component decomposition of the induced mutual subgraph.
    pub components: ComponentSummary,
}

impl HatefulCore {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Extract the hateful core.
///
/// * `g` — the directed follow graph;
/// * `comment_counts[v]` — comments+replies authored by node `v`;
/// * `median_toxicity[v]` — the node's median comment toxicity (NaN if the
///   node has no comments; NaN never qualifies).
pub fn extract_hateful_core(
    g: &DiGraph,
    comment_counts: &[u64],
    median_toxicity: &[f64],
    criteria: CoreCriteria,
) -> HatefulCore {
    let n = g.node_count();
    assert_eq!(comment_counts.len(), n, "comment_counts length mismatch");
    assert_eq!(median_toxicity.len(), n, "median_toxicity length mismatch");

    let qualifies = |v: u32| -> bool {
        let i = v as usize;
        comment_counts[i] >= criteria.min_comments
            && median_toxicity[i] >= criteria.min_median_toxicity
    };

    // Mutual adjacency restricted to qualifying endpoints.
    let mut adj = vec![Vec::new(); n];
    for u in 0..n as u32 {
        if !qualifies(u) {
            continue;
        }
        for &v in g.following(u) {
            if v > u && qualifies(v) && g.has_edge(v, u) {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
    }
    // Members: qualifying nodes with at least one induced edge. (A
    // qualifying node with no mutual qualifying neighbor is not "connected
    // to other users also with high toxicity".)
    let members: Vec<u32> = (0..n as u32)
        .filter(|&v| !adj[v as usize].is_empty())
        .collect();
    let components = connected_components(&adj, &members);
    HatefulCore { members, components }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mutual(g: &mut DiGraph, a: u32, b: u32) {
        g.add_edge(a, b);
        g.add_edge(b, a);
    }

    #[test]
    fn extracts_planted_core() {
        let mut g = DiGraph::with_nodes(8);
        // Core clique: 0,1,2 mutually follow; 3,4 mutually follow.
        mutual(&mut g, 0, 1);
        mutual(&mut g, 1, 2);
        mutual(&mut g, 3, 4);
        // 5 is toxic+active but only one-way follows 0.
        g.add_edge(5, 0);
        // 6 mutual with 0 but not active enough; 7 mutual with 1 but mild.
        mutual(&mut g, 6, 0);
        mutual(&mut g, 7, 1);
        let counts = [200, 150, 300, 120, 110, 500, 10, 400];
        let tox = [0.5, 0.4, 0.9, 0.31, 0.35, 0.8, 0.9, 0.1];
        let core = extract_hateful_core(&g, &counts, &tox, CoreCriteria::default());
        assert_eq!(core.members, vec![0, 1, 2, 3, 4]);
        assert_eq!(core.components.count(), 2);
        assert_eq!(core.components.giant(), 3);
    }

    #[test]
    fn empty_when_nobody_qualifies() {
        let mut g = DiGraph::with_nodes(3);
        mutual(&mut g, 0, 1);
        let core = extract_hateful_core(&g, &[5, 5, 5], &[0.9, 0.9, 0.9], CoreCriteria::default());
        assert_eq!(core.size(), 0);
        assert_eq!(core.components.count(), 0);
    }

    #[test]
    fn nan_toxicity_never_qualifies() {
        let mut g = DiGraph::with_nodes(2);
        mutual(&mut g, 0, 1);
        let core = extract_hateful_core(
            &g,
            &[200, 200],
            &[f64::NAN, 0.9],
            CoreCriteria::default(),
        );
        assert_eq!(core.size(), 0);
    }

    #[test]
    fn thresholds_are_inclusive() {
        let mut g = DiGraph::with_nodes(2);
        mutual(&mut g, 0, 1);
        let core = extract_hateful_core(&g, &[100, 100], &[0.3, 0.3], CoreCriteria::default());
        assert_eq!(core.size(), 2);
    }

    #[test]
    fn custom_criteria_respected() {
        let mut g = DiGraph::with_nodes(2);
        mutual(&mut g, 0, 1);
        let crit = CoreCriteria { min_comments: 10, min_median_toxicity: 0.05 };
        let core = extract_hateful_core(&g, &[10, 12], &[0.06, 0.07], crit);
        assert_eq!(core.size(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let g = DiGraph::with_nodes(2);
        extract_hateful_core(&g, &[1], &[0.1, 0.2], CoreCriteria::default());
    }
}
