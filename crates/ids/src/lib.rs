#![warn(missing_docs)]
//! Identifier primitives reverse-engineered from Dissenter and Gab (§2.2, §3.1).
//!
//! The paper discovered that Dissenter's three entity identifiers — the
//! *author-id*, *commenturl-id*, and *comment-id* — are 12-byte values whose
//! first four bytes are a big-endian Unix timestamp recording when the entity
//! was created (e.g. an account created 2019-02-28T16:23:53Z has an author-id
//! beginning `5c780b19`). Gab user IDs, in contrast, are a monotone integer
//! counter starting at 1, with occasional re-use of unallocated lower values.
//!
//! This crate implements both identifier families plus the simulated clock
//! that drives deterministic world generation.

pub mod clock;
pub mod gabid;
pub mod hex;
pub mod oid;

pub use clock::{SimClock, Timestamp, DISSENTER_LAUNCH, STUDY_END};
pub use gabid::{GabId, GabIdAllocator};
pub use oid::{EntityKind, ObjectId, ObjectIdGen, ParseObjectIdError};
