#![warn(missing_docs)]
//! A minimal, dependency-free JSON implementation.
//!
//! The Gab API returns JSON-encoded account and relationship data (§3.1,
//! §3.4), and Dissenter comment pages embed a commented-out JavaScript
//! `commentAuthor` array holding hidden user metadata (§3.2). Both the
//! simulated services and the crawler need a JSON codec; rather than pull in
//! `serde_json`, this crate implements the small subset of JSON the system
//! needs from scratch: a [`Value`] tree, a recursive-descent [`parse()`] function, and
//! a serializer.
//!
//! Design notes (following the guides' "simplicity and robustness" ethos):
//! objects preserve insertion order (deterministic serialization for
//! byte-identical responses across runs), parsing depth is bounded to keep
//! hostile inputs from exhausting the stack, and numbers round-trip as
//! `f64`/`i64` depending on form.

pub mod parse;
pub mod ser;
pub mod value;

pub use parse::{parse, ParseError};
pub use ser::{to_string, to_string_pretty};
pub use value::Value;

#[cfg(test)]
mod round_trip_tests {
    use super::*;

    #[test]
    fn parse_then_serialize_is_stable() {
        let src = r#"{"id":7,"name":"@a","flags":["pro","donor"],"score":-1.5,"meta":{"ok":true,"x":null}}"#;
        let v = parse(src).unwrap();
        let out = to_string(&v);
        let v2 = parse(&out).unwrap();
        assert_eq!(v, v2);
        // Second serialization is byte-identical (order preserved).
        assert_eq!(out, to_string(&v2));
    }
}
