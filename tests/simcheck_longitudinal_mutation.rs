//! Mutation smoke for the longitudinal family: a deliberately injected
//! analysis bug must be caught by the `longitudinal.*` oracles, shrink
//! to a minimal still-armed scenario, and reproduce deterministically
//! from its replay file.
//!
//! The mutation lives behind the `SIMCHECK_MUTATE` environment variable
//! in [`analysis::windowed::drift_report`]: `skip_drift_rescore` still
//! reports the mid-study version boundary but skips the calibration
//! rescoring pass, leaving every delta zero and the boundary unflagged —
//! the silent-drift blind spot where a retrained scorer's movement
//! masquerades as platform change. `longitudinal.drift` must trip on the
//! impossible zero deltas whenever the scenario's drift is nonzero. The
//! variable is read once per process, which is why this test owns its
//! own integration-test binary (separate from the other mutation smokes,
//! which arm different mutations) and sets it before anything scores.

use dissenter_repro::simcheck::{check_scenario_family, replay, shrink, Family, Scenario};

#[test]
fn injected_drift_rescore_skip_is_caught_shrunk_and_replayed() {
    // Must happen before the first drift report in this process.
    std::env::set_var("SIMCHECK_MUTATE", "skip_drift_rescore");

    // Two epochs with a strongly drifted mid-study revision: the
    // boundary is guaranteed, and honest rescoring would move the
    // calibration sample far past zero.
    let sc = Scenario {
        scale: 0.001,
        workers: 2,
        svm: false,
        epochs: 2,
        drift: 0.2,
        ..Scenario::from_seed(0x10E6)
    };

    // 1. Detection.
    let failure = check_scenario_family(&sc, Family::Longitudinal)
        .expect_err("the mutated drift report must trip the longitudinal oracle");
    assert_eq!(failure.check, "longitudinal.drift", "caught by the drift leg: {failure}");
    assert!(failure.detail.contains("rescoring"), "{failure}");

    // 2. Shrinking preserves the failure and keeps the study armed: the
    // mutation is invisible at drift 0 (zero deltas are then correct),
    // so both the epoch evolution and the drift must survive.
    let (min, min_failure) =
        shrink::shrink(sc, failure, |c| check_scenario_family(c, Family::Longitudinal).err());
    assert_eq!(min_failure.check, "longitudinal.drift", "{min_failure}");
    assert_eq!(min.epochs, 1, "the study survives at its shortest armed length");
    assert!(min.drift > 0.0, "the load-bearing drift survives shrinking");
    assert_eq!(min.workers, 1, "irrelevant knobs still shrink");

    // 3. The replay file round-trips and still reproduces the failure.
    let dir = std::env::temp_dir()
        .join(format!("simcheck-longitudinal-mutation-{}", std::process::id()));
    let path =
        replay::write(&dir, &replay::Replay::new(min, &min_failure)).expect("replay writes");
    let loaded = replay::read(&path).expect("replay reads");
    let replayed = check_scenario_family(&loaded.scenario, Family::Longitudinal)
        .expect_err("the replayed scenario must reproduce the failure deterministically");
    assert_eq!(replayed.check, "longitudinal.drift", "{replayed}");
    std::fs::remove_dir_all(&dir).ok();
}
