//! Figure 5 — SEVERE_TOXICITY against per-URL net vote score (§4.3.2).

use crate::toxicity::CommentScores;
use crawler::store::CrawlStore;
use ids::ObjectId;
use std::collections::HashMap;

/// One URL's point in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VotePoint {
    /// Net vote score (up − down).
    pub net_votes: i64,
    /// Mean SEVERE_TOXICITY of its comments.
    pub mean_severe: f64,
    /// Median SEVERE_TOXICITY of its comments.
    pub median_severe: f64,
    /// Comment count.
    pub comments: usize,
}

/// Figure-5 aggregates.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// All URL points.
    pub points: Vec<VotePoint>,
    /// URLs with positive / zero / negative net scores.
    pub positive: usize,
    /// Zero-net URLs.
    pub zero: usize,
    /// Negative-net URLs.
    pub negative: usize,
    /// Fraction of URLs with |net| < 10.
    pub within_ten: f64,
    /// Mean toxicity of zero-vote URLs vs voted URLs.
    pub mean_severe_zero: f64,
    /// Mean severity over URLs with |net| ≥ 3.
    pub mean_severe_voted: f64,
    /// Mean severity over negative-net URLs.
    pub mean_severe_negative: f64,
    /// Mean severity over positive-net URLs.
    pub mean_severe_positive: f64,
}

/// Compute Figure 5 from crawl output and comment scores.
pub fn figure5(store: &CrawlStore, scores: &HashMap<ObjectId, CommentScores>) -> Figure5 {
    // Group comment severities per URL.
    let mut per_url: HashMap<ObjectId, Vec<f64>> = HashMap::new();
    for c in store.comments.values() {
        if let Some(s) = scores.get(&c.id) {
            per_url.entry(c.url_id).or_default().push(s.perspective.severe_toxicity);
        }
    }
    // URLs in id order, severities in value order: the stores are hash
    // maps, so without this the point list (tie order under the stable
    // net-vote sort) and the f64 mean (summation order) would vary run to
    // run and break the byte-identical export contract.
    let mut url_ids: Vec<ObjectId> = store.urls.keys().copied().collect();
    url_ids.sort_unstable();
    let mut points = Vec::with_capacity(store.urls.len());
    for id in url_ids {
        let u = &store.urls[&id];
        let Some(sev) = per_url.get_mut(&id) else { continue };
        sev.sort_by(|a, b| a.partial_cmp(b).expect("finite severities"));
        let mean = stats::mean(sev).unwrap_or(0.0);
        let median = stats::median(sev).unwrap_or(0.0);
        points.push(VotePoint {
            net_votes: u.upvotes as i64 - u.downvotes as i64,
            mean_severe: mean,
            median_severe: median,
            comments: sev.len(),
        });
    }
    points.sort_by_key(|p| p.net_votes);
    let positive = points.iter().filter(|p| p.net_votes > 0).count();
    let zero = points.iter().filter(|p| p.net_votes == 0).count();
    let negative = points.iter().filter(|p| p.net_votes < 0).count();
    let within_ten = points.iter().filter(|p| p.net_votes.abs() < 10).count() as f64
        / points.len().max(1) as f64;
    let mean_of = |filter: &dyn Fn(&VotePoint) -> bool| {
        let xs: Vec<f64> = points.iter().filter(|p| filter(p)).map(|p| p.mean_severe).collect();
        stats::mean(&xs).unwrap_or(0.0)
    };
    Figure5 {
        positive,
        zero,
        negative,
        within_ten,
        mean_severe_zero: mean_of(&|p| p.net_votes == 0),
        mean_severe_voted: mean_of(&|p| p.net_votes.abs() >= 3),
        mean_severe_negative: mean_of(&|p| p.net_votes < 0),
        mean_severe_positive: mean_of(&|p| p.net_votes > 0),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toxicity::CommentScores;
    use classify::PerspectiveScores;
    use crawler::store::{CrawledComment, CrawledUrl, ShadowLabel};
    use ids::{EntityKind, ObjectIdGen};

    fn add_url(
        store: &mut CrawlStore,
        scores: &mut HashMap<ObjectId, CommentScores>,
        gen_u: &mut ObjectIdGen,
        gen_c: &mut ObjectIdGen,
        up: u32,
        down: u32,
        severities: &[f64],
    ) {
        let id = gen_u.next(1);
        store.urls.insert(
            id,
            CrawledUrl {
                id,
                url: format!("https://x.example/{id}"),
                title: String::new(),
                description: String::new(),
                upvotes: up,
                downvotes: down,
                declared_comment_count: severities.len(),
            },
        );
        for &s in severities {
            let cid = gen_c.next(2);
            store.comments.insert(
                cid,
                CrawledComment {
                    id: cid,
                    url_id: id,
                    author_id: gen_c.next(3),
                    parent: None,
                    text: String::new(),
                    created_at: 2,
                    label: ShadowLabel::Standard,
                },
            );
            scores.insert(
                cid,
                CommentScores {
                    perspective: PerspectiveScores { severe_toxicity: s, ..Default::default() },
                    dictionary: 0.0,
                },
            );
        }
    }

    #[test]
    fn zero_vote_urls_carry_high_toxicity() {
        let mut store = CrawlStore::default();
        let mut scores = HashMap::new();
        let mut gu = ObjectIdGen::new(EntityKind::CommentUrl, 0);
        let mut gc = ObjectIdGen::new(EntityKind::Comment, 1);
        add_url(&mut store, &mut scores, &mut gu, &mut gc, 0, 0, &[0.8, 0.6]);
        add_url(&mut store, &mut scores, &mut gu, &mut gc, 10, 0, &[0.1]);
        add_url(&mut store, &mut scores, &mut gu, &mut gc, 0, 8, &[0.3]);
        let f = figure5(&store, &scores);
        assert_eq!((f.positive, f.zero, f.negative), (1, 1, 1));
        assert!(f.mean_severe_zero > f.mean_severe_voted);
        assert!(f.mean_severe_negative > f.mean_severe_positive);
        assert!((f.within_ten - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn points_sorted_by_net() {
        let mut store = CrawlStore::default();
        let mut scores = HashMap::new();
        let mut gu = ObjectIdGen::new(EntityKind::CommentUrl, 2);
        let mut gc = ObjectIdGen::new(EntityKind::Comment, 3);
        add_url(&mut store, &mut scores, &mut gu, &mut gc, 5, 0, &[0.2]);
        add_url(&mut store, &mut scores, &mut gu, &mut gc, 0, 5, &[0.2]);
        add_url(&mut store, &mut scores, &mut gu, &mut gc, 0, 0, &[0.2]);
        let f = figure5(&store, &scores);
        let nets: Vec<i64> = f.points.iter().map(|p| p.net_votes).collect();
        assert_eq!(nets, vec![-5, 0, 5]);
    }

    #[test]
    fn urls_without_scores_are_skipped() {
        let mut store = CrawlStore::default();
        let mut gu = ObjectIdGen::new(EntityKind::CommentUrl, 4);
        let id = gu.next(1);
        store.urls.insert(
            id,
            CrawledUrl {
                id,
                url: "https://empty.example/".into(),
                title: String::new(),
                description: String::new(),
                upvotes: 0,
                downvotes: 0,
                declared_comment_count: 0,
            },
        );
        let f = figure5(&store, &HashMap::new());
        assert!(f.points.is_empty());
    }
}
