#!/usr/bin/env bash
# Adversarial-traffic bench: every abuse profile (greedy scraper,
# slowloris + partial-write sinkhole, cache stampede, pipeline flood,
# validator replay) driven concurrently with a polite loadgen baseline
# against a hardened Dissenter front, plus a polite-vs-greedy collector
# comparison on the rate-limited route — emitted as BENCH_PR8.json in
# the repo root. The abusegen binary self-validates: it exits nonzero
# unless the polite client keeps >=99% success and p99 <= 3x the
# no-abuse baseline under every profile, every abuse segment's books
# reconcile exactly (client-side AND against the limiter's own
# RateStats, penalized lockouts included), zero shadow-visibility leaks
# and ETag/body incoherences occur, the slowloris phase is provably
# defended (conn.read_timeouts / conn.write_timeouts fired), the polite
# collector out-collects the greedy one, and peak RSS stays under the
# ceiling.
#
# Usage: scripts/bench_pr8.sh [extra abusegen args, e.g. --conns 8]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p bench --bin abusegen -- --out BENCH_PR8.json "$@"

# The artifact must parse and carry the headline sections.
python3 - <<'EOF'
import json
with open("BENCH_PR8.json") as f:
    report = json.load(f)
for key in ("limiter", "baseline", "profiles", "four_tct", "server"):
    assert key in report, f"BENCH_PR8.json missing {key!r}"
base = report["baseline"]
assert base["failures"] == 0, "baseline had failures"
profiles = report["profiles"]
expected_profiles = {"greedy_scraper", "slowloris", "stampede",
                     "pipeline_flood", "validator_replay"}
assert set(profiles) == expected_profiles, f"profile set is {sorted(profiles)}"
p99_gate = max(base["p99_us"] * 3.0, 10_000)
for name, phase in profiles.items():
    polite, abuse = phase["polite"], phase["abuse"]
    total = polite["requests"] + polite["failures"]
    assert total > 0 and polite["failures"] <= total * 0.01, \
        f"{name}: polite success below 99% ({polite['failures']}/{total})"
    assert polite["p99_us"] <= p99_gate, \
        f"{name}: polite p99 {polite['p99_us']} us over gate {p99_gate:.0f} us"
    assert abuse["reconciles"] is True, f"{name}: abuse books do not reconcile"
    assert abuse["leaks"] == 0, f"{name}: {abuse['leaks']} shadow leaks"
    assert abuse["incoherent"] == 0, f"{name}: cache incoherence"
slow = profiles["slowloris"]["abuse"]
assert slow["dropped"] > 0, "slowloris: no hostile connection was closed"
assert slow["errors"] == 0, "slowloris: tricklers outlived the give-up budget"
server = report["server"]
assert server["read_timeouts"] > 0, "header-budget defense never fired"
assert server["write_timeouts"] > 0, "write-deadline defense never fired"
assert server["rss_peak_mb"] <= server["rss_ceiling_mb"], \
    f"peak RSS {server['rss_peak_mb']:.1f} MB over {server['rss_ceiling_mb']} MB"
tct = report["four_tct"]
polite_a, greedy_a = tct["polite"]["acquired"], tct["greedy"]["acquired"]
assert polite_a > greedy_a, f"polite acquired {polite_a} <= greedy {greedy_a}"
assert tct["polite"]["sleeps"] > 0, "polite collector never slept on a reset"
lim = report["limiter"]
assert lim["penalized"] > 0, "no penalized lockout was ever recorded"
print("BENCH_PR8.json OK:",
      f"baseline p99 {base['p99_us']} us,",
      f"worst polite p99 {max(p['polite']['p99_us'] for p in profiles.values())} us,",
      f"defenses read/write {server['read_timeouts']}/{server['write_timeouts']},",
      f"4tct polite {polite_a} vs greedy {greedy_a},",
      f"peak RSS {server['rss_peak_mb']:.1f} MB")
EOF
