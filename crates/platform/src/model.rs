//! Core entity types shared across the simulated services.

use ids::{GabId, ObjectId, Timestamp};

/// Per-account capability and status flags — the exact set Table 1 counts
/// for the 47,165 active users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UserFlags {
    /// May log in (99.97% of active users).
    pub can_login: bool,
    /// May post.
    pub can_post: bool,
    /// May report content.
    pub can_report: bool,
    /// May use chat.
    pub can_chat: bool,
    /// May vote.
    pub can_vote: bool,
    /// Banned from the platform (8 active users in the paper).
    pub is_banned: bool,
    /// Administrator (exactly two: @a and @shadowknight412).
    pub is_admin: bool,
    /// Moderator (zero active accounts observed).
    pub is_moderator: bool,
    /// Paid GabPRO subscriber.
    pub is_pro: bool,
    /// Donor badge.
    pub is_donor: bool,
    /// Investor badge.
    pub is_investor: bool,
    /// Premium content creator.
    pub is_premium: bool,
    /// Accepts tips.
    pub is_tippable: bool,
    /// Private account.
    pub is_private: bool,
    /// Verified identity.
    pub verified: bool,
}

/// Comment view-filter preferences (the right half of Table 1). `pro`,
/// `verified`, and `standard` default on; `nsfw` and `offensive` default
/// off — producing the shadow overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewFilters {
    /// Show comments from GabPRO accounts.
    pub pro: bool,
    /// Show comments from verified accounts.
    pub verified: bool,
    /// Show comments from standard accounts.
    pub standard: bool,
    /// Opt in to NSFW-labeled comments.
    pub nsfw: bool,
    /// Opt in to "offensive"-labeled comments.
    pub offensive: bool,
}

impl Default for ViewFilters {
    fn default() -> Self {
        Self { pro: true, verified: true, standard: true, nsfw: false, offensive: false }
    }
}

/// A user account. Gab account data and the optional Dissenter overlay
/// account share a record — Dissenter users are a strict subset of Gab
/// users (§3.1).
#[derive(Debug, Clone)]
pub struct User {
    /// Dissenter author-id (timestamped 12-byte id), if a Dissenter
    /// account exists.
    pub author_id: Option<ObjectId>,
    /// Gab numeric id (counter-allocated).
    pub gab_id: GabId,
    /// Unique handle, e.g. `a` for "@a".
    pub username: String,
    /// Display name (may differ from the handle).
    pub display_name: String,
    /// Profile biography. 25% of Dissenter users mention "censorship".
    pub bio: String,
    /// Account creation time.
    pub created_at: Timestamp,
    /// Capability flags.
    pub flags: UserFlags,
    /// View-filter preferences (hidden metadata, §3.2).
    pub filters: ViewFilters,
    /// Language setting (hidden metadata).
    pub language: String,
    /// The Gab account was deleted by its owner; the Dissenter account and
    /// its comments remain but can no longer authenticate (§4.1.1).
    pub gab_deleted: bool,
}

impl User {
    /// Does this Gab user have a Dissenter account?
    pub fn is_dissenter(&self) -> bool {
        self.author_id.is_some()
    }
}

/// A URL that has received at least one Dissenter comment (or was entered
/// into the system via Gab Trends).
#[derive(Debug, Clone)]
pub struct CommentUrl {
    /// The commenturl-id (timestamped: first appearance of the URL).
    pub id: ObjectId,
    /// The URL exactly as Dissenter stores it (protocol variants and
    /// query-string duplicates are distinct records, §4.2.1).
    pub url: String,
    /// Page title as parsed by Dissenter — `"/watch"` for YouTube embeds.
    pub title: String,
    /// Short description, often empty for embedded content.
    pub description: String,
    /// First-seen time.
    pub created_at: Timestamp,
    /// Thumbs-up count.
    pub upvotes: u32,
    /// Thumbs-down count.
    pub downvotes: u32,
}

impl CommentUrl {
    /// Net vote score (up minus down), the x-axis of Figure 5.
    pub fn net_votes(&self) -> i64 {
        self.upvotes as i64 - self.downvotes as i64
    }
}

/// A comment or reply.
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment-id.
    pub id: ObjectId,
    /// The thread (commenturl-id) it belongs to.
    pub url_id: ObjectId,
    /// Author's author-id.
    pub author_id: ObjectId,
    /// Parent comment for replies (replies nest arbitrarily deep, §3.2).
    pub parent: Option<ObjectId>,
    /// Comment text (no practical length limit; the paper found one >90k
    /// characters).
    pub text: String,
    /// Creation time.
    pub created_at: Timestamp,
    /// Author labeled it NSFW at post time.
    pub nsfw: bool,
    /// Platform labeled it "offensive" (mechanism opaque to users).
    pub offensive: bool,
}

impl Comment {
    /// Is this a reply (vs a top-level comment)?
    pub fn is_reply(&self) -> bool {
        self.parent.is_some()
    }
}

/// A thumbs vote on a URL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// Thumbs up.
    Up,
    /// Thumbs down.
    Down,
}

/// A baseline comment corpus (Table 3: NY Times, Daily Mail, Reddit).
#[derive(Debug, Clone, Default)]
pub struct BaselineCorpus {
    /// Corpus name.
    pub name: String,
    /// Raw comment texts.
    pub comments: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::{EntityKind, ObjectIdGen};

    #[test]
    fn default_filters_hide_shadow_content() {
        let f = ViewFilters::default();
        assert!(f.pro && f.verified && f.standard);
        assert!(!f.nsfw && !f.offensive);
    }

    #[test]
    fn net_votes_signed() {
        let mut g = ObjectIdGen::new(EntityKind::CommentUrl, 0);
        let u = CommentUrl {
            id: g.next(10),
            url: "https://example.com".into(),
            title: "t".into(),
            description: String::new(),
            created_at: 10,
            upvotes: 2,
            downvotes: 5,
        };
        assert_eq!(u.net_votes(), -3);
    }

    #[test]
    fn reply_detection() {
        let mut g = ObjectIdGen::new(EntityKind::Comment, 0);
        let parent = g.next(5);
        let c = Comment {
            id: g.next(6),
            url_id: g.next(1),
            author_id: g.next(1),
            parent: Some(parent),
            text: "reply".into(),
            created_at: 6,
            nsfw: false,
            offensive: false,
        };
        assert!(c.is_reply());
    }

    #[test]
    fn dissenter_subset_of_gab() {
        let u = User {
            author_id: None,
            gab_id: 42,
            username: "quietuser".into(),
            display_name: "Quiet".into(),
            bio: String::new(),
            created_at: 0,
            flags: UserFlags::default(),
            filters: ViewFilters::default(),
            language: "en".into(),
            gab_deleted: false,
        };
        assert!(!u.is_dissenter());
    }
}
