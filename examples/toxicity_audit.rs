//! Toxicity audit: apply the paper's full §3.5 classification stack to a
//! batch of comments — the workflow a moderation team would run against
//! any comment dump.
//!
//! ```sh
//! cargo run --release --example toxicity_audit
//! ```
//!
//! Demonstrates all three methods the paper uses to bound its estimates:
//! the hate dictionary (with its documented false positives/negatives),
//! the four Perspective-style models, and the trained SVM's three-class
//! probabilities.

use classify::adasyn::AdasynConfig;
use classify::cv::cross_validate;
use classify::svm::{Featurizer, LinearSvm, SvmConfig};
use classify::{CommentClass, HateDictionary, PerspectiveModel};
use synth::labeled_corpus;

fn main() {
    let dict = HateDictionary::standard();
    let perspective = PerspectiveModel::standard();

    // Train the SVM exactly as §3.5.3: Davidson-shaped imbalanced corpus,
    // ADASYN oversampling inside 5-fold CV, then a final model.
    println!("training the 3-class SVM (hate / offensive / neither)…");
    let corpus = labeled_corpus(3_000, 7);
    let featurizer = Featurizer::standard();
    let samples: Vec<_> =
        corpus.iter().map(|s| (featurizer.featurize(&s.text), s.class.index())).collect();
    let cfg = SvmConfig { epochs: 8, ..SvmConfig::default() };
    let cv = cross_validate(&samples, 3, 5, cfg, Some(AdasynConfig::default()), 3);
    println!("5-fold weighted F1 = {:.3}  (paper reports 0.87)\n", cv.weighted_f1());
    let model = LinearSvm::train(&samples, 3, cfg);

    // Audit a batch: two benign comments, an ambiguous-term false
    // positive, and synthesized toxic/offensive comments.
    let lexicon_term = dict.lexicon().term(17).to_owned();
    let obscene = classify::features::obscene_markers()[5].clone();
    let batch = vec![
        ("benign", "I really enjoyed this article about the harvest festival.".to_string()),
        ("ambiguous", "The queen fed her pig at the county fair.".to_string()),
        ("author attack", "The author is a liar and this journalist writes pathetic garbage. You fool!".to_string()),
        ("hate-dense", format!("Those {lexicon_term} people are {lexicon_term} again, typical {lexicon_term}!")),
        ("obscene", format!("What a load of {obscene}, total {obscene}.")),
    ];

    println!(
        "{:<14} {:>6} {:>7} {:>7} {:>7} {:>7}  class probabilities",
        "comment", "dict", "severe", "reject", "obscene", "attack"
    );
    for (label, text) in &batch {
        let d = dict.score(text);
        let p = perspective.score(text);
        let probs = model.probabilities(&featurizer.featurize(text));
        println!(
            "{label:<14} {d:>6.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}  hate={:.2} off={:.2} neither={:.2}",
            p.severe_toxicity,
            p.likely_to_reject,
            p.obscene,
            p.attack_on_author,
            probs[CommentClass::Hate.index()],
            probs[CommentClass::Offensive.index()],
            probs[CommentClass::Neither.index()],
        );
    }

    println!("\nNote the 'ambiguous' row: benign words shared with the lexicon");
    println!("(the paper's \"queen\"/\"pig\" discussion, §3.5) still score on the");
    println!("dictionary — which is why the paper triangulates three methods.");
}
