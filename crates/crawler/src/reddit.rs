//! Phase 7 — Reddit username matching and Pushshift history pulls
//! (§4.4.1).

use crate::store::{CrawlStore, RedditMatch};
use crate::Crawler;

const PAGE_SIZE: usize = 100;

/// Check every Dissenter username on Reddit; for matches, pull the full
/// available comment history.
pub fn crawl_reddit(crawler: &Crawler, store: &mut CrawlStore) {
    let names: Vec<String> = store.users.keys().cloned().collect();
    let matches = crate::parallel::parallel_fetch(
        crawler.endpoints.reddit,
        &names,
        crawler.config.workers,
        |_| {},
        |client, name| {
            store.stats.add_requests(1);
            let about = client
                .get_resilient(&format!("/user/{name}/about"), crawler.config.retries, crawler.config.backoff)
                .ok()?;
            if !about.status.is_success() {
                return None;
            }
            let total = jsonlite::parse(&about.text())
                .ok()?
                .get("total_comments")
                .and_then(|t| t.as_i64())
                .unwrap_or(0) as u64;
            let mut comments = Vec::new();
            let mut page = 0usize;
            loop {
                store.stats.add_requests(1);
                let resp = client
                    .get_resilient(
                        &format!("/pushshift/comments?author={name}&page={page}"),
                        crawler.config.retries,
                        crawler.config.backoff,
                    )
                    .ok()?;
                let v = jsonlite::parse(&resp.text()).ok()?;
                let data = v.get("data").and_then(|d| d.as_array()).unwrap_or(&[]).to_vec();
                let n = data.len();
                for item in data {
                    if let Some(body) = item.get("body").and_then(|b| b.as_str()) {
                        comments.push(body.to_owned());
                    }
                }
                if n < PAGE_SIZE {
                    break;
                }
                page += 1;
            }
            Some(RedditMatch { username: name.clone(), total_comments: total, comments })
        },
    );
    store.reddit = matches.into_iter().map(|m| (m.username.clone(), m)).collect();
}
