#![warn(missing_docs)]
//! Statistical primitives behind the paper's figures.
//!
//! Every figure in §4 is a distributional statement: CDFs of comment counts
//! (Fig. 3), Perspective score CDFs (Figs. 4, 7, 8b), score-vs-votes means
//! and medians (Fig. 5), comment-ratio CDFs (Fig. 6), degree scatter plots
//! and toxicity-by-degree curves (Fig. 9), plus two-sample
//! Kolmogorov–Smirnov significance tests for the bias analysis (§4.4.4).
//! This crate implements those tools from scratch.

pub mod correlation;
pub mod describe;
pub mod ecdf;
pub mod hist;
pub mod ks;
pub mod powerlaw;
pub mod stream;

pub use correlation::{pearson, spearman};
pub use describe::{mean, median, quantile, Describe};
pub use ecdf::Ecdf;
pub use hist::{log_bins, Histogram};
pub use ks::{ks_two_sample, KsResult};
pub use powerlaw::{fit_power_law, PowerLawFit};
pub use stream::{ks_two_sample_sketch, EcdfSketch};
