#![warn(missing_docs)]
//! Deterministic end-to-end simulation testing for the study pipeline.
//!
//! A seed expands into a full [`scenario::Scenario`] — world size and
//! seed, fault matrix, retry policy, worker counts — which the
//! [`oracle`] runs through the complete pipeline twice: once faulted and
//! sharded, once clean and serial. The two runs must agree byte-for-byte
//! on every report, CSV export, and persisted mirror file, and each run
//! must satisfy a library of cross-crate invariants (obs counters
//! reconciling with crawler/store accounting, platform shadow-visibility
//! partitions, monotone ECDF curves, confusion-matrix marginals, the
//! world↔mirror fidelity contract). Each scenario also carries a seeded
//! WAL kill point: the `crash.*` family kills a journaled crawl there
//! and demands recovery + resume reproduce the uninterrupted run byte
//! for byte, all the way through the rendered report and CSV exports.
//! A seeded hostile-traffic profile rides along too: the `abuse.*`
//! family drives it ([`bench::abusegen`]) against hardened services
//! concurrently with a polite load and demands no starvation, no
//! shadow-visibility leaks, and exact request/limiter reconciliation.
//!
//! On failure the [`shrink`] pass reduces the scenario to a minimal
//! still-failing case and [`replay`] writes it as a self-contained JSON
//! file under `simcheck/replays/`; the workspace test
//! `tests/simcheck_replays.rs` re-executes every committed replay
//! deterministically on each `cargo test`.
//!
//! The `simcheck` binary sweeps seed ranges for CI and long soak runs:
//!
//! ```text
//! cargo run --release -p simcheck -- --count 50 --start 1
//! ```

pub mod oracle;
pub mod replay;
pub mod scenario;
pub mod shrink;

pub use oracle::{check_scenario, check_scenario_family, Failure, Family};
pub use replay::Replay;
pub use scenario::Scenario;
