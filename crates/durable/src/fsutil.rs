//! Filesystem discipline: fsync helpers and crash-safe whole-file
//! writes.

use std::io::{self, Write};
use std::path::Path;

/// Fsync a directory so a rename or file creation inside it is durable.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Write `bytes` to `path` crash-safely: write a sibling temp file,
/// fsync it, rename it over `path`, fsync the parent directory. A crash
/// at any point leaves either the old file or the new one — never a
/// torn mixture.
pub fn atomic_write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path.parent().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("{}: no parent dir", path.display()))
    })?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    fsync_dir(parent)
}

/// Remove leftover `*.tmp` files from a crash mid-[`atomic_write_file`]
/// (the rename never happened, so they are garbage by construction).
pub fn remove_stale_tmp(dir: &Path) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|x| x == "tmp") {
            std::fs::remove_file(&path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("durable-fsutil-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = temp_dir("aw");
        let path = dir.join("state.bin");
        atomic_write_file(&path, b"one").unwrap();
        atomic_write_file(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        assert!(!dir.join("state.bin.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_files_are_swept() {
        let dir = temp_dir("sweep");
        std::fs::write(dir.join("snap_00000001.snap.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("keep.bin"), b"live").unwrap();
        remove_stale_tmp(&dir).unwrap();
        assert!(!dir.join("snap_00000001.snap.tmp").exists());
        assert!(dir.join("keep.bin").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
