//! Response caching for the conditional-request fast path.
//!
//! Two halves of one protocol:
//!
//! * [`ResponseCache`] — the **server-side** bounded, sharded response
//!   cache. Keys are `(method, target, visibility class)`: the target
//!   carries path *and* query string, and the visibility class encodes
//!   the viewer's effective filter set, because NSFW/offensive shadow
//!   views must never leak through a cache entry shared with an
//!   anonymous session. Eviction is seeded-deterministic: given the same
//!   insertion sequence, the same victims are chosen (the victim index
//!   comes from a SplitMix64 stream per shard, not from wall-clock or
//!   map iteration order).
//! * [`RevalidationCache`] — the **client-side** store of
//!   `(ETag, response)` pairs keyed by cookie context + target. The
//!   [`Client`](crate::Client) uses it to send `If-None-Match` and to
//!   resurrect the full 200 representation when the server answers
//!   `304 Not Modified`, which is what makes the crawler's incremental
//!   re-crawl cheap without changing what callers observe.
//!
//! Metrics (when a registry is attached): counters `cache.hits`,
//! `cache.misses`, `cache.evictions`, and gauge `cache.bytes` (resident
//! body+header bytes). These are timing-dependent under concurrency and
//! are deliberately excluded from every deterministic render surface.

use crate::http::Response;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Advance a SplitMix64 state and return the next value.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes — the repo-wide fingerprint hash.
pub(crate) fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Separator so ("ab","c") and ("a","bc") differ.
        h ^= 0x1f;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Server-cache tuning.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of independently locked shards (rounded up to ≥ 1).
    pub shards: usize,
    /// Total entry capacity across all shards.
    pub capacity: usize,
    /// Entries with a body larger than this are never cached (a single
    /// giant page must not evict the whole working set).
    pub max_entry_bytes: usize,
    /// Seed for the per-shard eviction streams.
    pub seed: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self { shards: 8, capacity: 1024, max_entry_bytes: 256 * 1024, seed: 0x5eed_cafe }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    method: String,
    target: String,
    class: String,
}

struct Shard {
    map: HashMap<CacheKey, Arc<Response>>,
    /// Insertion order; eviction victims are drawn from here by index.
    order: Vec<CacheKey>,
    rng: u64,
}

/// Bounded, sharded, seeded-deterministic response cache (see module
/// docs for the key and eviction contract).
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    max_entry_bytes: usize,
    bytes: AtomicU64,
    metrics: Option<obs::Registry>,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("shards", &self.shards.len())
            .field("per_shard_cap", &self.per_shard_cap)
            .field("entries", &self.len())
            .field("bytes", &self.resident_bytes())
            .finish()
    }
}

impl ResponseCache {
    /// A cache with the given tuning and no metrics.
    pub fn new(config: CacheConfig) -> Self {
        Self::build(config, None)
    }

    /// A cache publishing `cache.*` metrics into `registry`.
    pub fn with_registry(config: CacheConfig, registry: &obs::Registry) -> Self {
        Self::build(config, Some(registry.clone()))
    }

    fn build(config: CacheConfig, metrics: Option<obs::Registry>) -> Self {
        let shards = config.shards.max(1);
        let per_shard_cap = config.capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards)
                .map(|i| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: Vec::new(),
                        rng: config.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    })
                })
                .collect(),
            per_shard_cap,
            max_entry_bytes: config.max_entry_bytes,
            bytes: AtomicU64::new(0),
            metrics,
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        let h = fnv1a(&[key.method.as_bytes(), key.target.as_bytes(), key.class.as_bytes()]);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn count(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.inc(name);
        }
    }

    fn publish_bytes(&self) {
        if let Some(m) = &self.metrics {
            m.set_gauge("cache.bytes", self.bytes.load(Ordering::Relaxed) as f64);
        }
    }

    /// Cached response for `(method, target, class)`, cloned out.
    pub fn lookup(&self, method: &str, target: &str, class: &str) -> Option<Response> {
        let key = CacheKey { method: method.into(), target: target.into(), class: class.into() };
        let shard = self.shard_for(&key).lock().unwrap();
        let hit = shard.map.get(&key).map(|r| (**r).clone());
        drop(shard);
        self.count(if hit.is_some() { "cache.hits" } else { "cache.misses" });
        hit
    }

    /// Insert a response. Oversized bodies are skipped; when a shard is
    /// at capacity, a seeded-deterministic victim is evicted first.
    pub fn insert(&self, method: &str, target: &str, class: &str, resp: &Response) {
        if resp.body.len() > self.max_entry_bytes {
            return;
        }
        let key = CacheKey { method: method.into(), target: target.into(), class: class.into() };
        let size = entry_bytes(resp);
        let mut evicted = 0u64;
        {
            let mut shard = self.shard_for(&key).lock().unwrap();
            let mut freed = 0u64;
            if let Some(old) = shard.map.insert(key.clone(), Arc::new(resp.clone())) {
                freed += entry_bytes(&old);
            } else {
                shard.order.push(key);
                while shard.order.len() > self.per_shard_cap {
                    let victim_idx =
                        (splitmix64(&mut shard.rng) % shard.order.len() as u64) as usize;
                    let victim = shard.order.swap_remove(victim_idx);
                    if let Some(old) = shard.map.remove(&victim) {
                        freed += entry_bytes(&old);
                    }
                    evicted += 1;
                }
            }
            // Under the shard lock, so an entry's add always lands
            // before any sub for the same entry — no underflow.
            self.bytes.fetch_add(size, Ordering::Relaxed);
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
        if let (Some(m), true) = (&self.metrics, evicted > 0) {
            m.add("cache.evictions", evicted);
        }
        self.publish_bytes();
    }

    /// Drop every entry (used when a world-visible mutation invalidates
    /// the whole generation).
    pub fn purge(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            let freed: u64 = s.map.values().map(|r| entry_bytes(r)).sum();
            s.map.clear();
            s.order.clear();
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
        self.publish_bytes();
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident body+header bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

fn entry_bytes(resp: &Response) -> u64 {
    let headers: usize = resp.headers.iter().map(|(n, v)| n.len() + v.len() + 4).sum();
    (resp.body.len() + headers) as u64
}

/// Client-side revalidation stats (see [`RevalidationCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RevalStats {
    /// Entries currently held.
    pub entries: usize,
    /// 200-with-ETag responses stored.
    pub stored: u64,
    /// 304s answered from the cache (full representation resurrected).
    pub revalidated: u64,
}

struct RevalShard {
    map: HashMap<String, (String, Arc<Response>)>,
    order: std::collections::VecDeque<String>,
    stored: u64,
    revalidated: u64,
}

/// Client-side `(ETag, response)` store keyed by cookie context +
/// target. Cloning shares the underlying store, so one cache can serve
/// every worker of a crawl and persist across sweeps.
///
/// The store is sharded: every crawl worker touches the cache once or
/// twice per request (`If-None-Match` lookup, then either a store or a
/// 304 resurrection), so a single lock would serialize the whole
/// incremental sweep. Bodies are held behind `Arc` and cloned outside
/// the shard lock, so no worker memcpys a response body while holding a
/// lock another worker needs.
#[derive(Clone)]
pub struct RevalidationCache {
    shards: Arc<Vec<Mutex<RevalShard>>>,
    per_shard_cap: usize,
}

impl std::fmt::Debug for RevalidationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("RevalidationCache")
            .field("entries", &s.entries)
            .field("stored", &s.stored)
            .field("revalidated", &s.revalidated)
            .finish()
    }
}

impl RevalidationCache {
    /// A cache bounded to roughly `capacity` entries (FIFO eviction per
    /// shard; the bound is exact when `capacity` divides evenly across
    /// the shards).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let n_shards = capacity.min(16);
        Self {
            shards: Arc::new(
                (0..n_shards)
                    .map(|_| {
                        Mutex::new(RevalShard {
                            map: HashMap::new(),
                            order: std::collections::VecDeque::new(),
                            stored: 0,
                            revalidated: 0,
                        })
                    })
                    .collect(),
            ),
            per_shard_cap: capacity.div_ceil(n_shards).max(1),
        }
    }

    fn shard_for(&self, key: &str) -> &Mutex<RevalShard> {
        let h = fnv1a(&[key.as_bytes()]);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// The ETag to send as `If-None-Match` for `key`, if one is held.
    pub fn etag_for(&self, key: &str) -> Option<String> {
        self.shard_for(key).lock().unwrap().map.get(key).map(|(etag, _)| etag.clone())
    }

    /// Store a 200-with-ETag response. Non-200s and untagged responses
    /// are ignored — a 404 is data, not a cacheable representation.
    pub fn store(&self, key: &str, resp: &Response) {
        if resp.status != crate::http::Status::OK {
            return;
        }
        let Some(etag) = resp.etag().map(str::to_owned) else { return };
        // Clone the representation before taking the shard lock: the
        // body memcpy must not serialize other workers.
        let held = Arc::new(resp.clone());
        let mut shard = self.shard_for(key).lock().unwrap();
        shard.stored += 1;
        if shard.map.insert(key.to_owned(), (etag, held)).is_none() {
            shard.order.push_back(key.to_owned());
            while shard.order.len() > self.per_shard_cap {
                if let Some(victim) = shard.order.pop_front() {
                    shard.map.remove(&victim);
                }
            }
        }
    }

    /// A server said `304 Not Modified` for `key`: return the stored
    /// full representation (cloned outside the shard lock), or `None`
    /// if it was evicted — the caller must then re-request without
    /// `If-None-Match`.
    pub fn take_revalidated(&self, key: &str) -> Option<Response> {
        let held = {
            let mut shard = self.shard_for(key).lock().unwrap();
            let held = shard.map.get(key).map(|(_, r)| Arc::clone(r))?;
            shard.revalidated += 1;
            held
        };
        Some((*held).clone())
    }

    /// Every held `(key, full 200 representation)` pair, sorted by key.
    /// This is the durable-journal export: a resumed crawl imports the
    /// pairs back via [`RevalidationCache::store`] so `If-None-Match`
    /// revalidation survives a crash.
    pub fn export_entries(&self) -> Vec<(String, Response)> {
        let mut out: Vec<(String, Response)> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap();
            out.extend(shard.map.iter().map(|(k, (_, r))| (k.clone(), (**r).clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Visit every held entry in key order without cloning bodies — the
    /// journal calls this at each phase commit, where
    /// [`RevalidationCache::export_entries`]'s full-cache clone would
    /// dominate the commit. Entries are gathered shard by shard (cheap
    /// `Arc` bumps) and visited with no lock held, so `f` may call back
    /// into the cache.
    pub fn for_each_entry(&self, mut f: impl FnMut(&str, &Response)) {
        let mut entries: Vec<(String, Arc<Response>)> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap();
            entries.extend(shard.map.iter().map(|(k, (_, r))| (k.clone(), Arc::clone(r))));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, resp) in &entries {
            f(key, resp);
        }
    }

    /// Usage counters.
    pub fn stats(&self) -> RevalStats {
        let mut stats = RevalStats::default();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap();
            stats.entries += shard.map.len();
            stats.stored += shard.stored;
            stats.revalidated += shard.revalidated;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{format_etag, Response};

    fn tagged(body: &str, tag: u64) -> Response {
        let mut r = Response::html(body.into());
        r.headers.add("ETag", &format_etag(tag));
        r
    }

    #[test]
    fn lookup_miss_then_hit() {
        let reg = obs::Registry::new();
        let cache = ResponseCache::with_registry(CacheConfig::default(), &reg);
        assert!(cache.lookup("GET", "/user/a", "anon").is_none());
        cache.insert("GET", "/user/a", "anon", &tagged("<p>a</p>", 1));
        let hit = cache.lookup("GET", "/user/a", "anon").expect("hit");
        assert_eq!(hit.text(), "<p>a</p>");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(1));
        assert_eq!(snap.counter("cache.misses"), Some(1));
        assert!(snap.gauge("cache.bytes").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn visibility_class_isolates_entries() {
        let cache = ResponseCache::new(CacheConfig::default());
        cache.insert("GET", "/url/x", "anon", &tagged("public view", 1));
        cache.insert("GET", "/url/x", "auth:nsfw+offensive", &tagged("shadow view", 2));
        assert_eq!(cache.lookup("GET", "/url/x", "anon").unwrap().text(), "public view");
        assert_eq!(
            cache.lookup("GET", "/url/x", "auth:nsfw+offensive").unwrap().text(),
            "shadow view"
        );
    }

    #[test]
    fn bounded_with_deterministic_eviction() {
        let run = || {
            let cache = ResponseCache::new(CacheConfig {
                shards: 2,
                capacity: 8,
                ..CacheConfig::default()
            });
            for i in 0..64 {
                cache.insert("GET", &format!("/user/u{i}"), "anon", &tagged("body", i));
            }
            assert!(cache.len() <= 8, "capacity respected: {}", cache.len());
            // Which entries survive is a pure function of the insertion
            // sequence and the seed.
            (0..64)
                .filter(|i| cache.lookup("GET", &format!("/user/u{i}"), "anon").is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "eviction must be seeded-deterministic");
    }

    #[test]
    fn oversized_bodies_skipped_and_purge_empties() {
        let cache =
            ResponseCache::new(CacheConfig { max_entry_bytes: 16, ..CacheConfig::default() });
        cache.insert("GET", "/big", "anon", &tagged(&"x".repeat(64), 1));
        assert!(cache.lookup("GET", "/big", "anon").is_none());
        cache.insert("GET", "/small", "anon", &tagged("tiny", 2));
        assert_eq!(cache.len(), 1);
        cache.purge();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn revalidation_cache_round_trip() {
        let cache = RevalidationCache::new(4);
        let key = "session=crawler:both|/url/abc";
        assert!(cache.etag_for(key).is_none());
        cache.store(key, &Response::not_found()); // untagged: ignored
        assert!(cache.etag_for(key).is_none());
        let resp = tagged("full page", 7);
        cache.store(key, &resp);
        assert_eq!(cache.etag_for(key), Some(format_etag(7)));
        let back = cache.take_revalidated(key).expect("stored");
        assert_eq!(back.text(), "full page");
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.stored, stats.revalidated), (1, 1, 1));
    }

    #[test]
    fn revalidation_cache_bounded_fifo() {
        let cache = RevalidationCache::new(2);
        for i in 0..5 {
            cache.store(&format!("k{i}"), &tagged("b", i));
        }
        let entries = cache.stats().entries;
        assert!(entries <= 2, "capacity respected: {entries}");
        assert!(cache.etag_for("k4").is_some(), "newest entry always survives");
        // A shared clone sees the same store.
        let shared = cache.clone();
        assert_eq!(shared.stats().entries, entries);
    }

    #[test]
    fn revalidation_cache_shards_agree_across_keys() {
        // Spread keys over every shard and verify each round-trips.
        let cache = RevalidationCache::new(1 << 10);
        for i in 0..64 {
            cache.store(&format!("ctx|/page/{i}"), &tagged(&format!("body {i}"), i));
        }
        assert_eq!(cache.stats().entries, 64);
        for i in 0..64 {
            let key = format!("ctx|/page/{i}");
            assert_eq!(cache.etag_for(&key), Some(format_etag(i)));
            assert_eq!(cache.take_revalidated(&key).unwrap().text(), format!("body {i}"));
        }
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 64);
        assert!(exported.windows(2).all(|w| w[0].0 < w[1].0), "export sorted by key");
        let mut walked = Vec::new();
        cache.for_each_entry(|k, _| walked.push(k.to_owned()));
        assert_eq!(walked.len(), 64);
        assert!(walked.windows(2).all(|w| w[0] < w[1]), "walk sorted by key");
    }
}
