//! End-to-end: generate a world, serve it over loopback HTTP, run the full
//! §3 crawl, and verify the reconstruction matches the ground truth.

use crawler::{Crawler, Endpoints};
use platform::World;
use std::sync::{Arc, OnceLock};
use synth::config::Scale;
use synth::world::GroundTruth;
use synth::WorldConfig;
use webfront::SimServices;

struct Fixture {
    world: Arc<World>,
    truth: GroundTruth,
    store: crawler::CrawlStore,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let cfg = WorldConfig { scale: Scale::Custom(0.003), ..WorldConfig::small() };
        let (world, truth) = synth::generate(&cfg);
        let world = Arc::new(world);
        let services =
            SimServices::start(world.clone(), crawler::default_server_config()).expect("services");
        let mut crawler = Crawler::new(Endpoints {
            dissenter: services.dissenter.addr(),
            gab: services.gab.addr(),
            reddit: services.reddit.addr(),
            youtube: services.youtube.addr(),
        });
        crawler.config.enum_gap_tolerance = 600;
        let store = crawler.full_crawl();
        // Keep the servers alive for the store's lifetime by leaking them
        // into the fixture scope.
        std::mem::forget(services);
        Fixture { world, truth, store }
    })
}

#[test]
fn enumeration_finds_every_live_gab_account() {
    let fx = fixture();
    let live = fx.world.gab.account_count();
    assert_eq!(fx.store.gab_accounts.len(), live, "every allocated ID must be discovered");
    // Deleted accounts must NOT appear.
    let deleted = fx.world.users.iter().filter(|u| u.gab_deleted).count();
    assert!(deleted > 0);
    assert_eq!(fx.world.user_count() - deleted, live);
}

#[test]
fn probe_recovers_exactly_the_live_dissenter_users() {
    let fx = fixture();
    let expected: std::collections::BTreeSet<String> = fx
        .world
        .users
        .iter()
        .filter(|u| u.author_id.is_some() && !u.gab_deleted)
        .map(|u| u.username.clone())
        .collect();
    let got: std::collections::BTreeSet<String> =
        fx.store.dissenter_usernames.iter().cloned().collect();
    assert_eq!(got, expected);
}

/// Ground-truth reachability oracle: which URLs and comments *can* a
/// crawler discover? Discovery starts from live (non-deleted) users' home
/// pages and alternates "crawl threads" / "learn new authors from their
/// comments" to a fixpoint — a thread whose only commenters are ghosts
/// with no other activity is undiscoverable, exactly as it would be for
/// the paper's crawl.
fn reachable(world: &platform::World) -> (
    std::collections::HashSet<ids::ObjectId>, // url ids
    std::collections::HashSet<ids::ObjectId>, // comment ids
) {
    use std::collections::HashSet;
    let mut known_authors: HashSet<ids::ObjectId> = world
        .users
        .iter()
        .filter(|u| !u.gab_deleted)
        .filter_map(|u| u.author_id)
        .collect();
    let mut urls: HashSet<ids::ObjectId> = HashSet::new();
    let mut comments: HashSet<ids::ObjectId> = HashSet::new();
    loop {
        let mut grew = false;
        for c in world.dissenter.comments() {
            if known_authors.contains(&c.author_id) && urls.insert(c.url_id) {
                grew = true;
            }
        }
        for c in world.dissenter.comments() {
            if urls.contains(&c.url_id) {
                comments.insert(c.id);
                if known_authors.insert(c.author_id) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    (urls, comments)
}

#[test]
fn spider_mirrors_every_reachable_url_and_comment() {
    let fx = fixture();
    let (urls, comments) = reachable(&fx.world);
    assert_eq!(fx.store.urls.len(), urls.len());
    assert_eq!(
        fx.store.comments.len(),
        comments.len(),
        "all four crawl passes must reconstruct every reachable comment"
    );
    // The oracle covers (nearly) the full corpus: at most a handful of
    // ghost-exclusive threads are legitimately invisible.
    assert!(comments.len() + 5 >= fx.world.dissenter.total_comments());
    // Spot-check one comment body round-trips byte-for-byte.
    let sample = &fx.world.dissenter.comments()[7];
    let got = &fx.store.comments[&sample.id];
    assert_eq!(got.text, sample.text);
    assert_eq!(got.author_id, sample.author_id);
    assert_eq!(got.parent, sample.parent);
}

#[test]
fn shadow_labels_match_ground_truth() {
    let fx = fixture();
    let truth_nsfw = fx.world.dissenter.comments().iter().filter(|c| c.nsfw).count();
    let truth_off = fx.world.dissenter.comments().iter().filter(|c| c.offensive).count();
    assert_eq!(fx.store.nsfw_comments().count(), truth_nsfw);
    assert_eq!(fx.store.offensive_comments().count(), truth_off);
    // Validation pass: every sampled label confirmed.
    let (sampled, confirmed) = fx.store.shadow_validation;
    assert!(sampled > 0);
    assert_eq!(sampled, confirmed, "all sampled shadow labels must validate");
}

#[test]
fn ghost_users_discovered_via_hidden_metadata() {
    let fx = fixture();
    let ghosts: Vec<&platform::User> = fx
        .world
        .users
        .iter()
        .filter(|u| u.gab_deleted && u.author_id.is_some())
        .collect();
    assert!(!ghosts.is_empty());
    let (_, reachable_comments) = reachable(&fx.world);
    let mut discovered = 0;
    for g in &ghosts {
        // Ghosts appear in the crawl iff at least one of their comments is
        // reachable (a ghost whose only thread is exclusive to them is
        // legitimately invisible — to this crawler and to the paper's).
        let visible = fx
            .world
            .dissenter
            .comments_for_author(g.author_id.expect("dissenter"))
            .iter()
            .any(|c| reachable_comments.contains(&c.id));
        if visible {
            assert!(
                fx.store.users.contains_key(&g.username),
                "ghost {} must be discovered",
                g.username
            );
            assert!(!fx.store.dissenter_usernames.contains(&g.username));
            discovered += 1;
        }
    }
    assert!(discovered > 0, "at least one ghost commenter exists at this scale");
}

#[test]
fn hidden_metadata_attached_to_active_users() {
    let fx = fixture();
    let with_meta = fx.store.users.values().filter(|u| u.meta.is_some()).count();
    // Metadata comes from comment pages, so exactly the authors with
    // reachable comments carry it.
    let (_, reachable_comments) = reachable(&fx.world);
    let reachable_authors: std::collections::HashSet<_> = fx
        .world
        .dissenter
        .comments()
        .iter()
        .filter(|c| reachable_comments.contains(&c.id))
        .map(|c| c.author_id)
        .collect();
    assert_eq!(with_meta, reachable_authors.len());
    // Check one user's metadata against the world record.
    let u = fx.store.users.values().find(|u| u.meta.is_some()).expect("some active user");
    let idx = fx.world.user_by_username(&u.username).expect("exists");
    let w = fx.world.user(idx);
    let m = u.meta.as_ref().expect("checked");
    assert_eq!(m.language, w.language);
    assert_eq!(m.filter_nsfw, w.filters.nsfw);
    assert_eq!(m.is_pro, w.flags.is_pro);
}

#[test]
fn youtube_states_crawled_for_all_youtube_urls() {
    let fx = fixture();
    let expect = fx
        .store
        .urls
        .values()
        .filter(|u| platform::youtube::is_youtube_url(&u.url))
        .count();
    assert_eq!(fx.store.youtube.len(), expect);
    assert!(fx.store.youtube.iter().any(|y| y.available));
}

#[test]
fn social_edges_match_world_graph_over_live_users() {
    let fx = fixture();
    // The world's Gab graph is defined over active Dissenter users; the
    // crawler can only see edges whose endpoints still have live Gab
    // accounts.
    let mut expected = 0usize;
    for &idx in &fx.truth.active_indices {
        if fx.world.user(idx).gab_deleted {
            continue;
        }
        for &peer in fx.world.gab.following(idx) {
            if !fx.world.user(peer).gab_deleted {
                expected += 1;
            }
        }
    }
    assert_eq!(fx.store.follow_edges.len(), expected);
}

#[test]
fn reddit_matches_and_histories() {
    let fx = fixture();
    assert_eq!(
        fx.store.reddit.len(),
        fx.store
            .users
            .keys()
            .filter(|name| fx.world.reddit.exists(name))
            .count()
    );
    // Declared totals survive; materialized bodies are capped.
    for m in fx.store.reddit.values().take(20) {
        let declared = fx.world.reddit.declared_count(&m.username).unwrap_or(0);
        assert_eq!(m.total_comments, declared);
        assert!(m.comments.len() as u64 <= declared.max(1));
    }
}

#[test]
fn crawl_stats_recorded() {
    let fx = fixture();
    use std::sync::atomic::Ordering;
    let requests = fx.store.stats.requests.load(Ordering::Relaxed);
    assert!(requests > 1_000, "the crawl must have issued real traffic: {requests}");
}
